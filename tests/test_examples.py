"""Example-freshness tests: every shipped example must run cleanly.

Each example is executed in a subprocess so import-time and runtime
breakage in any public API surfaces here before a user hits it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": ["cross-domain proof", "customized policy enforced"],
    "mail_scenario.py": [
        "(17)",
        "ViewMailClient_Partner",
        "meeting-requested",
        "revoked",
    ],
    "adaptive_deployment.py": [
        "deploy ViewMailServer",
        "deploy Decryptor",
        "plaintext leaks: 0",
    ],
    "revocation_monitoring.py": [
        "trust changed",
        "revalidated: True",
        "approved:2026-07",
    ],
    "future_work.py": [
        "mirrored 1 native grant",
        "still valid? False",
        "getPhone denied per-method",
    ],
}


def test_every_example_has_expectations():
    assert set(EXAMPLES) == set(EXPECTED_MARKERS), (
        "add expected output markers for new examples"
    )


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS[example]:
        assert marker in result.stdout, (
            f"{example}: expected {marker!r} in output;\n{result.stdout[-2000:]}"
        )
