"""Topology and routing tests."""

from __future__ import annotations

import pytest

from repro.errors import LinkDownError, NetworkError
from repro.net.simnet import Network


@pytest.fixture()
def triangle():
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name, domain="D")
    net.add_link("a", "b", latency_s=0.001)
    net.add_link("b", "c", latency_s=0.001)
    net.add_link("a", "c", latency_s=0.100)  # slow direct path
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_node("a")

    def test_duplicate_link_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_link("a", "b")

    def test_self_link_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_link("a", "a")

    def test_link_needs_existing_nodes(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_link("a", "zz")

    def test_link_lookup_symmetric(self, triangle):
        assert triangle.link("a", "b") is triangle.link("b", "a")

    def test_unknown_node(self, triangle):
        with pytest.raises(NetworkError):
            triangle.node("zz")

    def test_domain_filter(self, triangle):
        assert len(triangle.nodes_in_domain("D")) == 3
        assert triangle.nodes_in_domain("X") == []


class TestRouting:
    def test_prefers_low_latency_multihop(self, triangle):
        # a->b->c (2ms) beats the 100ms direct link.
        assert triangle.shortest_path("a", "c") == ["a", "b", "c"]

    def test_trivial_path(self, triangle):
        assert triangle.shortest_path("a", "a") == ["a"]

    def test_down_link_rerouted(self, triangle):
        triangle.link("a", "b").up = False
        assert triangle.shortest_path("a", "c") == ["a", "c"]

    def test_disconnected_raises(self, triangle):
        triangle.link("a", "b").up = False
        triangle.link("a", "c").up = False
        with pytest.raises(LinkDownError):
            triangle.shortest_path("a", "c")

    def test_path_delay_accumulates(self, triangle):
        path = ["a", "b", "c"]
        delay = triangle.path_delay(path, 0)
        assert delay == pytest.approx(0.002)

    def test_bandwidth_affects_delay(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        net.add_link("x", "y", latency_s=0.0, bandwidth_bps=8_000)
        # 1000 bytes at 8 kbit/s = 1 second.
        assert net.path_delay(["x", "y"], 1000) == pytest.approx(1.0)

    def test_min_bandwidth(self, triangle):
        triangle.link("a", "b").bandwidth_bps = 5e6
        assert triangle.min_bandwidth(["a", "b", "c"]) == 5e6

    def test_path_security(self, triangle):
        assert triangle.path_is_secure(["a", "b", "c"])
        triangle.link("b", "c").secure = False
        assert not triangle.path_is_secure(["a", "b", "c"])


class TestServices:
    def test_bind_and_deliver(self, triangle):
        seen = []
        triangle.node("a").bind("svc", lambda payload, sender: seen.append((payload, sender)))
        triangle.node("a").deliver("svc", b"hi", "b")
        assert seen == [(b"hi", "b")]

    def test_missing_service(self, triangle):
        with pytest.raises(NetworkError):
            triangle.node("a").deliver("nope", b"", "b")

    def test_unbind(self, triangle):
        triangle.node("a").bind("svc", lambda p, s: None)
        triangle.node("a").unbind("svc")
        assert not triangle.node("a").has_service("svc")
