"""Failure injection: lossy links, retries, and liveness detection."""

from __future__ import annotations

import pytest

from repro.net import EventScheduler, Network, Transport
from repro.switchboard import PlainRpcEndpoint, RemoteError


class Counter:
    def __init__(self):
        self.calls = 0

    def bump(self):
        self.calls += 1
        return self.calls

    def ping(self):
        return "pong"


def make_world(loss_rate: float, *, seed: int = 7):
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency_s=0.01, loss_rate=loss_rate)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler, loss_seed=seed)
    client = PlainRpcEndpoint(transport, "a")
    server = PlainRpcEndpoint(transport, "b")
    service = Counter()
    server.exporter.export("svc", service)
    return net, scheduler, transport, client, service


class TestLossyLinks:
    def test_zero_loss_never_drops(self):
        net, scheduler, transport, client, _ = make_world(0.0)
        for _ in range(20):
            assert client.call_sync("b", "svc", "ping") == "pong"
        assert transport.stats.messages_lost == 0

    def test_full_loss_drops_everything(self):
        net, scheduler, transport, client, _ = make_world(1.0)
        pending = client.call("b", "svc", "ping")
        scheduler.run()
        assert not pending.done
        assert transport.stats.messages_lost == 1
        assert net.link("a", "b").frames_dropped == 1

    def test_loss_is_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            net, scheduler, transport, client, _ = make_world(0.5, seed=42)
            for _ in range(30):
                try:
                    client.call("b", "svc", "ping")
                except Exception:
                    pass
            scheduler.run()
            results.append(transport.stats.messages_lost)
        assert results[0] == results[1]

    def test_eavesdropper_sees_frames_before_drop(self):
        net, scheduler, transport, client, _ = make_world(1.0)
        net.link("a", "b").secure = False
        snoops = []
        transport.observe_link("a", "b", lambda p, s, d: snoops.append(p))
        client.call("b", "svc", "ping")
        assert snoops  # observed even though the frame was then lost


class TestRetries:
    def test_retry_recovers_from_loss(self):
        net, scheduler, transport, client, service = make_world(0.5, seed=3)
        pending = client.call_with_retry(
            "b", "svc", "ping", timeout=0.1, retries=10
        )
        assert pending.wait() == "pong"

    def test_retries_exhausted_fails(self):
        net, scheduler, transport, client, _ = make_world(1.0)
        pending = client.call_with_retry("b", "svc", "ping", timeout=0.1, retries=2)
        scheduler.run()
        assert pending.done
        with pytest.raises(RemoteError, match="after 3 attempts"):
            _ = pending.value

    def test_at_least_once_may_duplicate(self):
        """The documented semantics: a lost *response* triggers a resend,
        so the remote method can run more than once."""
        net, scheduler, transport, client, service = make_world(0.35, seed=11)
        pending = client.call_with_retry("b", "svc", "bump", timeout=0.1, retries=20)
        value = pending.wait()
        assert value >= 1
        assert service.calls >= 1  # executed at least once; maybe more

    def test_no_retry_needed_on_clean_link(self):
        net, scheduler, transport, client, service = make_world(0.0)
        pending = client.call_with_retry("b", "svc", "bump", timeout=0.1, retries=3)
        assert pending.wait() == 1
        scheduler.run()  # drain the armed timeout check
        assert service.calls == 1  # exactly one execution, no spurious resend
