"""Discrete-event scheduler tests."""

from __future__ import annotations

import pytest

from repro.net.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(3.0, lambda: log.append("c"))
        scheduler.schedule(1.0, lambda: log.append("a"))
        scheduler.schedule(2.0, lambda: log.append("b"))
        scheduler.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(1.0, lambda: log.append(1))
        scheduler.schedule(1.0, lambda: log.append(2))
        scheduler.run()
        assert log == [1, 2]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.5, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1, lambda: None)

    def test_cancel(self):
        scheduler = EventScheduler()
        log = []
        cancel = scheduler.schedule(1.0, lambda: log.append("x"))
        cancel()
        scheduler.run()
        assert log == []

    def test_nested_scheduling(self):
        scheduler = EventScheduler()
        log = []

        def outer():
            log.append(("outer", scheduler.now()))
            scheduler.schedule(1.0, lambda: log.append(("inner", scheduler.now())))

        scheduler.schedule(1.0, outer)
        scheduler.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_schedule_at(self):
        scheduler = EventScheduler(start=5.0)
        seen = []
        scheduler.schedule_at(7.0, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [7.0]


class TestRunUntil:
    def test_stops_at_boundary(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(1.0, lambda: log.append("early"))
        scheduler.schedule(5.0, lambda: log.append("late"))
        scheduler.run_until(3.0)
        assert log == ["early"]
        assert scheduler.now() == 3.0
        assert scheduler.pending == 1

    def test_backwards_rejected(self):
        scheduler = EventScheduler(start=10.0)
        with pytest.raises(ValueError):
            scheduler.run_until(5.0)


class TestRepeating:
    def test_schedule_every(self):
        scheduler = EventScheduler()
        ticks = []
        cancel = scheduler.schedule_every(2.0, lambda: ticks.append(scheduler.now()))
        scheduler.run_until(7.0)
        cancel()
        scheduler.run_until(20.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_every(0, lambda: None)

    def test_runaway_guard(self):
        scheduler = EventScheduler()
        scheduler.schedule_every(0.001, lambda: None)
        with pytest.raises(RuntimeError):
            scheduler.run(max_events=100)
