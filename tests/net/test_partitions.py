"""Partition semantics: isolation, clean heal, and loss accounting."""

from __future__ import annotations

import pytest

from repro.errors import LinkDownError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.net import EventScheduler, Network, Transport
from repro.psf.monitor import EnvironmentMonitor


def make_world(*, loss_seed: int = 7):
    net = Network()
    net.add_node("a1", domain="A")
    net.add_node("a2", domain="A")
    net.add_node("b1", domain="B")
    net.add_node("b2", domain="B")
    net.add_link("a1", "a2", latency_s=0.001)
    net.add_link("b1", "b2", latency_s=0.001)
    net.add_link("a1", "b1", latency_s=0.05)
    net.add_link("a2", "b2", latency_s=0.05)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler, loss_seed=loss_seed)
    monitor = EnvironmentMonitor(net)
    injector = FaultInjector(scheduler, monitor)
    inbox = []
    for node in net.nodes():
        node.bind("svc", lambda payload, sender: inbox.append((payload, sender)))
    return net, scheduler, transport, injector, inbox


def partition(domain, at, duration):
    return FaultPlan([
        FaultEvent(at=at, kind=FaultKind.PARTITION, duration=duration,
                   params={"domain": domain}),
    ])


class TestIsolation:
    def test_cross_domain_sends_fail_fast(self):
        net, scheduler, transport, injector, inbox = make_world()
        injector.arm(partition("A", at=1.0, duration=2.0))
        scheduler.run_until(1.5)
        with pytest.raises(LinkDownError):
            transport.send("a1", "b1", "svc", b"x")
        with pytest.raises(LinkDownError):
            transport.send("b2", "a2", "svc", b"x")

    def test_intra_domain_traffic_unaffected(self):
        net, scheduler, transport, injector, inbox = make_world()
        injector.arm(partition("A", at=1.0, duration=2.0))
        scheduler.run_until(1.5)
        transport.send("a1", "a2", "svc", b"local-a")
        transport.send("b1", "b2", "svc", b"local-b")
        scheduler.run_until(2.0)
        assert [p for p, _ in inbox] == [b"local-a", b"local-b"]

    def test_in_flight_frame_dropped_when_partition_lands(self):
        net, scheduler, transport, injector, inbox = make_world()
        # Frame departs at t=0 with 50ms of flight time; the partition
        # lands at 10ms, under the frame, severing every boundary link so
        # no reroute can save it.
        drops = []
        transport.send("a1", "b1", "svc", b"doomed", on_dropped=drops.append)
        injector.arm(partition("A", at=0.01, duration=1.0))
        scheduler.run_until(0.5)
        assert inbox == []
        assert len(drops) == 1
        assert transport.stats.messages_dropped == 1


class TestCleanHeal:
    def test_traffic_resumes_after_heal(self):
        net, scheduler, transport, injector, inbox = make_world()
        injector.arm(partition("A", at=1.0, duration=2.0))
        scheduler.run_until(5.0)
        assert net.link("a1", "b1").up and net.link("a2", "b2").up
        transport.send("a1", "b1", "svc", b"hello-again")
        scheduler.run_until(6.0)
        assert inbox == [(b"hello-again", "a1")]

    def test_heal_leaves_no_residual_state(self):
        net, scheduler, transport, injector, inbox = make_world()
        before = {link.endpoints: link.up for link in net.links()}
        injector.arm(partition("A", at=1.0, duration=1.0))
        scheduler.run_until(5.0)
        after = {link.endpoints: link.up for link in net.links()}
        assert after == before
        phases = [entry["phase"] for entry in injector.log]
        assert phases.count("inject") == phases.count("heal") == 1


class TestLossAccounting:
    def _burst(self, a, b, rate, at=0.0, duration=60.0):
        return FaultPlan([
            FaultEvent(at=at, kind=FaultKind.LOSS_BURST, duration=duration,
                       params={"a": a, "b": b, "rate": rate}),
        ])

    def test_total_loss_charges_bytes_but_drops_frames(self):
        net, scheduler, transport, injector, inbox = make_world()
        injector.arm(self._burst("a1", "b1", 1.0, at=0.5))
        scheduler.run_until(1.0)
        for _ in range(5):
            transport.send("a1", "b1", "svc", b"12345678")
        scheduler.run_until(2.0)
        link = net.link("a1", "b1")
        # Bytes are charged at send time — the link carried the frame up
        # to its drop point — while delivery never happens.
        assert link.bytes_carried == 5 * 8
        assert link.frames_dropped == 5
        assert transport.stats.messages_lost == 5
        assert inbox == []

    def test_partial_loss_conserves_frames(self):
        net, scheduler, transport, injector, inbox = make_world(loss_seed=42)
        injector.arm(self._burst("a1", "b1", 0.4, at=0.5))
        scheduler.run_until(1.0)
        sent = 30
        for _ in range(sent):
            transport.send("a1", "b1", "svc", b"payload")
        scheduler.run_until(10.0)
        link = net.link("a1", "b1")
        # Single-link path: every frame either arrives or is counted lost.
        assert link.frames_dropped == transport.stats.messages_lost
        assert transport.stats.messages_delivered + transport.stats.messages_lost == sent
        assert 0 < transport.stats.messages_lost < sent
        assert link.bytes_carried == sent * len(b"payload")

    def test_loss_accounting_is_deterministic_per_seed(self):
        outcomes = []
        for _ in range(2):
            net, scheduler, transport, injector, inbox = make_world(loss_seed=9)
            injector.arm(self._burst("a1", "b1", 0.5, at=0.0))
            for _ in range(20):
                transport.send("a1", "b1", "svc", b"x" * 16)
            scheduler.run_until(10.0)
            outcomes.append(
                (net.link("a1", "b1").frames_dropped, len(inbox))
            )
        assert outcomes[0] == outcomes[1]
