"""Transport tests: delivery timing, eavesdropping surface, stats."""

from __future__ import annotations

import pytest

from repro.errors import LinkDownError
from repro.net.events import EventScheduler
from repro.net.simnet import Network
from repro.net.transport import Transport


@pytest.fixture()
def world():
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b", latency_s=0.010, secure=True)
    net.add_link("b", "c", latency_s=0.020, secure=False)
    scheduler = EventScheduler()
    return net, scheduler, Transport(net, scheduler)


class TestDelivery:
    def test_delivers_payload_to_service(self, world):
        net, scheduler, transport = world
        got = []
        net.node("b").bind("svc", lambda p, s: got.append((p, s)))
        transport.send("a", "b", "svc", b"ping")
        scheduler.run()
        assert got == [(b"ping", "a")]

    def test_delay_matches_path(self, world):
        net, scheduler, transport = world
        times = []
        net.node("c").bind("svc", lambda p, s: times.append(scheduler.now()))
        transport.send("a", "c", "svc", b"")
        scheduler.run()
        assert times[0] == pytest.approx(0.030, rel=0.01)

    def test_send_down_link_raises(self, world):
        net, scheduler, transport = world
        net.link("a", "b").up = False
        net.node("b").bind("svc", lambda p, s: None)
        with pytest.raises(LinkDownError):
            transport.send("a", "b", "svc", b"")

    def test_missing_service_counts_drop(self, world):
        net, scheduler, transport = world
        errors = []
        transport.send("a", "b", "ghost", b"", on_dropped=errors.append)
        scheduler.run()
        assert transport.stats.messages_dropped == 1
        assert errors

    def test_stats_track_bytes(self, world):
        net, scheduler, transport = world
        net.node("b").bind("svc", lambda p, s: None)
        transport.send("a", "b", "svc", b"12345")
        assert transport.stats.bytes_sent == 5

    def test_link_byte_accounting(self, world):
        net, scheduler, transport = world
        net.node("c").bind("svc", lambda p, s: None)
        transport.send("a", "c", "svc", b"xyz")
        assert net.link("a", "b").bytes_carried == 3
        assert net.link("b", "c").bytes_carried == 3


class TestEavesdropping:
    def test_insecure_link_observed(self, world):
        net, scheduler, transport = world
        net.node("c").bind("svc", lambda p, s: None)
        snoops = []
        transport.observe_link("b", "c", lambda p, src, dst: snoops.append(p))
        transport.send("a", "c", "svc", b"visible")
        assert snoops == [b"visible"]

    def test_secure_link_not_observed(self, world):
        net, scheduler, transport = world
        net.node("b").bind("svc", lambda p, s: None)
        snoops = []
        transport.observe_link("a", "b", lambda p, src, dst: snoops.append(p))
        transport.send("a", "b", "svc", b"hidden")
        assert snoops == []

    def test_detach_observer(self, world):
        net, scheduler, transport = world
        net.node("c").bind("svc", lambda p, s: None)
        snoops = []
        detach = transport.observe_link("b", "c", lambda p, src, dst: snoops.append(p))
        detach()
        transport.send("a", "c", "svc", b"x")
        assert snoops == []

    def test_observer_on_unknown_link_rejected(self, world):
        net, scheduler, transport = world
        with pytest.raises(Exception):
            transport.observe_link("a", "zz", lambda p, s, d: None)
