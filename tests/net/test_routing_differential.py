"""Differential routing test: our Dijkstra vs networkx on random graphs.

The planner's placement decisions ride on shortest-path costs, so routing
correctness is load-bearing; networkx provides the independent oracle.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinkDownError
from repro.net.simnet import Network

PROBE = 1024


@st.composite
def random_topology(draw):
    n = draw(st.integers(2, 10))
    nodes = [f"n{i}" for i in range(n)]
    possible = [(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]]
    edge_count = draw(st.integers(1, len(possible)))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=edge_count,
            max_size=edge_count,
            unique=True,
        )
    )
    latencies = draw(
        st.lists(
            st.floats(0.001, 1.0, allow_nan=False),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    return nodes, [(possible[i], lat) for i, lat in zip(indices, latencies)]


def build_pair(nodes, edges):
    net = Network()
    graph = nx.Graph()
    for name in nodes:
        net.add_node(name)
        graph.add_node(name)
    for (a, b), latency in edges:
        link = net.add_link(a, b, latency_s=latency, bandwidth_bps=1e9)
        graph.add_edge(a, b, weight=link.transfer_delay(PROBE))
    return net, graph


class TestDifferentialRouting:
    @settings(max_examples=60, deadline=None)
    @given(topology=random_topology(), data=st.data())
    def test_path_costs_match_networkx(self, topology, data):
        nodes, edges = topology
        net, graph = build_pair(nodes, edges)
        src = data.draw(st.sampled_from(nodes))
        dst = data.draw(st.sampled_from(nodes))
        try:
            ours = net.shortest_path(src, dst)
        except LinkDownError:
            assert not nx.has_path(graph, src, dst)
            return
        assert nx.has_path(graph, src, dst)
        expected = nx.shortest_path_length(graph, src, dst, weight="weight")
        actual = net.path_delay(ours, PROBE)
        assert actual == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(topology=random_topology(), data=st.data())
    def test_returned_path_is_connected(self, topology, data):
        nodes, edges = topology
        net, _ = build_pair(nodes, edges)
        src = data.draw(st.sampled_from(nodes))
        dst = data.draw(st.sampled_from(nodes))
        try:
            path = net.shortest_path(src, dst)
        except LinkDownError:
            return
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert net.link(a, b).up
