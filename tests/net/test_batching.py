"""Frame batching: coalescing, flush triggers, fault behaviour, snooping."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import LinkDownError, NetworkError
from repro.net.events import EventScheduler
from repro.net.simnet import Network
from repro.net.transport import (
    BatchConfig,
    Transport,
    decode_batch,
    encode_batch,
)
from repro.obs import names as metric_names


@pytest.fixture()
def world():
    net = Network()
    for name in ("a", "b"):
        net.add_node(name)
    net.add_link("a", "b", latency_s=0.010, bandwidth_bps=1e6, secure=False)
    scheduler = EventScheduler()
    return net, scheduler, Transport(net, scheduler)


class TestEnvelope:
    def test_round_trip(self):
        frames = [("svc", b"one"), ("other", b""), ("svc", b"\x00" * 100)]
        assert decode_batch(encode_batch(frames)) == frames

    def test_rejects_non_batch(self):
        with pytest.raises(NetworkError):
            decode_batch(b"plain payload")

    def test_config_validation(self):
        with pytest.raises(NetworkError):
            BatchConfig(max_frames=0)
        with pytest.raises(NetworkError):
            BatchConfig(window=-1.0)


class TestCoalescing:
    def test_burst_shares_one_wire_transfer(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=16, window=0.005)
        got = []
        net.node("b").bind("svc", lambda p, s: got.append(p))
        for index in range(5):
            transport.send("a", "b", "svc", b"m%d" % index)
        scheduler.run()
        assert got == [b"m0", b"m1", b"m2", b"m3", b"m4"]
        assert transport.stats.batches_sent == 1
        assert transport.stats.frames_coalesced == 5
        assert net.link("a", "b").batches_carried == 1

    def test_flow_order_preserved(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=2, window=0.01)
        got = []
        net.node("b").bind("svc", lambda p, s: got.append(p))
        for index in range(7):
            transport.send("a", "b", "svc", b"%d" % index)
        scheduler.run()
        assert got == [b"0", b"1", b"2", b"3", b"4", b"5", b"6"]

    def test_flush_on_max_frames(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=3, window=10.0)
        net.node("b").bind("svc", lambda p, s: None)
        with obs.scoped() as registry:
            for _ in range(3):
                transport.send("a", "b", "svc", b"x")
            # The size threshold flushed without waiting for the window.
            assert registry.counter_value(metric_names.NET_BATCH_FLUSHES_SIZE) == 1
            assert transport.stats.batches_sent == 1

    def test_flush_on_max_bytes(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=100, max_bytes=10, window=10.0)
        net.node("b").bind("svc", lambda p, s: None)
        transport.send("a", "b", "svc", b"x" * 6)
        assert transport.stats.batches_sent == 0
        transport.send("a", "b", "svc", b"y" * 6)
        assert transport.stats.batches_sent == 1

    def test_flush_on_window_tick(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=100, window=0.05)
        got = []
        net.node("b").bind("svc", lambda p, s: got.append(scheduler.now()))
        transport.send("a", "b", "svc", b"x")
        transport.send("a", "b", "svc", b"y")
        with obs.scoped() as registry:
            scheduler.run()
            assert registry.counter_value(metric_names.NET_BATCH_FLUSHES_TICK) == 1
        assert len(got) == 2
        assert got[0] >= 0.05  # queued for the window before the wire delay

    def test_single_frame_batch_is_plain_payload(self, world):
        # A lone frame must not pay the envelope: wire bytes and handler
        # payload are exactly the original frame.
        net, scheduler, transport = world
        transport.configure_batching(max_frames=8, window=0.001)
        got = []
        net.node("b").bind("svc", lambda p, s: got.append(p))
        transport.send("a", "b", "svc", b"solo")
        scheduler.run()
        assert got == [b"solo"]
        assert transport.stats.batches_sent == 0

    def test_disable_batching_returns_to_per_frame(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=8, window=0.01)
        transport.disable_batching()
        net.node("b").bind("svc", lambda p, s: None)
        transport.send("a", "b", "svc", b"x")
        transport.send("a", "b", "svc", b"y")
        scheduler.run()
        assert transport.stats.batches_sent == 0
        assert transport.stats.messages_delivered == 2


class TestFaults:
    def test_send_still_raises_when_link_down(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=8, window=0.01)
        net.link("a", "b").up = False
        with pytest.raises(LinkDownError):
            transport.send("a", "b", "svc", b"x")

    def test_link_down_mid_batch_fails_every_frame(self, world):
        # The route dies between enqueue and flush: every queued frame
        # must fire its drop callback instead of hanging forever.
        net, scheduler, transport = world
        transport.configure_batching(max_frames=8, window=0.05)
        net.node("b").bind("svc", lambda p, s: None)
        dropped = []
        for index in range(3):
            transport.send(
                "a", "b", "svc", b"m%d" % index, on_dropped=dropped.append
            )
        net.link("a", "b").up = False
        scheduler.run()
        assert len(dropped) == 3
        assert all(isinstance(exc, LinkDownError) for exc in dropped)
        assert transport.stats.messages_dropped == 3
        assert transport.stats.messages_delivered == 0

    def test_loss_eats_whole_batch(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=8, window=0.01)
        net.node("b").bind("svc", lambda p, s: None)
        net.link("a", "b").loss_rate = 1.0
        for _ in range(4):
            transport.send("a", "b", "svc", b"x")
        scheduler.run()
        # One wire frame lost -> all four logical frames lost together.
        assert transport.stats.messages_lost == 4
        assert net.link("a", "b").frames_dropped == 1


class TestVisibility:
    def test_snoop_sees_logical_frames_not_batches(self, world):
        net, scheduler, transport = world
        transport.configure_batching(max_frames=8, window=0.01)
        net.node("b").bind("svc", lambda p, s: None)
        seen = []
        transport.observe_link("a", "b", lambda p, src, dst: seen.append(p))
        transport.send("a", "b", "svc", b"first")
        transport.send("a", "b", "svc", b"second")
        scheduler.run()
        # An eavesdropper on the insecure link reads the same plaintext
        # frames with batching on or off — coalescing is not encryption.
        assert seen == [b"first", b"second"]
