"""Unit tests for the reference oracles themselves.

The oracles are the ground truth the simulation checker compares the
real stack against, so their own semantics are pinned here directly —
small enough to verify by eye, and tested anyway.
"""

from __future__ import annotations

import pytest

from repro.check.oracles import DrbacOracle, RpcOracle, ViewAclOracle


class TestDrbacOracle:
    def test_unpublished_edges_do_not_grant(self):
        oracle = DrbacOracle()
        oracle.delegate("d0", "Alice", "Org.Member", published=False)
        assert not oracle.holds("Alice", "Org.Member", 0.0)
        oracle.publish("d0")
        assert oracle.holds("Alice", "Org.Member", 0.0)

    def test_revocation_severs_membership(self):
        oracle = DrbacOracle()
        oracle.delegate("d0", "Alice", "Org.Member")
        assert oracle.holds("Alice", "Org.Member", 0.0)
        oracle.revoke("d0")
        assert not oracle.holds("Alice", "Org.Member", 0.0)

    def test_expiry_is_strict_after(self):
        oracle = DrbacOracle()
        oracle.delegate("d0", "Alice", "Org.Member", expires_at=10.0)
        # Mirrors Delegation.is_expired: live at the instant, dead after.
        assert oracle.holds("Alice", "Org.Member", 10.0)
        assert not oracle.holds("Alice", "Org.Member", 10.000001)

    def test_transitive_chain_through_role_subject(self):
        oracle = DrbacOracle()
        oracle.delegate("d0", "Alice", "OrgA.Writer")
        oracle.delegate("d1", "OrgA.Writer", "OrgB.Member")
        assert oracle.holds("Alice", "OrgB.Member", 0.0)
        oracle.revoke("d0")
        assert not oracle.holds("Alice", "OrgB.Member", 0.0)

    def test_dead_link_in_chain_kills_downstream_only(self):
        oracle = DrbacOracle()
        oracle.delegate("d0", "Alice", "OrgA.Writer")
        oracle.delegate("d1", "OrgA.Writer", "OrgB.Member", expires_at=5.0)
        assert oracle.holds("Alice", "OrgB.Member", 4.0)
        assert not oracle.holds("Alice", "OrgB.Member", 6.0)
        assert oracle.holds("Alice", "OrgA.Writer", 6.0)

    def test_missing_ref_operations_are_noops(self):
        oracle = DrbacOracle()
        oracle.revoke("ghost")
        oracle.publish("ghost")
        assert not oracle.is_published("ghost")

    def test_mutations(self):
        ignore_revoke = DrbacOracle(mutation="ignore-revoke")
        ignore_revoke.delegate("d0", "Alice", "Org.Member")
        ignore_revoke.revoke("d0")
        assert ignore_revoke.holds("Alice", "Org.Member", 0.0)

        ignore_expiry = DrbacOracle(mutation="ignore-expiry")
        ignore_expiry.delegate("d0", "Alice", "Org.Member", expires_at=1.0)
        assert ignore_expiry.holds("Alice", "Org.Member", 99.0)

        with pytest.raises(ValueError, match="unknown oracle mutation"):
            DrbacOracle(mutation="ignore-everything")


class TestViewAclOracle:
    def _oracle(self):
        drbac = DrbacOracle()
        rules = [("Org.Admin", "ViewAdmin"), ("Org.Member", "ViewMember")]
        return drbac, ViewAclOracle(drbac, rules, default="ViewAnon")

    def test_first_provable_role_wins(self):
        drbac, acl = self._oracle()
        drbac.delegate("d0", "Alice", "Org.Member")
        drbac.delegate("d1", "Alice", "Org.Admin")
        assert acl.resolve("Alice", 0.0) == "ViewAdmin"
        drbac.revoke("d1")
        assert acl.resolve("Alice", 0.0) == "ViewMember"

    def test_default_and_no_default(self):
        drbac, acl = self._oracle()
        assert acl.resolve("mallory", 0.0) == "ViewAnon"
        bare = ViewAclOracle(drbac, [("Org.Admin", "ViewAdmin")])
        assert bare.resolve("mallory", 0.0) is None


class TestRpcOracle:
    def test_unset_key_admits_none_only(self):
        oracle = RpcOracle()
        assert oracle.admissible("k") == {None}
        assert oracle.get_succeeded("k", None)
        assert not oracle.get_succeeded("k2", "surprise")

    def test_put_then_get_collapses(self):
        oracle = RpcOracle()
        assert oracle.put_succeeded("k", "v1", None)
        assert oracle.admissible("k") == {"v1"}
        assert oracle.get_succeeded("k", "v1")
        assert not oracle.get_succeeded("k", "v0")

    def test_unresolved_put_widens_until_a_read(self):
        oracle = RpcOracle()
        oracle.put_succeeded("k", "v1", None)
        oracle.put_unresolved("k", "v2")
        assert oracle.admissible("k") == {"v1", "v2"}
        # Either value is a legal read; the read collapses the set.
        assert oracle.get_succeeded("k", "v2")
        assert oracle.admissible("k") == {"v2"}

    def test_duplicated_put_may_observe_its_own_value(self):
        oracle = RpcOracle()
        oracle.put_succeeded("k", "v1", None)
        # Retried put: first execution's response lost, second returns v2.
        assert not oracle.put_succeeded("k", "v2", "v2")
        oracle2 = RpcOracle()
        oracle2.put_succeeded("k", "v1", None)
        assert oracle2.put_succeeded("k", "v2", "v2", may_duplicate=True)
        assert oracle2.admissible("k") == {"v2"}
