"""The crash-recovery differential drill (acceptance criterion).

One seeded simtest schedule with server crash-restarts, torn WAL tails,
and revocations landing during downtime must produce verdicts identical
to the reference oracles on both engines — and the ``skip-catchup``
mutation (recovery that forgets to pull the missed gap from the live
replica) must be caught as a divergence on the same trace.

Seed 1 at 200 steps is the pinned drill: its chaos plan crashes the
server with a torn tail while credentials churn, and the mutant
diverges at an authorization-guarded RPC once a stale verdict survives
recovery.
"""

from __future__ import annotations

import pytest

from repro.check import SimTester, generate_trace

DRILL_STEPS = 200


def crash_trace(seed: int):
    trace = generate_trace(seed=seed, steps=DRILL_STEPS, chaos=True)
    kinds = {fault["kind"] for fault in trace.faults}
    assert "node_crash_restart" in kinds, "drill trace must crash the server"
    return trace


class TestCrashRecoveryDrill:
    @pytest.mark.parametrize("engine", ["incr", "full"])
    def test_clean_recovery_matches_oracles(self, key_store, engine):
        trace = crash_trace(1)
        report = SimTester(key_store=key_store, engine=engine).run(trace)
        assert report.ok, report.summary()
        # The drill only proves something if the crash actually hit:
        # some operations must have observed the server down.
        assert any(":down" in line for line in report.transcript), (
            "no operation observed the crash window"
        )

    def test_skip_catchup_mutation_is_caught(self, key_store):
        trace = crash_trace(1)
        report = SimTester(key_store=key_store, mutation="skip-catchup").run(trace)
        assert not report.ok
        assert report.divergence is not None

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [2, 3])
    def test_skip_catchup_caught_across_seeds(self, key_store, seed):
        trace = crash_trace(seed)
        clean = SimTester(key_store=key_store).run(trace)
        assert clean.ok, clean.summary()
        mutant = SimTester(key_store=key_store, mutation="skip-catchup").run(trace)
        assert not mutant.ok

    def test_drill_report_is_deterministic(self, key_store):
        trace = crash_trace(1)
        tester = SimTester(key_store=key_store)
        assert tester.run(trace).to_json() == tester.run(trace).to_json()
