"""Trace serialization: dump, reload, replay — the repro file format."""

from __future__ import annotations

import pytest

from repro.check.gen import generate_trace
from repro.check.trace import SCHEMA, Op, Trace
from repro.faults.plan import FaultKind


class TestOp:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown simtest op kind"):
            Op("teleport", {})

    def test_dict_roundtrip_preserves_args(self):
        op = Op("rpc_put", {"subject": "Bob", "key": "k1", "value": "v9"})
        assert Op.from_dict(op.to_dict()) == op
        assert op.to_dict()["op"] == "rpc_put"

    def test_describe_is_sorted_and_stable(self):
        op = Op("delegate", {"ref": "d0", "issuer": "OrgA"})
        assert op.describe() == "delegate issuer=OrgA ref=d0"


class TestTraceJson:
    def test_roundtrip_identity(self):
        trace = generate_trace(seed=3, steps=60, chaos=True)
        clone = Trace.from_json(trace.to_json())
        assert clone.to_json() == trace.to_json()
        assert clone.seed == trace.seed
        assert clone.chaos is True
        assert [op.to_dict() for op in clone.ops] == [
            op.to_dict() for op in trace.ops
        ]

    def test_schema_is_checked(self):
        with pytest.raises(ValueError, match="not a simtest/v1 trace"):
            Trace.from_json('{"schema": "other/v9", "seed": 1, "ops": []}')

    def test_fault_plan_rebuilds_typed_events(self):
        trace = generate_trace(seed=3, steps=120, chaos=True)
        assert trace.faults, "chaos trace should carry faults"
        plan = trace.fault_plan()
        events = plan.events
        assert len(events) == len(trace.faults)
        assert all(isinstance(e.kind, FaultKind) for e in events)

    def test_with_ops_keeps_world_fixed(self):
        trace = generate_trace(seed=5, steps=40, chaos=True)
        sub = trace.with_ops(trace.ops[:7])
        assert len(sub) == 7
        assert sub.seed == trace.seed
        assert sub.faults == trace.faults
        assert sub.to_dict()["schema"] == SCHEMA


class TestGenerator:
    def test_same_seed_same_trace(self):
        a = generate_trace(seed=11, steps=200)
        b = generate_trace(seed=11, steps=200)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = generate_trace(seed=11, steps=200)
        b = generate_trace(seed=12, steps=200)
        assert a.to_json() != b.to_json()

    def test_requested_length_and_variety(self):
        trace = generate_trace(seed=2, steps=300)
        assert len(trace.ops) == 300
        kinds = {op.kind for op in trace.ops}
        assert {"delegate", "revoke", "authorize", "rpc_put", "advance"} <= kinds

    def test_steps_must_be_positive(self):
        with pytest.raises(ValueError, match="steps must be"):
            generate_trace(seed=1, steps=0)
