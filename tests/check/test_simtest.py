"""End-to-end simulation checker tests: determinism, divergence, shrink.

The expensive claims (long calm runs, chaos sweeps) are marked ``slow``
and excluded from tier-1; short runs keep the core guarantees in every
run: byte-identical reports, clean oracles on the real stack, and a
mutation that is detected and shrunk to a handful of operations.
"""

from __future__ import annotations

import pytest

from repro.check import SimTester, generate_trace, run_simtest, shrink_trace


@pytest.fixture(scope="module")
def tester(key_store):
    return SimTester(key_store=key_store)


class TestDeterminism:
    def test_same_seed_byte_identical_report(self, tester):
        trace = generate_trace(seed=7, steps=120)
        first = tester.run(trace)
        second = tester.run(trace)
        assert first.to_json() == second.to_json()
        assert first.transcript_digest() == second.transcript_digest()

    def test_chaos_run_is_also_deterministic(self, tester):
        trace = generate_trace(seed=2, steps=120, chaos=True)
        first = tester.run(trace)
        second = tester.run(trace)
        assert first.to_json() == second.to_json()

    def test_report_carries_metrics_and_counts(self, tester):
        trace = generate_trace(seed=9, steps=80)
        report = tester.run(trace)
        assert report.executed == 80
        assert report.comparisons > 0
        data = report.to_dict()
        assert data["schema"] == "simtest-report/v1"
        assert data["metrics"]["counters"]["check.ops"] == 80


class TestOraclesAgree:
    @pytest.mark.parametrize("seed", [1, 7, 13])
    def test_calm_runs_are_divergence_free(self, tester, seed):
        trace = generate_trace(seed=seed, steps=150)
        report = tester.run(trace)
        assert report.ok, report.summary()

    @pytest.mark.parametrize("seed", [3, 5])
    def test_chaos_runs_are_divergence_free(self, tester, seed):
        trace = generate_trace(seed=seed, steps=150, chaos=True)
        report = tester.run(trace)
        assert report.ok, report.summary()

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", list(range(1, 9)))
    def test_chaos_sweep(self, tester, seed):
        trace = generate_trace(seed=seed, steps=400, chaos=True)
        report = tester.run(trace)
        assert report.ok, report.summary()

    @pytest.mark.slow
    def test_long_calm_run(self, tester):
        trace = generate_trace(seed=7, steps=1000)
        report = tester.run(trace)
        assert report.ok, report.summary()


class TestMutationDetectionAndShrink:
    """The checker's own fire drill: break an oracle, catch it, shrink it."""

    def test_ignore_revoke_shrinks_to_a_tiny_repro(self, key_store):
        mutant = SimTester(key_store=key_store, mutation="ignore-revoke")
        trace = generate_trace(seed=7, steps=300)
        report = mutant.run(trace)
        assert not report.ok
        result = shrink_trace(trace, mutant)
        assert len(result.trace.ops) <= 10
        assert result.removed >= 290
        # The minimal repro must still mention a revoke: that is the
        # semantic the mutation broke.
        assert any(op.kind == "revoke" for op in result.trace.ops)
        # And it replays: the shrunken trace alone still diverges.
        assert not mutant.run(result.trace).ok

    def test_shrunken_trace_is_clean_without_the_mutation(self, key_store, tester):
        mutant = SimTester(key_store=key_store, mutation="ignore-revoke")
        trace = generate_trace(seed=7, steps=300)
        result = shrink_trace(trace, mutant)
        assert tester.run(result.trace).ok

    @pytest.mark.slow
    def test_ignore_expiry_is_caught_too(self, key_store):
        mutant = SimTester(key_store=key_store, mutation="ignore-expiry")
        trace = generate_trace(seed=11, steps=500)
        report = mutant.run(trace)
        assert not report.ok
        result = shrink_trace(trace, mutant)
        assert len(result.trace.ops) <= 10

    def test_shrink_requires_a_diverging_trace(self, tester):
        trace = generate_trace(seed=1, steps=30)
        with pytest.raises(ValueError, match="diverging trace"):
            shrink_trace(trace, tester)


class TestRunSimtest:
    def test_convenience_wrapper(self, key_store):
        trace, report, tester = run_simtest(seed=4, steps=60, key_store=key_store)
        assert len(trace.ops) == 60
        assert report.ok
        assert isinstance(tester, SimTester)
