"""Clock abstraction tests."""

from __future__ import annotations

import pytest

from repro.clock import Clock, ManualClock, SystemClock


class TestManualClock:
    def test_starts_at_origin(self):
        assert ManualClock().now() == 0.0
        assert ManualClock(start=5.0).now() == 5.0

    def test_advance(self):
        clock = ManualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_backwards_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        clock.advance(10)
        with pytest.raises(ValueError):
            clock.set(5)

    def test_set_forward(self):
        clock = ManualClock()
        clock.set(7.0)
        assert clock.now() == 7.0

    def test_satisfies_protocol(self):
        assert isinstance(ManualClock(), Clock)


class TestSystemClock:
    def test_monotonic_nonnegative(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert 0 <= first <= second

    def test_satisfies_protocol(self):
        assert isinstance(SystemClock(), Clock)
