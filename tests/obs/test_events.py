"""Structured event log and flight-recorder snapshots."""

from __future__ import annotations

from repro import obs
from repro.clock import ManualClock
from repro.obs.events import NULL_EVENT, NULL_EVENT_LOG, EventLog
from repro.obs.flight import SCHEMA as FLIGHT_SCHEMA


class TestEventLog:
    def test_emit_assigns_seq_and_clock_time(self):
        clock = ManualClock()
        log = EventLog(clock)
        first = log.emit("auth.decision", principal="alice", verdict="grant")
        clock.advance(2.0)
        second = log.emit("rpc.retry", attempt=2)
        assert (first.seq, first.at) == (1, 0.0)
        assert (second.seq, second.at) == (2, 2.0)
        assert first.kind == "auth.decision"
        assert first.fields == {"principal": "alice", "verdict": "grant"}

    def test_ring_buffer_evicts_and_counts(self):
        log = EventLog(ManualClock(), max_events=3)
        for i in range(5):
            log.emit("tick", n=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.fields["n"] for e in log.tail()] == [2, 3, 4]
        # seq keeps counting across evictions: ordering stays total.
        assert [e.seq for e in log.tail()] == [3, 4, 5]

    def test_tail_and_find(self):
        log = EventLog(ManualClock())
        log.emit("a", n=1)
        log.emit("b", n=2)
        log.emit("a", n=3)
        assert [e.kind for e in log.tail(2)] == ["b", "a"]
        assert [e.fields["n"] for e in log.find("a")] == [1, 3]

    def test_a_field_may_be_named_kind(self):
        # The positional-only first parameter exists exactly for this.
        log = EventLog(ManualClock())
        event = log.emit("fault.inject", kind="link_down", fault_class="net")
        assert event.kind == "fault.inject"
        assert event.fields["kind"] == "link_down"

    def test_reset_clears_everything(self):
        log = EventLog(ManualClock(), max_events=2)
        for i in range(4):
            log.emit("tick", n=i)
        log.reset()
        assert len(log) == 0
        assert log.dropped == 0
        assert log.emit("fresh").seq == 1

    def test_to_dict_sorts_fields(self):
        log = EventLog(ManualClock())
        event = log.emit("e", zebra=1, alpha=2)
        assert list(event.to_dict()["fields"]) == ["alpha", "zebra"]


class TestModuleApi:
    def test_obs_event_lands_in_the_scoped_log(self):
        with obs.scoped():
            obs.event("auth.decision", principal="alice", verdict="grant")
            log = obs.get_event_log()
            assert len(log) == 1
            assert log.find("auth.decision")[0].fields["verdict"] == "grant"

    def test_disabled_event_is_the_null_twin(self):
        with obs.scoped(enabled=False):
            assert obs.get_event_log() is NULL_EVENT_LOG
            event = obs.event("anything", n=1)
            assert event is NULL_EVENT
            assert len(NULL_EVENT_LOG) == 0

    def test_set_tracer_clock_also_moves_the_event_log(self):
        with obs.scoped():
            clock = ManualClock()
            clock.advance(7.0)
            obs.set_tracer_clock(clock)
            assert obs.event("e").at == 7.0


class TestFlightRecorder:
    def test_snapshot_shape(self):
        with obs.scoped():
            clock = ManualClock()
            obs.set_tracer_clock(clock)
            obs.event("auth.decision", verdict="deny")
            tracer = obs.get_tracer()
            with tracer.span("finished.root"):
                pass
            live = tracer.start("live.span")
            with tracer.activate(live):
                snap = obs.flight_snapshot("simtest.divergence")
            live.finish()
        assert snap["schema"] == FLIGHT_SCHEMA
        assert snap["reason"] == "simtest.divergence"
        assert [e["kind"] for e in snap["events"]] == ["auth.decision"]
        assert snap["events_dropped"] == 0
        assert [s["name"] for s in snap["live_spans"]] == ["live.span"]
        assert snap["live_spans"][0]["open"] is True
        assert [r["name"] for r in snap["recent_roots"]] == ["finished.root"]

    def test_snapshot_bounds_the_tails(self):
        with obs.scoped():
            for i in range(30):
                obs.event("tick", n=i)
            tracer = obs.get_tracer()
            for i in range(20):
                with tracer.span(f"r{i}"):
                    pass
            snap = obs.flight_snapshot("x", tail_events=5, recent_roots=3)
        assert [e["fields"]["n"] for e in snap["events"]] == list(range(25, 30))
        assert [r["name"] for r in snap["recent_roots"]] == ["r17", "r18", "r19"]

    def test_snapshot_is_json_compatible(self):
        import json

        with obs.scoped():
            obs.event("e", n=1, label="x")
            with obs.get_tracer().span("s", node="client"):
                pass
            snap = obs.flight_snapshot("test")
        assert json.loads(json.dumps(snap, sort_keys=True)) == snap
