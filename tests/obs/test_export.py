"""Chrome/Perfetto trace-event export: shape, tracks, determinism."""

from __future__ import annotations

import json

from repro.clock import ManualClock
from repro.obs.events import EventLog
from repro.obs.export import MAIN_TID, PID, to_chrome_trace
from repro.obs.trace import Tracer, format_span_id, format_trace_id


def _sample_tracer() -> tuple[Tracer, EventLog, ManualClock]:
    clock = ManualClock()
    tracer = Tracer(clock)
    log = EventLog(clock)
    client = tracer.start("rpc.client", node="client", method="get")
    clock.advance(0.004)
    server = tracer.start("rpc.server", remote=client.context(), node="server")
    with tracer.activate(server):
        with tracer.span("drbac.proof.search"):
            clock.advance(0.001)
    log.emit("auth.decision", node="server", verdict="grant")
    server.finish()
    clock.advance(0.004)
    client.finish()
    return tracer, log, clock


class TestExportShape:
    def test_thread_metadata_names_every_node_track(self):
        tracer, log, _ = _sample_tracer()
        trace = to_chrome_trace(tracer, log)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["tid"]: e["args"]["name"] for e in meta}
        assert names[MAIN_TID] == "main"
        assert set(names.values()) == {"main", "client", "server"}

    def test_spans_become_complete_events_in_microseconds(self):
        tracer, log, _ = _sample_tracer()
        trace = to_chrome_trace(tracer, log)
        spans = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        client = spans["rpc.client"]
        assert client["ts"] == 0
        assert client["dur"] == 9000  # 9 ms of virtual time
        assert client["pid"] == PID
        assert client["cat"] == "rpc"
        search = spans["drbac.proof.search"]
        assert search["dur"] == 1000
        assert search["cat"] == "drbac"

    def test_args_carry_the_stitching_ids(self):
        tracer, log, _ = _sample_tracer()
        trace = to_chrome_trace(tracer, log)
        spans = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        client, server = spans["rpc.client"], spans["rpc.server"]
        # One shared trace id; the server's parent is the client span.
        assert server["args"]["trace_id"] == client["args"]["trace_id"]
        assert server["args"]["parent_id"] == client["args"]["span_id"]
        assert client["args"]["trace_id"] == format_trace_id(1)
        assert server["args"]["parent_id"] == format_span_id(1)
        # Attributes ride along; the node moved to the track name.
        assert client["args"]["method"] == "get"
        assert "node" not in client["args"]

    def test_events_become_instants_on_their_node_track(self):
        tracer, log, _ = _sample_tracer()
        trace = to_chrome_trace(tracer, log)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        (instant,) = instants
        assert instant["name"] == "auth.decision"
        assert instant["s"] == "t"
        meta = {
            e["args"]["name"]: e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert instant["tid"] == meta["server"]

    def test_export_is_deterministic(self):
        first = json.dumps(
            to_chrome_trace(*_sample_tracer()[:2]), sort_keys=True
        )
        second = json.dumps(
            to_chrome_trace(*_sample_tracer()[:2]), sort_keys=True
        )
        assert first == second

    def test_dropped_roots_surface_in_other_data(self):
        clock = ManualClock()
        tracer = Tracer(clock, max_spans=1)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        trace = to_chrome_trace(tracer)
        assert trace["otherData"]["spans_dropped"] == 2
