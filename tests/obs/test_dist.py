"""The traced scenario behind ``python -m repro trace``.

These are the end-to-end distributed-tracing assertions from the issue:
one chaos-mode RPC shows client span → per-retry attempt spans →
transport/batch spans → server-side proof-search span, all under one
shared trace id, exported as valid Chrome trace-event JSON — and the
whole export is byte-identical for one seed.
"""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro import obs
from repro.obs.dist import SCHEMA, run_trace


def _spans(trace: dict) -> list[dict]:
    return [e for e in trace["traceEvents"] if e.get("ph") == "X"]


def _by_trace(trace: dict) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = defaultdict(list)
    for span in _spans(trace):
        grouped[span["args"]["trace_id"]].append(span)
    return grouped


@pytest.fixture(scope="module")
def clean_trace(key_store):
    return run_trace(7, key_store=key_store)


@pytest.fixture(scope="module")
def chaos_trace(key_store):
    return run_trace(7, chaos=True, key_store=key_store)


class TestCleanTrace:
    def test_report_metadata(self, clean_trace):
        other = clean_trace["otherData"]
        assert other["schema"] == SCHEMA
        assert other["seed"] == 7
        assert other["chaos"] is False
        assert other["retries"] == 0
        assert other["frames_lost"] == 0

    def test_workload_outcomes(self, clean_trace):
        ops = clean_trace["otherData"]["ops"]
        assert [op[0] for op in ops] == ["put", "get", "check", "get", "check"]
        # alice's ops succeed; mallory's get is denied over the wire;
        # mallory's check resolves the anonymous default view.
        assert ops[1] == ["get", "ok", "'hello'"]
        assert ops[2][2] == "[True, 'ViewTraceKV_Member']"
        assert ops[3] == ["get", "error", "RemoteError"]
        assert ops[4][2] == "[False, 'ViewTraceKV_Anonymous']"

    def test_one_trace_per_op_stitched_client_to_server(self, clean_trace):
        grouped = _by_trace(clean_trace)
        client_traces = [
            spans for spans in grouped.values()
            if any(s["name"] == "rpc.client" for s in spans)
        ]
        assert len(client_traces) == 5
        for spans in client_traces:
            names = {s["name"] for s in spans}
            assert {"rpc.client", "net.transmit", "rpc.server"} <= names

    def test_server_work_nests_under_the_server_span(self, clean_trace):
        grouped = _by_trace(clean_trace)
        # The first op is a cache miss: its trace must contain the dRBAC
        # proof search and the view resolution under the server span.
        first = next(
            spans for spans in grouped.values()
            if any(s["name"] == "drbac.proof.search" for s in spans)
        )
        by_id = {s["args"]["span_id"]: s for s in first}
        search = next(s for s in first if s["name"] == "drbac.proof.search")
        resolve = next(s for s in first if s["name"] == "views.acl.resolve")
        assert by_id[search["args"]["parent_id"]]["name"] == "rpc.server"
        assert by_id[resolve["args"]["parent_id"]]["name"] == "rpc.server"

    def test_denial_tags_the_server_and_client_spans(self, clean_trace):
        spans = _spans(clean_trace)
        assert any(
            s["name"] == "rpc.server"
            and s["args"].get("error") == "AuthorizationError"
            for s in spans
        )
        assert any(
            s["name"] == "rpc.client"
            and s["args"].get("error") == "RemoteError"
            for s in spans
        )

    def test_audit_instants_present(self, clean_trace):
        instants = [
            e["name"] for e in clean_trace["traceEvents"] if e.get("ph") == "i"
        ]
        assert "auth.decision" in instants
        assert "view.resolve" in instants


class TestChaosTrace:
    def test_losses_and_retries_happened(self, chaos_trace):
        other = chaos_trace["otherData"]
        assert other["chaos"] is True
        assert other["frames_lost"] > 0
        assert other["retries"] > 0

    def test_attempts_are_children_of_the_retrying_client_span(
        self, chaos_trace
    ):
        grouped = _by_trace(chaos_trace)
        retried = next(
            spans for spans in grouped.values()
            if sum(s["name"] == "rpc.attempt" for s in spans) > 1
        )
        by_id = {s["args"]["span_id"]: s for s in retried}
        for attempt in (s for s in retried if s["name"] == "rpc.attempt"):
            parent = by_id[attempt["args"]["parent_id"]]
            assert parent["name"] == "rpc.client"
            assert parent["args"]["retrying"] is True

    def test_full_chain_under_one_trace_id(self, chaos_trace):
        grouped = _by_trace(chaos_trace)
        chain = {
            "rpc.client", "rpc.attempt", "net.transmit",
            "rpc.server", "drbac.proof.search",
        }
        assert any(
            chain <= {s["name"] for s in spans} for spans in grouped.values()
        )

    def test_lost_frames_tag_their_transmit_spans(self, chaos_trace):
        assert any(
            s["name"] == "net.transmit" and s["args"].get("error") == "FrameLost"
            for s in _spans(chaos_trace)
        )

    def test_server_stitches_to_the_attempt_that_reached_it(self, chaos_trace):
        grouped = _by_trace(chaos_trace)
        for spans in grouped.values():
            attempts = {
                s["args"]["span_id"] for s in spans if s["name"] == "rpc.attempt"
            }
            if not attempts:
                continue
            for server in (s for s in spans if s["name"] == "rpc.server"):
                assert server["args"]["parent_id"] in attempts


class TestDeterminismAndIsolation:
    def test_same_seed_byte_identical(self, key_store):
        first = json.dumps(
            run_trace(3, chaos=True, key_store=key_store), sort_keys=True
        )
        second = json.dumps(
            run_trace(3, chaos=True, key_store=key_store), sort_keys=True
        )
        assert first == second

    def test_different_seeds_differ_under_chaos(self, key_store):
        a = run_trace(3, chaos=True, key_store=key_store)
        b = run_trace(4, chaos=True, key_store=key_store)
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_export_is_valid_json(self, clean_trace):
        assert json.loads(json.dumps(clean_trace, sort_keys=True)) == clean_trace

    def test_scenario_restores_ambient_obs_state(self, key_store):
        before = (obs.is_enabled(), obs.dist_enabled(), obs.get_tracer())
        run_trace(5, key_store=key_store)
        assert (obs.is_enabled(), obs.dist_enabled(), obs.get_tracer()) == before
