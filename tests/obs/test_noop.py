"""The module-level obs API: enable/disable, scoped state, snapshots."""

from __future__ import annotations

from repro import obs
from repro.clock import ManualClock
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER


class TestDisabledMode:
    def test_disable_swaps_in_the_null_twins(self):
        with obs.scoped():
            obs.disable()
            assert not obs.is_enabled()
            assert obs.get_registry() is NULL_REGISTRY
            assert obs.get_tracer() is NULL_TRACER
            assert obs.counter("any.name") is NULL_COUNTER
            assert obs.gauge("any.name") is NULL_GAUGE
            assert obs.histogram("any.name") is NULL_HISTOGRAM
            assert obs.span("any.name") is NULL_SPAN

    def test_disabled_instrumentation_records_nothing(self):
        with obs.scoped(enabled=False) as reg:
            obs.counter("c").inc(100)
            obs.gauge("g").set(9)
            obs.histogram("h").observe(1.0)
            with obs.span("s", key="value"):
                pass
            assert reg.names() == []

    def test_null_span_nests_as_a_no_op(self):
        with obs.scoped(enabled=False):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert inner is outer is NULL_SPAN
            assert NULL_SPAN.set(anything=1) is NULL_SPAN
            assert NULL_SPAN.duration == 0.0

    def test_enable_after_disable_starts_fresh(self):
        with obs.scoped():
            obs.counter("stale").inc()
            obs.disable()
            obs.enable()
            assert obs.is_enabled()
            assert obs.get_registry().names() == []
            obs.counter("fresh").inc()
            assert obs.get_registry().counter_value("fresh") == 1

    def test_enable_when_already_enabled_keeps_state(self):
        with obs.scoped() as reg:
            obs.counter("kept").inc()
            obs.enable()
            assert obs.get_registry() is reg
            assert reg.counter_value("kept") == 1


class TestScoped:
    def test_scoped_isolates_and_restores(self):
        outer_registry = obs.get_registry()
        outer_enabled = obs.is_enabled()
        with obs.scoped() as reg:
            assert obs.get_registry() is reg
            assert reg is not outer_registry
            obs.counter("scoped.only").inc()
        assert obs.get_registry() is outer_registry
        assert obs.is_enabled() == outer_enabled

    def test_scoped_restores_even_on_error(self):
        outer_registry = obs.get_registry()
        try:
            with obs.scoped():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.get_registry() is outer_registry

    def test_nested_scopes_do_not_leak(self):
        with obs.scoped() as outer:
            obs.counter("outer.c").inc()
            with obs.scoped() as inner:
                obs.counter("inner.c").inc()
                assert inner.counter_value("outer.c") == 0
            assert obs.get_registry() is outer
            assert outer.counter_value("inner.c") == 0

    def test_scoped_clock_drives_spans(self):
        clock = ManualClock()
        with obs.scoped(clock=clock):
            with obs.span("virtual") as span:
                clock.advance(4.0)
            assert span.duration == 4.0


class TestReporting:
    def test_snapshot_reflects_active_registry(self):
        with obs.scoped():
            obs.counter("snap.c").inc(2)
            snap = obs.snapshot()
        assert snap["counters"] == {"snap.c": 2}

    def test_reset_clears_without_changing_mode(self):
        with obs.scoped():
            obs.counter("c").inc()
            obs.reset()
            assert obs.is_enabled()
            assert obs.get_registry().names() == []

    def test_format_snapshot_lists_every_section(self):
        with obs.scoped():
            obs.counter("c.one").inc(3)
            obs.gauge("g.one").set(2)
            obs.histogram("h.one").observe(0.5)
            obs.histogram("h.empty")
            text = obs.format_snapshot()
        assert "== counters ==" in text
        assert "c.one" in text and "3" in text
        assert "== gauges ==" in text
        assert "== histograms ==" in text
        assert "count=1" in text
        assert "count=0" in text  # the empty histogram renders too

    def test_format_snapshot_empty_message(self):
        with obs.scoped(enabled=False):
            assert "no metrics recorded" in obs.format_snapshot()

    def test_catalogue_buckets_applied_by_name(self):
        from repro.obs import names
        with obs.scoped():
            h = obs.histogram(names.PROOF_EDGES_VISITED)
            assert h.buckets == tuple(float(b) for b in obs.COUNT_BUCKETS)
