"""Metrics primitives: counters, gauges, histogram quantiles, registry."""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_summary_tracks_count_sum_min_max_mean(self):
        h = Histogram("h", COUNT_BUCKETS)
        for v in (1, 2, 3, 10):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 16
        assert s["min"] == 1
        assert s["max"] == 10
        assert s["mean"] == 4

    def test_empty_summary_and_quantile(self):
        h = Histogram("h")
        assert h.summary() == {"count": 0, "sum": 0.0}
        assert math.isnan(h.quantile(0.5))

    def test_quantile_bounds_checked(self):
        h = Histogram("h")
        with pytest.raises(ValueError, match="outside"):
            h.quantile(1.5)

    def test_single_value_quantiles_collapse(self):
        h = Histogram("h", COUNT_BUCKETS)
        for _ in range(100):
            h.observe(7)
        assert h.quantile(0.5) == 7
        assert h.quantile(0.95) == 7
        assert h.quantile(0.99) == 7

    def test_quantiles_clamped_to_observed_range(self):
        # One sample in a wide bucket: interpolation must not report a
        # value outside [min, max].
        h = Histogram("h", (1, 1000))
        h.observe(500)
        assert h.quantile(0.01) == 500
        assert h.quantile(0.99) == 500

    def test_quantiles_accurate_to_bucket_width(self):
        rng = random.Random(42)
        h = Histogram("h", tuple(range(1, 101)))  # unit-width buckets
        samples = [rng.uniform(0, 100) for _ in range(5000)]
        for v in samples:
            h.observe(v)
        samples.sort()
        for q in (0.50, 0.95, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            assert h.quantile(q) == pytest.approx(exact, abs=1.5)

    def test_overflow_bucket_reports_max(self):
        h = Histogram("h", (1, 2))
        h.observe(1)
        h.observe(50)  # beyond the last bound
        assert h.max == 50
        assert h.quantile(0.99) == 50

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (2, 1))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1, 1, 2))


class TestRegistry:
    def test_creation_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as a counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered as a counter"):
            reg.histogram("x")

    def test_names_and_kinds(self):
        reg = MetricsRegistry()
        reg.counter("a.c")
        reg.gauge("a.g")
        reg.histogram("a.h")
        assert reg.names() == ["a.c", "a.g", "a.h"]
        assert reg.kinds() == {"a.c": "counter", "a.g": "gauge", "a.h": "histogram"}

    def test_counter_value_defaults_to_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("never.created") == 0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", COUNT_BUCKETS).observe(2)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []
        assert reg.counter_value("c") == 0

    def test_null_registry_allocates_nothing(self):
        NULL_REGISTRY.counter("x").inc(10)
        NULL_REGISTRY.gauge("y").set(5)
        NULL_REGISTRY.histogram("z").observe(1)
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
