"""Tracer and span behaviour: nesting, durations, retention, identities."""

from __future__ import annotations

from repro import obs
from repro.clock import ManualClock
from repro.obs import names
from repro.obs.trace import Tracer, format_span_id, format_trace_id


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = Tracer(ManualClock())
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner") as inner:
                    assert tracer.current is inner
        assert mid.parent is outer
        assert inner.parent is mid
        assert outer.children == [mid]
        assert mid.children == [inner]
        assert (outer.depth, mid.depth, inner.depth) == (0, 1, 2)

    def test_siblings_share_a_parent(self):
        tracer = Tracer(ManualClock())
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [c.name for c in root.children] == ["a", "b"]

    def test_only_roots_retained(self):
        tracer = Tracer(ManualClock())
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.roots()] == ["root"]
        # but find() walks the whole retained tree
        assert len(tracer.find("child")) == 1

    def test_current_clears_after_exit(self):
        tracer = Tracer(ManualClock())
        with tracer.span("s"):
            pass
        assert tracer.current is None


class TestDurations:
    def test_duration_uses_the_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("timed") as span:
            clock.advance(2.5)
        assert span.duration == 2.5
        assert span.start == 0.0
        assert span.end == 2.5

    def test_open_span_measures_to_now(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("open") as span:
            clock.advance(1.0)
            assert span.duration == 1.0
            clock.advance(1.0)
            assert span.duration == 2.0

    def test_nested_durations_are_disjoint(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(3.0)
            clock.advance(1.0)
        assert inner.duration == 3.0
        assert outer.duration == 5.0


class TestAttributes:
    def test_attributes_at_creation_and_via_set(self):
        tracer = Tracer(ManualClock())
        with tracer.span("s", role="Member") as span:
            span.set(result="found")
        assert span.attributes == {"role": "Member", "result": "found"}


class TestRetention:
    def test_bounded_root_retention(self):
        tracer = Tracer(ManualClock(), max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s2", "s3", "s4"]

    def test_reset_clears_retained_spans(self):
        tracer = Tracer(ManualClock())
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.current is None

    def test_leaked_child_does_not_corrupt_the_stack(self):
        # An exception between a child's enter and exit leaves it on the
        # stack; the parent's exit must pop through it.
        tracer = Tracer(ManualClock())
        outer = tracer.span("outer")
        outer.__enter__()
        tracer.span("leaked").__enter__()  # never exited
        outer.__exit__(None, None, None)
        assert tracer.current is None
        with tracer.span("after") as after:
            pass
        assert after.parent is None

    def test_evicting_a_root_counts_dropped(self):
        with obs.scoped() as registry:
            tracer = obs.get_tracer()
            tracer.finished = type(tracer.finished)(maxlen=2)
            for i in range(5):
                with tracer.span(f"s{i}"):
                    pass
            assert tracer.dropped == 3
            assert registry.counter_value(names.TRACE_DROPPED) == 3


class TestIdentifiers:
    def test_each_root_starts_a_fresh_trace(self):
        tracer = Tracer(ManualClock())
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.parent_id == 0 and b.parent_id == 0

    def test_children_inherit_the_trace_and_link_to_parents(self):
        tracer = Tracer(ManualClock())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_ids_are_deterministic_after_reset(self):
        tracer = Tracer(ManualClock())

        def mint():
            with tracer.span("root") as root:
                with tracer.span("child") as child:
                    pass
            return (root.trace_id, root.span_id, child.span_id)

        first = mint()
        tracer.reset()
        assert mint() == first

    def test_hex_formatting_is_w3c_shaped(self):
        assert format_trace_id(255) == "0" * 30 + "ff"
        assert len(format_trace_id(1)) == 32
        assert len(format_span_id(1)) == 16


class TestManualSpans:
    def test_start_finish_lifecycle(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        span = tracer.start("rpc.client", node="client")
        clock.advance(1.5)
        span.finish()
        assert span.end == 1.5
        assert [s.name for s in tracer.roots()] == ["rpc.client"]

    def test_finish_is_idempotent(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        span = tracer.start("once")
        span.finish()
        clock.advance(5.0)
        span.finish()
        assert span.end == 0.0
        assert len(tracer.roots()) == 1

    def test_explicit_parent_attaches_without_stack(self):
        tracer = Tracer(ManualClock())
        parent = tracer.start("parent")
        child = tracer.start("child", parent=parent)
        child.finish()
        parent.finish()
        assert child.parent is parent
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        # Only the parent is a root.
        assert [s.name for s in tracer.roots()] == ["parent"]

    def test_remote_parent_makes_a_stitched_local_root(self):
        tracer = Tracer(ManualClock())
        server = tracer.start("rpc.server", remote=(77, 13))
        server.finish()
        assert server.trace_id == 77
        assert server.parent_id == 13
        assert [s.name for s in tracer.roots()] == ["rpc.server"]

    def test_activation_nests_stack_spans_under_a_manual_span(self):
        tracer = Tracer(ManualClock())
        manual = tracer.start("rpc.server", remote=(1, 1))
        with tracer.activate(manual):
            with tracer.span("drbac.proof.search") as search:
                pass
        manual.finish()
        assert search.parent is manual
        assert search.trace_id == manual.trace_id
        assert tracer.current is None

    def test_error_tagging(self):
        tracer = Tracer(ManualClock())
        span = tracer.start("rpc.client")
        assert span.ok
        span.set_error("RpcTimeoutError")
        assert not span.ok
        assert span.attributes["error"] == "RpcTimeoutError"

    def test_to_dict_round_trips_the_subtree(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        root = tracer.start("root", node="client")
        child = tracer.start("child", parent=root)
        clock.advance(0.5)
        child.finish()
        root.finish()
        dump = root.to_dict()
        assert dump["name"] == "root"
        assert dump["attributes"] == {"node": "client"}
        assert dump["children"][0]["name"] == "child"
        assert dump["children"][0]["parent_id"] == format_span_id(root.span_id)

    def test_open_span_dumps_as_open(self):
        tracer = Tracer(ManualClock())
        span = tracer.start("live")
        assert span.to_dict()["open"] is True
