"""Tracer and span behaviour: nesting, durations, retention."""

from __future__ import annotations

from repro.clock import ManualClock
from repro.obs.trace import Tracer


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = Tracer(ManualClock())
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner") as inner:
                    assert tracer.current is inner
        assert mid.parent is outer
        assert inner.parent is mid
        assert outer.children == [mid]
        assert mid.children == [inner]
        assert (outer.depth, mid.depth, inner.depth) == (0, 1, 2)

    def test_siblings_share_a_parent(self):
        tracer = Tracer(ManualClock())
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [c.name for c in root.children] == ["a", "b"]

    def test_only_roots_retained(self):
        tracer = Tracer(ManualClock())
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.roots()] == ["root"]
        # but find() walks the whole retained tree
        assert len(tracer.find("child")) == 1

    def test_current_clears_after_exit(self):
        tracer = Tracer(ManualClock())
        with tracer.span("s"):
            pass
        assert tracer.current is None


class TestDurations:
    def test_duration_uses_the_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("timed") as span:
            clock.advance(2.5)
        assert span.duration == 2.5
        assert span.start == 0.0
        assert span.end == 2.5

    def test_open_span_measures_to_now(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("open") as span:
            clock.advance(1.0)
            assert span.duration == 1.0
            clock.advance(1.0)
            assert span.duration == 2.0

    def test_nested_durations_are_disjoint(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(3.0)
            clock.advance(1.0)
        assert inner.duration == 3.0
        assert outer.duration == 5.0


class TestAttributes:
    def test_attributes_at_creation_and_via_set(self):
        tracer = Tracer(ManualClock())
        with tracer.span("s", role="Member") as span:
            span.set(result="found")
        assert span.attributes == {"role": "Member", "result": "found"}


class TestRetention:
    def test_bounded_root_retention(self):
        tracer = Tracer(ManualClock(), max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s2", "s3", "s4"]

    def test_reset_clears_retained_spans(self):
        tracer = Tracer(ManualClock())
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.current is None

    def test_leaked_child_does_not_corrupt_the_stack(self):
        # An exception between a child's enter and exit leaves it on the
        # stack; the parent's exit must pop through it.
        tracer = Tracer(ManualClock())
        outer = tracer.span("outer")
        outer.__enter__()
        tracer.span("leaked").__enter__()  # never exited
        outer.__exit__(None, None, None)
        assert tracer.current is None
        with tracer.span("after") as after:
            pass
        assert after.parent is None
