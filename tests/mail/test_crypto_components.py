"""Encryptor/Decryptor pair tests."""

from __future__ import annotations

import pytest

from repro.errors import CipherError
from repro.mail.crypto_components import Decryptor, Encryptor, derive_pair_key
from repro.mail.server import MailServer


@pytest.fixture()
def chain():
    server = MailServer()
    server.create_account("alice")
    encryptor = Encryptor(server)
    decryptor = Decryptor(encryptor)
    return server, encryptor, decryptor


class TestPair:
    def test_send_through_chain(self, chain):
        server, _, decryptor = chain
        assert decryptor.sendMail({"recipient": "alice", "body": "secret"})
        assert server.fetchMail("alice")[0]["body"] == "secret"

    def test_fetch_through_chain(self, chain):
        server, _, decryptor = chain
        server.sendMail({"recipient": "alice", "body": "down"})
        assert decryptor.fetchMail("alice")[0]["body"] == "down"

    def test_list_accounts(self, chain):
        _, _, decryptor = chain
        assert decryptor.listAccounts() == ["alice"]

    def test_wire_format_is_ciphertext(self, chain):
        server, encryptor, _ = chain
        server.sendMail({"recipient": "alice", "body": "SECRET-BODY"})
        blob = encryptor.fetchMailEnc("alice")
        assert "SECRET-BODY" not in blob
        assert bytes.fromhex(blob)  # hex-encoded frame

    def test_mismatched_pair_keys_fail(self):
        server = MailServer()
        server.create_account("alice")
        encryptor = Encryptor(server, pair_secret="s1")
        decryptor = Decryptor(encryptor, pair_secret="s2")
        server.sendMail({"recipient": "alice", "body": "x"})
        with pytest.raises(CipherError):
            decryptor.fetchMail("alice")

    def test_key_derivation_deterministic(self):
        assert derive_pair_key("a") == derive_pair_key("a")
        assert derive_pair_key("a") != derive_pair_key("b")
