"""MailClient component tests (Table 3a behaviour)."""

from __future__ import annotations

import pytest

from repro.mail.client import (
    AddressI,
    MAIL_CLIENT_INTERFACES,
    MailClient,
    MessageI,
    NotesI,
)


@pytest.fixture()
def client():
    return MailClient(
        owner="alice",
        accounts={
            "bob": {"name": "bob", "phone": "619", "email": "bob@x"},
        },
    )


class TestMessageI:
    def test_send_queues_outbox(self, client):
        assert client.sendMessage({"recipient": "bob", "body": "hi"})
        assert len(client.outbox) == 1

    def test_receive_drains_inbox(self, client):
        client.inbox.append({"body": "m"})
        assert client.receiveMessages() == [{"body": "m"}]
        assert client.receiveMessages() == []


class TestAddressI:
    def test_get_phone_via_helper(self, client):
        assert client.getPhone("bob") == "619"

    def test_get_email(self, client):
        assert client.getEmail("bob") == "bob@x"

    def test_unknown_account(self, client):
        with pytest.raises(KeyError):
            client.getPhone("ghost")


class TestNotesI:
    def test_add_note(self, client):
        client.addNote("remember")
        assert client.notes == ["remember"]

    def test_add_meeting(self, client):
        assert client.addMeeting("standup") is True
        assert client.meetings == ["standup"]


class TestInterfaceDeclarations:
    def test_three_interfaces(self):
        assert [i.name for i in MAIL_CLIENT_INTERFACES] == [
            "MessageI",
            "AddressI",
            "NotesI",
        ]

    def test_methods_match_table_3a(self):
        assert MessageI.method_names() == ("sendMessage", "receiveMessages")
        assert AddressI.method_names() == ("getPhone", "getEmail")
        assert NotesI.method_names() == ("addNote", "addMeeting")

    def test_interfaces_cover_client_methods(self):
        for iface in MAIL_CLIENT_INTERFACES:
            for sig in iface.methods:
                assert callable(getattr(MailClient, sig.name))
