"""End-to-end integration: the paper's full story in executable form.

Each test drives the complete stack — dRBAC proofs, the Table 4 policy,
VIG generation, Switchboard channels over the simulated WAN, coherence —
from a client's point of view.
"""

from __future__ import annotations

import pytest

from repro.mail.client import MailClient
from repro.psf import EdgeRequirement, ServiceRequest
from repro.switchboard import AuthorizationSuite, RoleAuthorizer, ServiceAddress
from repro.views import IMAGE_BINDING_PREFIX, ViewRuntime
from repro.views.coherence import ImageService


@pytest.fixture()
def scenario(scenario_factory):
    return scenario_factory()


def _host_mail_client(scenario, node="ny-pc1"):
    """Run a shared MailClient on a NY node, exported for remote views."""
    original = MailClient(
        owner="shared",
        # The phone value is a deliberate non-hex marker: leak checks grep
        # captured frames for it, and hex-encoded ciphertext can never
        # contain it by chance (unlike a digit string).
        accounts={"alice": {"name": "alice", "phone": "PHONE-MARKER-X212", "email": "a@x"}},
    )
    runtime = scenario.psf.deployer.node_runtime(node)
    runtime.rpc.exporter.export("mailclient", original)
    runtime.switchboard.export("mailclient", original)
    runtime.switchboard.listen(
        "mailclient",
        AuthorizationSuite(
            identity=scenario.engine.identity("MailClientSvc"),
            authorizer=RoleAuthorizer(scenario.engine, "Comp.NY.Partner"),
        ),
    )
    image = ImageService(original)
    runtime.rpc.exporter.export("mailclient#image", image)
    runtime.switchboard.export("mailclient#image", image)
    return original, node


class TestPartnerViewAcrossDomains:
    """Charlie (Seattle partner) gets the Table 3b view of a NY client."""

    @pytest.fixture()
    def partner_view(self, scenario):
        original, host = _host_mail_client(scenario)
        policy = scenario.psf.registrar.policy("MailClient")
        decision = policy.resolve(
            "Charlie", scenario.engine,
            scenario.client_wallet("Charlie").credentials(),
        )
        assert decision.view_name == "ViewMailClient_Partner"
        spec = scenario.psf.registrar.view_spec(decision.view_name)
        view_cls = scenario.psf.vig.generate(spec, MailClient)

        se_runtime = scenario.psf.deployer.node_runtime("se-pc1")
        naming_runtime = ViewRuntime(
            rpc=se_runtime.rpc,
            switchboard=se_runtime.switchboard,
            suite=AuthorizationSuite(
                identity=scenario.engine.identity("Charlie"),
                credentials=scenario.client_wallet("Charlie").credentials(),
            ),
        )
        address = ServiceAddress(node=host, service="mailclient", target="mailclient")
        image_address = ServiceAddress(
            node=host, service="mailclient", target="mailclient#image"
        )
        naming_runtime.naming.bind("NotesI", address)
        naming_runtime.naming.bind("AddressI", address)
        naming_runtime.naming.bind(IMAGE_BINDING_PREFIX + "MailClient", image_address)
        view = view_cls(naming_runtime)
        return scenario, original, view

    def test_local_messaging_with_coherence(self, partner_view):
        scenario, original, view = partner_view
        view.sendMessage({"recipient": "alice", "body": "from-seattle"})
        assert original.outbox[-1]["body"] == "from-seattle"

    def test_notes_forwarded_over_rmi(self, partner_view):
        scenario, original, view = partner_view
        view.addNote("visit NY office")
        assert original.notes == ["visit NY office"]

    def test_address_book_over_switchboard(self, partner_view):
        scenario, original, view = partner_view
        assert view.getPhone("alice") == "PHONE-MARKER-X212"

    def test_meeting_reduced_to_request(self, partner_view):
        scenario, original, view = partner_view
        result = view.addMeeting("board")
        assert result == "meeting-requested:board"
        assert original.meetings == []  # not scheduled directly

    def test_switchboard_traffic_sealed_on_wan(self, partner_view):
        scenario, original, view = partner_view
        snoops = []
        scenario.psf.transport.observe_link(
            "ny-gw", "se-gw", lambda p, s, d: snoops.append(p)
        )
        view.getPhone("alice")
        assert snoops
        assert not any(b"getPhone" in p or b"PHONE-MARKER" in p for p in snoops)

    def test_rmi_traffic_visible_on_wan(self, partner_view):
        """The contrast: NotesI rides plain RMI, so the WAN sees it."""
        scenario, original, view = partner_view
        snoops = []
        scenario.psf.transport.observe_link(
            "ny-gw", "se-gw", lambda p, s, d: snoops.append(p)
        )
        view.addNote("VISIBLE-NOTE")
        assert any(b"VISIBLE-NOTE" in p for p in snoops)

    def test_single_sign_on_channel_reuse(self, partner_view):
        scenario, original, view = partner_view
        view.getPhone("alice")
        connection = view._swb_AddressI.connection
        view.getEmail("alice")
        assert view._swb_AddressI.connection is connection


class TestSingleSignOnRevocation:
    """Mid-session revocation: the Switchboard monitor fires and blocks."""

    def test_revoking_charlies_chain_kills_the_channel(self, scenario):
        original, host = _host_mail_client(scenario)
        se_runtime = scenario.psf.deployer.node_runtime("se-pc1")
        suite = AuthorizationSuite(
            identity=scenario.engine.identity("Charlie"),
            credentials=scenario.client_wallet("Charlie").credentials(),
        )
        pending = se_runtime.switchboard.connect(host, "mailclient", suite)
        connection = pending.wait()
        assert connection.call_sync("mailclient", "getEmail", ["alice"]) == "a@x"
        # Comp.SD's third-party delegation (12) is in Charlie's proof.
        scenario.engine.revoke(scenario.credentials[12])
        scenario.psf.scheduler.run()
        from repro.errors import ChannelClosedError

        with pytest.raises(ChannelClosedError):
            connection.call_sync("mailclient", "getEmail", ["alice"])


class TestFullServiceRequests:
    def test_alice_local_ny_flow(self, scenario):
        session = scenario.psf.request_service(
            ServiceRequest(client="Alice", client_node="ny-pc1", interface="MailI")
        )
        session.access.sendMail(
            {"sender": "Alice", "recipient": "Bob", "subject": "hi", "body": "b"}
        )
        assert scenario.server.fetchMail("Bob")

    def test_bob_privacy_flow_over_cache(self, scenario):
        session = scenario.psf.request_service(
            ServiceRequest(
                client="Bob",
                client_node="sd-pc1",
                interface="MailI",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            )
        )
        assert session.plan.deployed_names() == ["ViewMailServer"]
        session.access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "s", "body": "b"}
        )
        assert scenario.server.fetchMail("Alice")

    def test_charlie_privacy_flow_over_encryptors(self, scenario):
        session = scenario.psf.request_service(
            ServiceRequest(
                client="Charlie",
                client_node="se-pc1",
                interface="MailI",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            ),
            use_views=False,
        )
        assert sorted(session.plan.deployed_names()) == ["Decryptor", "Encryptor"]
        snoops = []
        scenario.psf.transport.observe_link(
            "ny-gw", "se-gw", lambda p, s, d: snoops.append(p)
        )
        session.access.sendMail(
            {"sender": "Charlie", "recipient": "Alice", "subject": "q",
             "body": "ULTRA-PRIVATE"}
        )
        assert scenario.server.fetchMail("Alice")[0]["body"] == "ULTRA-PRIVATE"
        assert snoops and not any(b"ULTRA-PRIVATE" in p for p in snoops)


class TestReissueAfterRevocation:
    """Revocation is not a dead end: re-certification restores service.

    Bob's NY membership chains (11) Bob -> Comp.SD.Member through (2) the
    SD -> NY cross-domain mapping.  Revoking (11) severs the chain; the
    SD guard issuing a *fresh* membership credential must restore it —
    with a new credential id, since revocation is forever — and the full
    service-request flow must come back with it.
    """

    def test_fresh_credential_restores_bobs_service(self, scenario):
        engine = scenario.engine
        assert engine.find_proof("Bob", "Comp.NY.Member") is not None

        revoked = scenario.credentials[11]
        engine.revoke(revoked)
        assert engine.find_proof("Bob", "Comp.NY.Member") is None

        fresh = scenario.sd_guard.certify_member("Bob")
        assert fresh.credential_id != revoked.credential_id
        proof = engine.find_proof("Bob", "Comp.NY.Member")
        assert proof is not None
        chain_ids = {d.credential_id for d in proof.chain}
        assert fresh.credential_id in chain_ids
        assert revoked.credential_id not in chain_ids

        session = scenario.psf.request_service(
            ServiceRequest(client="Bob", client_node="sd-pc1", interface="MailI")
        )
        session.access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "back", "body": "b"}
        )
        assert scenario.server.fetchMail("Alice")
