"""Mail data-model tests."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.mail.messages import Account, Message, make_directory

text = st.text(max_size=60)


class TestMessage:
    @given(sender=text, recipient=text, subject=text, body=text)
    def test_dict_roundtrip(self, sender, recipient, subject, body):
        message = Message(sender=sender, recipient=recipient, subject=subject, body=body)
        assert Message.from_dict(message.to_dict()) == message

    def test_wire_form_is_plain_dict(self):
        data = Message("a", "b", "s", "x").to_dict()
        assert data == {"sender": "a", "recipient": "b", "subject": "s", "body": "x"}


class TestAccount:
    @given(name=text, phone=text, email=text)
    def test_dict_roundtrip(self, name, phone, email):
        account = Account(name=name, phone=phone, email=email)
        assert Account.from_dict(account.to_dict()) == account

    def test_directory_keys_by_name(self):
        directory = make_directory(
            [Account("alice", phone="1"), Account("bob", email="b@x")]
        )
        assert set(directory) == {"alice", "bob"}
        assert directory["alice"]["phone"] == "1"
