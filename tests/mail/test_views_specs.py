"""Tests for the three mail-client view specs (Tables 3b & 4) generated
against the real MailClient, locally wired."""

from __future__ import annotations

import pytest

from repro.mail.client import MailClient
from repro.mail.views_specs import (
    VIEW_MAIL_CLIENT_ANONYMOUS,
    VIEW_MAIL_CLIENT_MEMBER,
    VIEW_MAIL_CLIENT_PARTNER,
    mail_client_policy,
)
from repro.views import InterfaceMode, InterfaceRegistry, Vig, ViewRuntime
from repro.mail.client import MAIL_CLIENT_INTERFACES


@pytest.fixture()
def vig():
    registry = InterfaceRegistry()
    for iface in MAIL_CLIENT_INTERFACES:
        registry.register(iface)
    return Vig(registry)


@pytest.fixture()
def original():
    return MailClient(
        owner="shared",
        accounts={"alice": {"name": "alice", "phone": "212", "email": "a@x"}},
    )


class TestPartnerSpecStructure:
    """Table 3(b) faithfully: modes per interface + accountCopy field."""

    def test_modes(self):
        modes = {r.name: r.mode for r in VIEW_MAIL_CLIENT_PARTNER.interfaces}
        assert modes == {
            "MessageI": InterfaceMode.LOCAL,
            "NotesI": InterfaceMode.RMI,
            "AddressI": InterfaceMode.SWITCHBOARD,
        }

    def test_account_copy_field(self):
        assert [f.name for f in VIEW_MAIL_CLIENT_PARTNER.added_fields] == [
            "accountCopy"
        ]

    def test_add_meeting_customized(self):
        assert [m.name for m in VIEW_MAIL_CLIENT_PARTNER.customized_methods] == [
            "addMeeting"
        ]


class TestMemberView:
    def test_full_functionality(self, vig, original):
        view_cls = vig.generate(VIEW_MAIL_CLIENT_MEMBER, MailClient)
        view = view_cls(ViewRuntime(local_objects={"MailClient": original}))
        assert view.sendMessage({"recipient": "bob"}) is True
        assert view.getPhone("alice") == "212"
        view.addNote("n")
        assert view.addMeeting("standup") is True
        assert original.meetings == ["standup"]

    def test_table5_structure_local_methods_wrapped(self, vig):
        view_cls = vig.generate(VIEW_MAIL_CLIENT_MEMBER, MailClient)
        assert getattr(view_cls.sendMessage, "__coherence_wrapped__", False)


class TestAnonymousView:
    def _view(self, vig, original):
        view_cls = vig.generate(VIEW_MAIL_CLIENT_ANONYMOUS, MailClient)
        # For a unit-level check, wire the switchboard interface locally by
        # customizing the runtime: the anonymous spec routes AddressI over
        # switchboard in deployment; locally we bind the original directly.
        runtime = ViewRuntime(local_objects={"MailClient": original})
        runtime.switchboard_stub = lambda binding: original  # type: ignore[assignment]
        return view_cls(runtime)

    def test_email_browsing_allowed(self, vig, original):
        view = self._view(vig, original)
        assert view.getEmail("alice") == "a@x"

    def test_phone_denied_per_method(self, vig, original):
        """Access control 'down to the level of individual methods'."""
        view = self._view(vig, original)
        with pytest.raises(PermissionError):
            view.getPhone("alice")

    def test_messaging_absent(self, vig, original):
        view = self._view(vig, original)
        assert not hasattr(view, "sendMessage")
        assert not hasattr(view, "addNote")


class TestPolicy:
    def test_rules_match_table_4(self):
        policy = mail_client_policy()
        rules = policy.rules()
        assert [str(r.role) if r.role else "others" for r in rules] == [
            "Comp.NY.Member",
            "Comp.NY.Partner",
            "others",
        ]
        assert [r.view_name for r in rules] == [
            "ViewMailClient_Member",
            "ViewMailClient_Partner",
            "ViewMailClient_Anonymous",
        ]
