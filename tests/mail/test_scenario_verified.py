"""Cross-check: every scenario proof passes the independent verifier."""

from __future__ import annotations

import pytest

from repro.drbac.model import EntityRef, Role
from repro.drbac.verify import ProofVerifier


@pytest.fixture()
def verifier(shared_scenario):
    engine = shared_scenario.engine
    identities = {
        name: engine.public_identity(name)
        for name in engine.key_store.known_names()
    }
    return ProofVerifier(identities, engine.revocations)


SCENARIO_GOALS = [
    ("Alice", "Comp.NY.Member"),
    ("Bob", "Comp.SD.Member"),
    ("Bob", "Comp.NY.Member"),
    ("Charlie", "Inc.SE.Member"),
    ("Charlie", "Comp.NY.Partner"),
    ("sd-pc1", "Mail.Node"),
    ("ny-pc1", "Mail.Node"),
    ("se-pc1", "Mail.Node"),
]


class TestScenarioProofsVerify:
    @pytest.mark.parametrize("subject,role", SCENARIO_GOALS)
    def test_membership_proofs(self, shared_scenario, verifier, subject, role):
        proof = shared_scenario.engine.find_proof(subject, role)
        assert proof is not None
        result = verifier.verify(proof)
        assert result.ok, result.errors

    @pytest.mark.parametrize(
        "component,goal",
        [
            ("Mail.MailClient", "Comp.NY.Executable"),
            ("Mail.Encryptor", "Comp.SD.Executable"),
            ("Mail.Decryptor", "Inc.SE.Executable"),
        ],
    )
    def test_component_proofs(self, shared_scenario, verifier, component, goal):
        proof = shared_scenario.engine.find_proof(
            Role.parse(component), Role.parse(goal)
        )
        assert proof is not None
        result = verifier.verify(proof)
        assert result.ok, result.errors

    def test_both_directions_verify(self, shared_scenario, verifier):
        for direction in ("regression", "progression"):
            proof = shared_scenario.engine.find_proof(
                "Charlie", "Comp.NY.Partner", direction=direction
            )
            assert proof is not None
            assert verifier.verify(proof).ok
