"""MailServer and cache-view spec tests."""

from __future__ import annotations

import pytest

from repro.mail.server import VIEW_MAIL_SERVER_SPEC, MailServer
from repro.views import InterfaceRegistry, Vig, ViewRuntime
from repro.mail.server import MailI


@pytest.fixture()
def server():
    server = MailServer()
    server.create_account("alice", phone="1", email="a@x")
    server.create_account("bob", phone="2", email="b@x")
    return server


class TestMailServer:
    def test_send_and_fetch(self, server):
        assert server.sendMail({"recipient": "alice", "body": "hi"})
        assert server.fetchMail("alice") == [{"recipient": "alice", "body": "hi"}]

    def test_fetch_does_not_drain(self, server):
        server.sendMail({"recipient": "alice", "body": "hi"})
        server.fetchMail("alice")
        assert server.fetchMail("alice")

    def test_reject_without_recipient(self, server):
        assert not server.sendMail({"body": "hi"})

    def test_list_accounts_sorted(self, server):
        assert server.listAccounts() == ["alice", "bob"]

    def test_delivered_counter(self, server):
        server.sendMail({"recipient": "alice", "body": "x"})
        assert server.delivered == 1


class TestCacheView:
    def test_cache_reads_and_writes_through(self, server):
        registry = InterfaceRegistry()
        registry.register(MailI)
        vig = Vig(registry)
        view_cls = vig.generate(VIEW_MAIL_SERVER_SPEC, MailServer)
        cache = view_cls(ViewRuntime(local_objects={"MailServer": server}))
        # Read through the cache.
        assert cache.listAccounts() == ["alice", "bob"]
        # Write through the cache reaches the origin.
        cache.sendMail({"recipient": "bob", "body": "cached"})
        assert server.fetchMail("bob") == [{"recipient": "bob", "body": "cached"}]
        # External writes to the origin become visible on next call.
        server.sendMail({"recipient": "alice", "body": "direct"})
        assert cache.fetchMail("alice") == [{"recipient": "alice", "body": "direct"}]

    def test_spec_replicates_server_state(self):
        assert set(VIEW_MAIL_SERVER_SPEC.replicated_fields) == {
            "mailboxes",
            "directory",
            "delivered",
        }
