"""Declarative-document equivalence: the XML app spec registers the same
application as the programmatic scenario builder."""

from __future__ import annotations

import pytest

from repro.mail import build_network, build_scenario, issue_table2_credentials
from repro.mail.app_xml import MAIL_APP_XML, register_components_declaratively
from repro.mail.scenario import MailScenario, NY_NODES
from repro.mail.server import MailServer
from repro.psf import PSF, EdgeRequirement, ServiceRequest
from repro.psf.guard import Guard


@pytest.fixture()
def declarative_scenario(key_store):
    """The three-site world with components loaded from MAIL_APP_XML."""
    psf = PSF(key_store=key_store)
    build_network(psf)
    ny = psf.add_guard("NY", "Comp.NY")
    sd = psf.add_guard("SD", "Comp.SD")
    se = psf.add_guard("SE", "Inc.SE")
    mail = Guard(psf.engine, "Mail")
    psf.set_app_guard(mail)
    scenario = MailScenario(
        psf=psf, ny_guard=ny, sd_guard=sd, se_guard=se, mail_guard=mail
    )
    issue_table2_credentials(scenario)
    register_components_declaratively(psf)
    server = MailServer()
    server.create_account("Alice")
    psf.host_existing("MailServer", "ny-server", server, "MailServer")
    scenario.server = server
    return scenario


class TestEquivalence:
    def test_same_component_inventory(self, declarative_scenario, shared_scenario):
        declared = {c.name for c in declarative_scenario.psf.registrar.components()}
        programmatic = {c.name for c in shared_scenario.psf.registrar.components()}
        assert declared == programmatic

    def test_same_component_shapes(self, declarative_scenario, shared_scenario):
        for component in shared_scenario.psf.registrar.components():
            declared = declarative_scenario.psf.registrar.component(component.name)
            assert declared.cpu_demand == component.cpu_demand
            assert declared.deployable == component.deployable
            assert str(declared.component_role) == str(component.component_role)
            assert [p.interface for p in declared.implements] == [
                p.interface for p in component.implements
            ]
            assert [p.interface for p in declared.requires] == [
                p.interface for p in component.requires
            ]

    def test_same_policy(self, declarative_scenario, shared_scenario):
        declared = declarative_scenario.psf.registrar.policy("MailClient")
        programmatic = shared_scenario.psf.registrar.policy("MailClient")
        assert [r.view_name for r in declared.rules()] == [
            r.view_name for r in programmatic.rules()
        ]

    def test_same_view_specs(self, declarative_scenario, shared_scenario):
        for name in (
            "ViewMailServer",
            "ViewMailClient_Member",
            "ViewMailClient_Partner",
            "ViewMailClient_Anonymous",
        ):
            declared = declarative_scenario.psf.registrar.view_spec(name)
            programmatic = shared_scenario.psf.registrar.view_spec(name)
            assert declared.interfaces == programmatic.interfaces
            assert declared.replicated_fields == programmatic.replicated_fields


class TestDeclarativeOperation:
    def test_planner_adapts_identically(self, declarative_scenario):
        plan = declarative_scenario.psf.planner().plan(
            ServiceRequest(
                client="Bob", client_node="sd-pc1", interface="MailI",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            )
        )
        assert plan.deployed_names() == ["ViewMailServer"]

    def test_end_to_end_deployment_works(self, declarative_scenario):
        session = declarative_scenario.psf.request_service(
            ServiceRequest(
                client="Bob", client_node="sd-pc1", interface="MailI",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            )
        )
        session.access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "d", "body": "b"}
        )
        assert declarative_scenario.server.fetchMail("Alice")

    def test_document_mentions_table_3b_view(self):
        assert 'name="ViewMailClient_Partner"' in MAIL_APP_XML
        assert 'type="switchboard"' in MAIL_APP_XML
