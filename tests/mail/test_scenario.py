"""Table 2 behavioural battery: every authorization outcome §3.3 describes."""

from __future__ import annotations

import pytest

from repro.drbac.model import AttrScalar, Role


class TestCredentialSet:
    def test_seventeen_numbered_credentials(self, shared_scenario):
        assert sorted(shared_scenario.credentials) == list(range(1, 18))

    def test_paper_rendering_of_credential_2(self, shared_scenario):
        assert (
            str(shared_scenario.credentials[2])
            == "[ Comp.SD.Member -> Comp.NY.Member ] Comp.NY"
        )

    def test_paper_rendering_of_credential_3(self, shared_scenario):
        assert (
            str(shared_scenario.credentials[3])
            == "[ Comp.SD -> Comp.NY.Partner' ] Comp.NY"
        )

    def test_paper_rendering_of_credential_5(self, shared_scenario):
        assert str(shared_scenario.credentials[5]) == (
            "[ Dell.SuSe -> Mail.Node with Secure={false,true} Trust=(0,7) ] Mail"
        )

    def test_delegation_types(self, shared_scenario):
        from repro.drbac import DelegationType

        creds = shared_scenario.credentials
        assert creds[1].delegation_type is DelegationType.SELF_CERTIFYING
        assert creds[3].delegation_type is DelegationType.ASSIGNMENT
        assert creds[12].delegation_type is DelegationType.THIRD_PARTY


class TestClientAuthorization:
    """§3.3 'Client authorization'."""

    def test_alice_is_ny_member(self, shared_scenario):
        assert shared_scenario.engine.find_proof("Alice", "Comp.NY.Member")

    def test_bob_is_ny_member_via_2_and_11(self, shared_scenario):
        proof = shared_scenario.engine.find_proof("Bob", "Comp.NY.Member")
        assert proof is not None
        used = [d.credential_id for d in proof.chain]
        assert used == [
            shared_scenario.credentials[11].credential_id,
            shared_scenario.credentials[2].credential_id,
        ]

    def test_charlie_is_ny_partner_via_3_12_15(self, shared_scenario):
        proof = shared_scenario.engine.find_proof("Charlie", "Comp.NY.Partner")
        assert proof is not None
        chain_ids = [d.credential_id for d in proof.chain]
        assert chain_ids == [
            shared_scenario.credentials[15].credential_id,
            shared_scenario.credentials[12].credential_id,
        ]
        support_ids = [d.credential_id for d in proof.support]
        assert support_ids == [shared_scenario.credentials[3].credential_id]

    def test_charlie_is_not_ny_member(self, shared_scenario):
        assert shared_scenario.engine.find_proof("Charlie", "Comp.NY.Member") is None

    def test_stranger_has_nothing(self, shared_scenario):
        engine = shared_scenario.engine
        assert engine.find_proof("Stranger", "Comp.NY.Member") is None
        assert engine.find_proof("Stranger", "Comp.NY.Partner") is None


class TestNodeAuthorization:
    """§3.3 'Node authorization': hardware facts map onto Mail.Node."""

    def test_sd_machines_map_via_13_and_5(self, shared_scenario):
        proof = shared_scenario.engine.is_a(
            "sd-pc1", "Mail.Node with Secure={true} Trust=(0,5)"
        )
        assert proof is not None
        ids = {d.credential_id for d in proof.chain}
        assert shared_scenario.credentials[13].credential_id in ids
        assert shared_scenario.credentials[5].credential_id in ids

    def test_ny_machines_map_via_7_and_4(self, shared_scenario):
        proof = shared_scenario.engine.is_a(
            "ny-pc1", "Mail.Node with Secure={true} Trust=(0,10)"
        )
        assert proof is not None

    def test_se_machines_are_insecure_low_trust(self, shared_scenario):
        engine = shared_scenario.engine
        assert engine.is_a("se-pc1", "Mail.Node") is not None
        assert engine.is_a("se-pc1", "Mail.Node with Secure={true}") is None
        assert engine.is_a("se-pc1", "Mail.Node with Trust=(0,5)") is None

    def test_gateways_are_not_mail_nodes(self, shared_scenario):
        assert shared_scenario.engine.is_a("ny-gw", "Mail.Node") is None


class TestComponentAuthorization:
    """§3.3 'Component authorization': executables and CPU budgets."""

    @pytest.mark.parametrize(
        "role,domain_guard,budget",
        [
            ("Mail.MailClient", "ny_guard", 100),
            ("Mail.Encryptor", "sd_guard", 80),
            ("Mail.Decryptor", "se_guard", 40),
            ("Mail.Encryptor", "ny_guard", 100),
        ],
    )
    def test_cpu_budgets(self, shared_scenario, role, domain_guard, budget):
        guard = getattr(shared_scenario, domain_guard)
        assert guard.component_cpu_budget(Role.parse(role)) == budget

    def test_cpu_attenuation_uses_min(self, shared_scenario):
        # [Mail.Encryptor -> Comp.NY.Executable CPU=100] then
        # [Comp.NY.Executable -> Comp.SD.Executable CPU=80]: min is 80.
        proof = shared_scenario.engine.find_proof(
            Role("Mail", "Encryptor"), Role("Comp.SD", "Executable")
        )
        assert proof.attributes["CPU"] == AttrScalar(80)

    def test_unknown_component_unauthorized(self, shared_scenario):
        assert (
            shared_scenario.sd_guard.component_cpu_budget(Role("Mail", "Ghost"))
            is None
        )

    def test_deployed_instance_presents_chain(self, scenario_factory):
        # "Whenever a component is deployed on a node, it presents a chain
        # of credentials."  Simulate the deployment infrastructure issuing
        # an instance credential and the SD node validating the chain.
        scenario = scenario_factory()
        engine = scenario.engine
        engine.delegate("Mail", "enc-instance-1", "Mail.Encryptor")
        proof = engine.find_proof("enc-instance-1", "Comp.SD.Executable")
        assert proof is not None
        assert len(proof.chain) == 3  # instance -> Mail.Encryptor -> NY -> SD


class TestRevocationInScenario:
    def test_revoking_12_cuts_charlie_off(self, scenario_factory):
        scenario = scenario_factory()
        engine = scenario.engine
        assert engine.find_proof("Charlie", "Comp.NY.Partner") is not None
        engine.revoke(scenario.credentials[12])
        assert engine.find_proof("Charlie", "Comp.NY.Partner") is None

    def test_revoking_3_cuts_all_partners_off(self, scenario_factory):
        # Killing the assignment right invalidates every third-party
        # delegation Comp.SD issued for Comp.NY.Partner.
        scenario = scenario_factory()
        engine = scenario.engine
        engine.revoke(scenario.credentials[3])
        assert engine.find_proof("Charlie", "Comp.NY.Partner") is None

    def test_revoking_2_cuts_bob_but_not_alice(self, scenario_factory):
        scenario = scenario_factory()
        engine = scenario.engine
        engine.revoke(scenario.credentials[2])
        assert engine.find_proof("Bob", "Comp.NY.Member") is None
        assert engine.find_proof("Alice", "Comp.NY.Member") is not None
