"""TokenBucket properties: conservation, non-negativity, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError
from repro.flow import TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _bucket(rate: float = 10.0, burst: float = 5.0) -> tuple[TokenBucket, FakeClock]:
    clock = FakeClock()
    return TokenBucket(rate, burst, clock), clock


class TestValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(FaultError, match="rate"):
            TokenBucket(0.0, 5.0, FakeClock())

    def test_rejects_nonpositive_burst(self):
        with pytest.raises(FaultError, match="burst"):
            TokenBucket(10.0, 0.0, FakeClock())


class TestBasics:
    def test_starts_full(self):
        bucket, clock = _bucket(burst=3.0)
        assert bucket.available(clock.now()) == 3.0

    def test_burst_admits_then_refuses(self):
        bucket, clock = _bucket(rate=1.0, burst=2.0)
        assert bucket.try_acquire(clock.now())
        assert bucket.try_acquire(clock.now())
        assert not bucket.try_acquire(clock.now())

    def test_refill_is_lazy_and_capped_at_burst(self):
        bucket, clock = _bucket(rate=10.0, burst=5.0)
        for _ in range(5):
            assert bucket.try_acquire(clock.now())
        clock.t = 1000.0
        assert bucket.available(clock.now()) == 5.0

    def test_time_until_is_honest(self):
        """Retrying exactly at ``now + time_until`` succeeds; retrying
        any earlier is refused again — the retry-after contract."""
        bucket, clock = _bucket(rate=4.0, burst=1.0)
        assert bucket.try_acquire(clock.now())
        wait = bucket.time_until(clock.now())
        assert wait > 0
        clock.t += wait * 0.5
        assert not bucket.try_acquire(clock.now())
        clock.t += wait * 0.5
        assert bucket.try_acquire(clock.now())

    def test_time_until_zero_when_available(self):
        bucket, clock = _bucket()
        assert bucket.time_until(clock.now()) == 0.0


@st.composite
def schedules(draw):
    """A monotone virtual-time schedule of acquire attempts."""
    steps = draw(
        st.lists(
            st.tuples(
                st.floats(0.0, 2.0, allow_nan=False),  # dt before attempt
                st.floats(0.1, 3.0, allow_nan=False),  # tokens requested
            ),
            min_size=1,
            max_size=40,
        )
    )
    rate = draw(st.floats(0.5, 50.0, allow_nan=False))
    burst = draw(st.floats(0.5, 20.0, allow_nan=False))
    return rate, burst, steps


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(schedules())
    def test_conservation_and_nonnegativity(self, schedule):
        """Granted tokens never exceed burst + rate * elapsed, and the
        bucket level never goes negative."""
        rate, burst, steps = schedule
        clock = FakeClock()
        bucket = TokenBucket(rate, burst, clock)
        granted = 0.0
        for dt, tokens in steps:
            clock.t += dt
            if bucket.try_acquire(clock.now(), tokens):
                granted += tokens
            assert bucket.available(clock.now()) >= 0.0
            assert granted <= burst + rate * clock.t + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(schedules())
    def test_identical_schedules_are_bit_identical(self, schedule):
        """Two buckets driven through the same virtual-time schedule make
        identical decisions and hold identical token counts — the refill
        is a pure function of elapsed time, not call count."""
        rate, burst, steps = schedule
        a_clock, b_clock = FakeClock(), FakeClock()
        a = TokenBucket(rate, burst, a_clock)
        b = TokenBucket(rate, burst, b_clock)
        for dt, tokens in steps:
            a_clock.t += dt
            b_clock.t += dt
            assert a.try_acquire(a_clock.now(), tokens) == b.try_acquire(
                b_clock.now(), tokens
            )
            assert a.available(a_clock.now()) == b.available(b_clock.now())
            assert a.time_until(a_clock.now()) == b.time_until(b_clock.now())

    @settings(max_examples=100, deadline=None)
    @given(schedules())
    def test_retry_after_hint_never_lies_early(self, schedule):
        """time_until is a lower bound: an attempt strictly before it
        (with no intervening refill-consuming traffic) must fail."""
        rate, burst, steps = schedule
        clock = FakeClock()
        bucket = TokenBucket(rate, burst, clock)
        for dt, tokens in steps:
            clock.t += dt
            wait = bucket.time_until(clock.now(), tokens)
            if wait > 0 and tokens <= burst:
                assert not bucket.try_acquire(clock.now(), tokens)
