"""WeightedFairQueue properties: work conservation, weighted shares,
deterministic tie-breaking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError
from repro.flow import WeightedFairQueue


class TestValidation:
    def test_rejects_empty_weights(self):
        with pytest.raises(FaultError, match="at least one"):
            WeightedFairQueue(())

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(FaultError, match="positive"):
            WeightedFairQueue((1.0, 0.0))

    def test_rejects_out_of_range_class(self):
        q = WeightedFairQueue((1.0, 2.0))
        with pytest.raises(FaultError, match="out of range"):
            q.push(2, "x")

    def test_rejects_nonpositive_size(self):
        q = WeightedFairQueue((1.0,))
        with pytest.raises(FaultError, match="size"):
            q.push(0, "x", size=0.0)

    def test_pop_empty_raises(self):
        with pytest.raises(FaultError, match="empty"):
            WeightedFairQueue((1.0,)).pop()


class TestBasics:
    def test_fifo_within_one_class(self):
        q = WeightedFairQueue((1.0,))
        for n in range(5):
            q.push(0, n)
        assert [item for _cls, item in q.drain()] == [0, 1, 2, 3, 4]

    def test_higher_weight_class_served_more_often(self):
        q = WeightedFairQueue((4.0, 1.0))
        for n in range(20):
            q.push(0, f"hi{n}")
            q.push(1, f"lo{n}")
        first_ten = [cls for cls, _item in (q.pop() for _ in range(10))]
        assert first_ten.count(0) == 8
        assert first_ten.count(1) == 2

    def test_idle_class_banks_no_credit(self):
        """A class that was idle while others were served cannot burst
        ahead of them afterwards: its start tag lifts to the virtual
        clock, so it only gets its share going forward."""
        q = WeightedFairQueue((1.0, 1.0))
        for n in range(10):
            q.push(0, f"a{n}")
        for _ in range(10):
            q.pop()
        # Class 1 arrives late; class 0 keeps a backlog.
        for n in range(4):
            q.push(0, f"b{n}")
            q.push(1, f"c{n}")
        order = [cls for cls, _item in q.drain()]
        # Equal weights from here on: strict alternation, no catch-up burst.
        assert order.count(1) == 4
        assert order[:2].count(1) <= 1

    def test_depth_tracking(self):
        q = WeightedFairQueue((1.0, 1.0))
        q.push(0, "a")
        q.push(1, "b")
        q.push(1, "c")
        assert len(q) == 3
        assert q.depth(0) == 1
        assert q.depth(1) == 2
        q.pop()
        assert len(q) == 2


@st.composite
def workloads(draw):
    n_classes = draw(st.integers(1, 4))
    weights = tuple(
        draw(
            st.lists(
                st.floats(0.5, 8.0, allow_nan=False),
                min_size=n_classes,
                max_size=n_classes,
            )
        )
    )
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_classes - 1),
                st.floats(0.5, 2.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return weights, ops


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(workloads())
    def test_work_conserving(self, workload):
        """Everything pushed comes back out, exactly once, and pop never
        fails while the queue is non-empty."""
        weights, ops = workload
        q = WeightedFairQueue(weights)
        pushed = []
        for index, (cls, size) in enumerate(ops):
            q.push(cls, index, size=size)
            pushed.append(index)
        popped = []
        while len(q):
            _cls, item = q.pop()
            popped.append(item)
        assert sorted(popped) == pushed

    @settings(max_examples=100, deadline=None)
    @given(workloads())
    def test_deterministic_service_order(self, workload):
        """Two queues fed the identical sequence drain identically —
        ties break on arrival order, never hash order."""
        weights, ops = workload
        a, b = WeightedFairQueue(weights), WeightedFairQueue(weights)
        for index, (cls, size) in enumerate(ops):
            a.push(cls, index, size=size)
            b.push(cls, index, size=size)
        assert a.drain() == b.drain()

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 4), st.data())
    def test_backlogged_classes_share_by_weight(self, n_classes, data):
        """With every class continuously backlogged, service counts over
        a long window match the weight proportions within one item."""
        weights = tuple(
            data.draw(
                st.lists(
                    st.sampled_from([1.0, 2.0, 4.0, 8.0]),
                    min_size=n_classes,
                    max_size=n_classes,
                )
            )
        )
        q = WeightedFairQueue(weights)
        per_class = 64
        for n in range(per_class):
            for cls in range(n_classes):
                q.push(cls, (cls, n))
        # After exactly m * sum(weights) pops with every class still
        # backlogged, virtual time has advanced by exactly m, so class c
        # (finish tags k / w_c) has been served exactly m * w_c times.
        m = 2
        rounds = m * int(sum(weights))
        served = [0] * n_classes
        for _ in range(rounds):
            cls, _item = q.pop()
            served[cls] += 1
        assert served == [m * int(w) for w in weights], (
            f"served {served} for weights {weights}"
        )
