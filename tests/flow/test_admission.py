"""End-to-end flow control over the RPC wire: sheds with retry-after,
exempt monitor class, retrying clients that honor the hint, and the
client-side circuit breaker."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import RpcShedError
from repro.faults.retry import RetryPolicy
from repro.flow import PRIO_MONITOR, AimdLimiter, FlowConfig
from repro.hermetic import hermetic_counters
from repro.net.events import EventScheduler
from repro.net.simnet import Network
from repro.net.transport import Transport
from repro.obs import names as metric_names
from repro.switchboard.rpc import PlainRpcEndpoint


class Service:
    """Method names chosen so the default classifier spreads them across
    all four priority classes."""

    def revalidate(self, token):
        return f"ok-{token}"

    def check_access(self, subject):
        return True

    def get_entry(self, key):
        return f"v-{key}"

    def put_blob(self, key, size):
        return size


def _world(flow: FlowConfig | None, *, client_flow: FlowConfig | None = None):
    scheduler = EventScheduler()
    obs.set_tracer_clock(scheduler)
    network = Network()
    network.add_node("server", domain="T")
    network.add_node("client", domain="T")
    network.add_link("client", "server", latency_s=0.001, bandwidth_bps=8e6,
                     secure=False)
    transport = Transport(network, scheduler, loss_seed=1)
    server = PlainRpcEndpoint(transport, "server", flow=flow)
    service = Service()
    for name in ("RevocationMonitor", "Authorizer", "Registry", "BlobStore"):
        server.exporter.export(name, service)
    client = PlainRpcEndpoint(transport, "client", flow=client_flow)
    return scheduler, transport, server, client


def _tight_flow(**overrides) -> FlowConfig:
    base = dict(
        enabled=True,
        service_time_s=0.0,
        bucket_rate=10.0,
        bucket_burst=2.0,
        max_backlog=4,
        retry_after_s=0.05,
    )
    base.update(overrides)
    return FlowConfig(**base)


class TestShedding:
    def test_burst_past_the_bucket_is_shed_with_retry_after(self):
        with hermetic_counters(), obs.scoped(enabled=True) as registry:
            scheduler, _t, _server, client = _world(_tight_flow())
            calls = [
                client.call("server", "Registry", "get_entry", [f"k{n}"])
                for n in range(5)
            ]
            scheduler.run()
            outcomes = []
            for pending in calls:
                try:
                    outcomes.append(pending.value)
                except RpcShedError as exc:
                    outcomes.append(exc)
            served = [o for o in outcomes if isinstance(o, str)]
            sheds = [o for o in outcomes if isinstance(o, RpcShedError)]
            assert len(served) == 2  # the burst allowance
            assert len(sheds) == 3
            for shed in sheds:
                assert shed.retry_after > 0
            assert registry.counter_value(metric_names.FLOW_SHED) == 3
            assert registry.counter_value(metric_names.FLOW_BUCKET_DENIED) == 3

    def test_backlog_cap_sheds_when_slots_are_saturated(self):
        flow = _tight_flow(
            service_time_s=0.05, workers=1, max_backlog=2,
            bucket_enabled=False,
        )
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, server, client = _world(flow)
            calls = [
                client.call("server", "BlobStore", "put_blob", [f"k{n}", 8])
                for n in range(8)
            ]
            scheduler.run()
            sheds = sum(
                1 for p in calls if isinstance(p._exception, RpcShedError)
            )
            assert sheds > 0
            controller = server.controller
            assert controller is not None
            assert controller.sheds == sheds
            assert all(s.retry_after == flow.retry_after_s
                       for s in [p._exception for p in calls
                                 if isinstance(p._exception, RpcShedError)])

    def test_monitor_class_is_never_shed(self):
        """Revocation/monitor traffic bypasses the bucket and the backlog
        cap: shedding the messages that revoke bad credentials would
        invert the security posture."""
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, server, client = _world(
                _tight_flow(service_time_s=0.01, workers=1, max_backlog=1)
            )
            calls = [
                client.call("server", "RevocationMonitor", "revalidate", [f"t{n}"])
                for n in range(20)
            ]
            scheduler.run()
            assert all(p.value == f"ok-t{n}" for n, p in enumerate(calls))
            controller = server.controller
            assert controller is not None
            assert controller.shed_by_class[PRIO_MONITOR] == 0

    def test_flow_disabled_config_still_models_service_time(self):
        """enabled=False keeps the service model but never sheds — the
        bench's unprotected arm."""
        flow = _tight_flow(enabled=False, service_time_s=0.01, workers=1)
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, server, client = _world(flow)
            calls = [
                client.call("server", "Registry", "get_entry", [f"k{n}"])
                for n in range(10)
            ]
            scheduler.run()
            assert all(p.value == f"v-k{n}" for n, p in enumerate(calls))
            assert server.controller is not None
            assert server.controller.sheds == 0
            # Ten requests through one 10ms slot: the makespan shows the
            # queue, not instantaneous dispatch.
            assert scheduler.now() >= 0.1

    def test_no_flow_config_means_no_controller(self):
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, server, client = _world(None)
            pending = client.call("server", "Registry", "get_entry", ["k"])
            scheduler.run()
            assert pending.value == "v-k"
            assert server.controller is None
            assert server.flow is None


class TestRetryAfterHonored:
    def test_call_with_retry_waits_out_the_hint_and_succeeds(self):
        with hermetic_counters(), obs.scoped(enabled=True) as registry:
            scheduler, _t, _server, client = _world(
                _tight_flow(bucket_rate=10.0, bucket_burst=1.0)
            )
            # Drain the burst allowance so the retried call is shed first.
            first = client.call("server", "Registry", "get_entry", ["warm"])
            retried = client.call_with_retry(
                "server", "Registry", "get_entry", ["wanted"],
                policy=RetryPolicy.fixed(0.02, 8),
            )
            scheduler.run()
            assert first.value == "v-warm"
            assert retried.value == "v-wanted"
            assert registry.counter_value(
                metric_names.FLOW_RETRY_AFTER_HONORED
            ) >= 1

    def test_bucket_shed_hint_is_honest_so_the_parked_retry_succeeds(self):
        """A bucket shed's retry-after is the exact refill time: the
        retried call parks that long, retransmits once, and lands."""
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, _server, client = _world(
                _tight_flow(bucket_rate=0.5, bucket_burst=1.0)
            )
            client.call("server", "Registry", "get_entry", ["warm"])
            retried = client.call_with_retry(
                "server", "Registry", "get_entry", ["parked"],
                policy=RetryPolicy.fixed(0.01, 3),
            )
            scheduler.run()
            assert retried.value == "v-parked"
            # The park dominated the makespan: ~2s until the refill, far
            # beyond the 0.01s retry cadence.
            assert scheduler.now() >= 2.0

    def test_exhausted_retries_after_sheds_raise_typed_error(self):
        """Against a server that stays saturated, every retry is shed and
        the exhausted call surfaces a typed RpcShedError, not a generic
        no-response failure."""
        flow = _tight_flow(
            bucket_enabled=False, service_time_s=10.0, workers=1,
            max_backlog=1,
        )
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, _server, client = _world(flow)
            # One call serving for 10s, one parked in the only backlog slot.
            client.call("server", "BlobStore", "put_blob", ["a", 1])
            client.call("server", "BlobStore", "put_blob", ["b", 1])
            retried = client.call_with_retry(
                "server", "BlobStore", "put_blob", ["c", 1],
                policy=RetryPolicy.fixed(0.01, 2),
            )
            retried.wait_done()
            with pytest.raises(RpcShedError) as excinfo:
                retried.value
            assert excinfo.value.retry_after > 0


class TestCircuitBreaker:
    def test_transport_failures_trip_the_breaker(self):
        client_cfg = FlowConfig(
            enabled=True, breaker_failures=3, breaker_open_s=0.5
        )
        with hermetic_counters(), obs.scoped(enabled=True) as registry:
            scheduler = EventScheduler()
            obs.set_tracer_clock(scheduler)
            network = Network()
            network.add_node("client", domain="T")
            # No route to "server" at all: every send raises NetworkError.
            transport = Transport(network, scheduler, loss_seed=1)
            client = PlainRpcEndpoint(transport, "client", flow=client_cfg)
            for _ in range(3):
                pending = client.call("server", "Registry", "get_entry", ["k"])
                assert pending.done
            before = transport.stats.messages_sent
            refused = client.call("server", "Registry", "get_entry", ["k"])
            assert isinstance(refused._exception, RpcShedError)
            assert refused._exception.retry_after > 0
            # Refused locally: nothing new touched the wire.
            assert transport.stats.messages_sent == before
            assert registry.counter_value(
                metric_names.FLOW_BREAKER_SHORT_CIRCUITS
            ) == 1
            assert registry.counter_value(metric_names.FLOW_BREAKER_OPENS) == 1

    def test_half_open_probe_recovers_after_the_link_heals(self):
        client_cfg = FlowConfig(
            enabled=True, breaker_failures=2, breaker_open_s=0.1
        )
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler = EventScheduler()
            obs.set_tracer_clock(scheduler)
            network = Network()
            network.add_node("client", domain="T")
            network.add_node("server", domain="T")
            transport = Transport(network, scheduler, loss_seed=1)
            client = PlainRpcEndpoint(transport, "client", flow=client_cfg)
            for _ in range(2):
                client.call("server", "Registry", "get_entry", ["k"])
            assert isinstance(
                client.call("server", "Registry", "get_entry", ["k"])._exception,
                RpcShedError,
            )
            # Heal: add the missing link, let the open interval expire.
            network.add_link("client", "server", latency_s=0.001,
                             bandwidth_bps=8e6, secure=False)
            server = PlainRpcEndpoint(transport, "server")
            server.exporter.export("Registry", Service())
            scheduler.schedule(0.2, lambda: None)
            scheduler.run()
            probe = client.call("server", "Registry", "get_entry", ["back"])
            scheduler.run()
            assert probe.value == "v-back"
            # Closed again: the next call flows normally.
            follow_up = client.call("server", "Registry", "get_entry", ["again"])
            scheduler.run()
            assert follow_up.value == "v-again"

    def test_plain_calls_without_flow_never_consult_a_breaker(self):
        with hermetic_counters(), obs.scoped(enabled=True) as registry:
            scheduler = EventScheduler()
            obs.set_tracer_clock(scheduler)
            network = Network()
            network.add_node("client", domain="T")
            transport = Transport(network, scheduler, loss_seed=1)
            client = PlainRpcEndpoint(transport, "client")
            for _ in range(10):
                client.call("server", "Registry", "get_entry", ["k"])
            assert registry.counter_value(
                metric_names.FLOW_BREAKER_SHORT_CIRCUITS
            ) == 0
            assert not client._breakers


class TestPipelineBackpressure:
    def test_limiter_clamps_the_issue_window(self):
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, _server, client = _world(None)
            limiter = AimdLimiter(
                scheduler, initial=4, min_limit=1, max_limit=8,
                target_latency_s=1.0,
            )
            pipeline = client.pipeline(
                "server", "Registry", depth=8, limiter=limiter
            )
            assert pipeline.window == 4
            limiter.observe(0.01, ok=False)
            assert limiter.limit == 2
            assert pipeline.window == 2

    def test_served_latencies_feed_the_limiter(self):
        flow = _tight_flow(
            bucket_enabled=False, service_time_s=0.2, workers=1,
            max_backlog=64,
        )
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler, _t, _server, client = _world(flow)
            limiter = AimdLimiter(
                scheduler, initial=8, min_limit=1, max_limit=8,
                # Queue wait behind the 0.2s slot blows this budget.
                target_latency_s=0.05,
            )
            pipeline = client.pipeline(
                "server", "Registry", depth=8, limiter=limiter
            )
            for n in range(12):
                pipeline.call("get_entry", [f"k{n}"])
            pipeline.drain()
            assert limiter.backoffs >= 1
            assert limiter.limit < 8
