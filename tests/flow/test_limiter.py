"""AimdLimiter: additive increase, multiplicative decrease, cooldown."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.flow import AimdLimiter


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _limiter(**kwargs) -> tuple[AimdLimiter, FakeClock]:
    clock = FakeClock()
    defaults = dict(initial=8, min_limit=1, max_limit=64, target_latency_s=0.1)
    defaults.update(kwargs)
    return AimdLimiter(clock, **defaults), clock


class TestValidation:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(FaultError, match="min_limit"):
            AimdLimiter(FakeClock(), initial=2, min_limit=4, max_limit=8)

    def test_rejects_bad_backoff(self):
        with pytest.raises(FaultError, match="backoff"):
            AimdLimiter(FakeClock(), backoff=1.0)


class TestDecrease:
    def test_failure_halves_the_window(self):
        limiter, _clock = _limiter(initial=8)
        limiter.observe(0.01, ok=False)
        assert limiter.limit == 4
        assert limiter.backoffs == 1

    def test_slow_success_also_backs_off(self):
        limiter, _clock = _limiter(initial=8, target_latency_s=0.1)
        limiter.observe(0.5, ok=True)
        assert limiter.limit == 4

    def test_cooldown_coalesces_a_failure_burst(self):
        """A queue full of failures from one congestion instant collapses
        the window once, not once per failure."""
        limiter, clock = _limiter(initial=16, cooldown_s=0.05)
        for _ in range(10):
            limiter.observe(0.01, ok=False)
        assert limiter.limit == 8
        clock.t += 0.05
        limiter.observe(0.01, ok=False)
        assert limiter.limit == 4

    def test_never_below_min_limit(self):
        limiter, clock = _limiter(initial=4, min_limit=2)
        for n in range(10):
            clock.t += 1.0
            limiter.observe(0.01, ok=False)
        assert limiter.limit == 2


class TestIncrease:
    def test_one_raise_per_full_window_of_successes(self):
        limiter, _clock = _limiter(initial=4)
        for _ in range(3):
            limiter.observe(0.01)
        assert limiter.limit == 4
        limiter.observe(0.01)
        assert limiter.limit == 5
        assert limiter.raises == 1

    def test_never_above_max_limit(self):
        limiter, _clock = _limiter(initial=4, max_limit=5)
        for _ in range(100):
            limiter.observe(0.01)
        assert limiter.limit == 5

    def test_failure_resets_accumulated_credit(self):
        limiter, clock = _limiter(initial=4)
        for _ in range(3):
            limiter.observe(0.01)
        clock.t += 1.0
        limiter.observe(0.01, ok=False)  # limit 4 -> 2, credit wiped
        assert limiter.limit == 2
        limiter.observe(0.01)
        assert limiter.limit == 2  # one success is half a window at limit 2
        limiter.observe(0.01)
        assert limiter.limit == 3
