"""The bench-overload harness: invariants, determinism, and the CLI."""

from __future__ import annotations

import json
import subprocess
import sys

from repro.load import OverloadBench, run_bench_overload
from repro.load.overload import SCHEMA


def _small_bench(seed: int = 3) -> OverloadBench:
    return OverloadBench(seed=seed, clients=2, duration_s=0.5)


class TestReport:
    def test_invariants_hold_on_the_default_seed(self):
        report = _small_bench().report()
        assert report["schema"] == SCHEMA
        verdicts = report["invariants"]
        assert verdicts["ok"], verdicts
        assert report["flight"] is None

    def test_protection_beats_collapse_at_overload(self):
        report = _small_bench().report()
        ten_x = report["arms"][-1]
        assert ten_x["multiplier"] == 10
        protected = ten_x["with_flow"]
        unprotected = ten_x["without_flow"]
        assert protected["goodput_rps"] > unprotected["goodput_rps"]
        # The unprotected arm completes everything — eventually — so its
        # failure mode is latency, not errors.
        assert unprotected["errors"] == 0
        assert protected["shed"] > 0
        lat_off = unprotected["latency_s"]["p99"]
        lat_on = protected["latency_s"]["p99"]
        assert lat_on < lat_off

    def test_monitor_class_exempt_in_every_arm(self):
        report = _small_bench().report()
        for arm in report["arms"]:
            assert arm["with_flow"]["by_class"]["shed"][0] == 0

    def test_both_arms_see_identical_offered_load(self):
        report = _small_bench().report()
        for arm in report["arms"]:
            assert arm["with_flow"]["requests"] == arm["without_flow"]["requests"]

    def test_same_seed_byte_identical_report(self):
        first = json.dumps(_small_bench().report(), sort_keys=True)
        second = json.dumps(_small_bench().report(), sort_keys=True)
        assert first == second

    def test_different_seeds_differ(self):
        a = json.dumps(_small_bench(seed=3).report(), sort_keys=True)
        b = json.dumps(_small_bench(seed=4).report(), sort_keys=True)
        assert a != b

    def test_run_bench_overload_wrapper(self):
        report = run_bench_overload(seed=3, clients=2, duration_s=0.5)
        assert report["invariants"]["ok"]


class TestCli:
    def test_cli_json_is_deterministic_and_exits_zero(self):
        outputs = []
        for _ in range(2):
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "bench-overload",
                    "--seed", "3", "--clients", "2", "--duration", "0.5",
                    "--json",
                ],
                capture_output=True,
                text=True,
                timeout=180,
            )
            assert result.returncode == 0, result.stderr[-1500:]
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        report = json.loads(outputs[0])
        assert report["schema"] == SCHEMA
        assert report["invariants"]["ok"]

    def test_cli_rejects_unknown_arguments(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "bench-overload", "--bogus"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
        assert "usage" in result.stderr
