"""CircuitBreaker state machine: trip, refuse, half-open probe, close."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.flow import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        failure_threshold=3, window_s=1.0, open_s=1.0, half_open_probes=1
    )
    defaults.update(kwargs)
    return CircuitBreaker(clock, **defaults), clock


class TestValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(FaultError, match="failure_threshold"):
            CircuitBreaker(FakeClock(), failure_threshold=0)

    def test_rejects_zero_probes(self):
        with pytest.raises(FaultError, match="half_open_probes"):
            CircuitBreaker(FakeClock(), half_open_probes=0)


class TestTripping:
    def test_trips_after_threshold_failures_in_window(self):
        breaker, _clock = _breaker(failure_threshold=3)
        for _ in range(2):
            breaker.on_failure()
        assert breaker.state == CLOSED
        breaker.on_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_old_failures_age_out_of_the_window(self):
        breaker, clock = _breaker(failure_threshold=3, window_s=1.0)
        breaker.on_failure()
        breaker.on_failure()
        clock.t += 2.0  # both slide out of the window
        breaker.on_failure()
        assert breaker.state == CLOSED

    def test_retry_after_counts_down(self):
        breaker, clock = _breaker(failure_threshold=1, open_s=1.0)
        breaker.on_failure()
        assert breaker.retry_after() == 1.0
        clock.t += 0.25
        assert breaker.retry_after() == 0.75
        assert breaker.state == OPEN


class TestHalfOpen:
    def test_probe_budget_after_open_interval(self):
        breaker, clock = _breaker(failure_threshold=1, open_s=1.0,
                                  half_open_probes=1)
        breaker.on_failure()
        assert not breaker.allow()
        clock.t += 1.0
        assert breaker.allow()  # the single probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # budget exhausted until an outcome

    def test_successful_probes_close_the_breaker(self):
        breaker, clock = _breaker(failure_threshold=1, half_open_probes=2)
        breaker.on_failure()
        clock.t += 1.0
        assert breaker.allow()
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == HALF_OPEN  # one of two probes back
        breaker.on_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_for_another_interval(self):
        breaker, clock = _breaker(failure_threshold=1, open_s=1.0)
        breaker.on_failure()
        clock.t += 1.0
        assert breaker.allow()
        breaker.on_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == 1.0
        assert not breaker.allow()

    def test_close_clears_the_failure_history(self):
        """After a clean close, it takes a full threshold of *fresh*
        failures to trip again — stale history is forgiven."""
        breaker, clock = _breaker(failure_threshold=2, open_s=1.0)
        breaker.on_failure()
        breaker.on_failure()
        clock.t += 1.0
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == CLOSED
        breaker.on_failure()
        assert breaker.state == CLOSED
