"""Identity and KeyStore tests."""

from __future__ import annotations

from repro.crypto import Identity, KeyStore


class TestIdentity:
    def test_sign_verify_through_public(self, key_store):
        ident = key_store.identity("Tester")
        sig = ident.sign(b"statement")
        assert ident.public.verify(b"statement", sig)

    def test_public_carries_name(self, key_store):
        assert key_store.public("Tester2").name == "Tester2"

    def test_generate_standalone(self):
        ident = Identity.generate("Solo", bits=512)
        assert ident.public.verify(b"m", ident.sign(b"m"))


class TestKeyStore:
    def test_caches_identities(self, key_store):
        assert key_store.identity("CacheMe") is key_store.identity("CacheMe")

    def test_distinct_names_distinct_keys(self, key_store):
        a = key_store.identity("A-ent")
        b = key_store.identity("B-ent")
        assert a.private_key.n != b.private_key.n

    def test_contains_and_len(self):
        store = KeyStore(key_bits=512)
        assert "X" not in store
        store.identity("X")
        assert "X" in store
        assert len(store) == 1

    def test_known_names_sorted(self):
        store = KeyStore(key_bits=512)
        store.identity("b")
        store.identity("a")
        assert store.known_names() == ["a", "b"]
