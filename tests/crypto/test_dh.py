"""Diffie-Hellman key agreement tests."""

from __future__ import annotations

import pytest

from repro.crypto.dh import MODP_2048_PRIME, DiffieHellman
from repro.errors import KeyExchangeError


class TestAgreement:
    def test_shared_secret_matches(self):
        alice, bob = DiffieHellman(), DiffieHellman()
        assert alice.compute_shared(bob.public_value) == bob.compute_shared(
            alice.public_value
        )

    def test_shared_secret_is_32_bytes(self):
        alice, bob = DiffieHellman(), DiffieHellman()
        assert len(alice.compute_shared(bob.public_value)) == 32

    def test_different_sessions_different_keys(self):
        a1, b1 = DiffieHellman(), DiffieHellman()
        a2, b2 = DiffieHellman(), DiffieHellman()
        assert a1.compute_shared(b1.public_value) != a2.compute_shared(b2.public_value)

    def test_public_values_differ(self):
        assert DiffieHellman().public_value != DiffieHellman().public_value


class TestValidation:
    @pytest.mark.parametrize("bad", [0, 1, MODP_2048_PRIME - 1, MODP_2048_PRIME, -5])
    def test_degenerate_peer_values_rejected(self, bad):
        with pytest.raises(KeyExchangeError):
            DiffieHellman().compute_shared(bad)

    def test_public_value_in_range(self):
        dh = DiffieHellman()
        assert 1 < dh.public_value < MODP_2048_PRIME - 1


class TestKnownAnswers:
    """Fixed exponents pin the full derivation, domain tag included.

    The 32-byte key is ``sha256(b"repro-dh-v1|" + int_to_bytes(shared))``;
    any drift in the tag, the byte codec, or the modular arithmetic moves
    these digests — and silently breaks recorded Switchboard transcripts.
    """

    def test_textbook_small_group(self):
        # p=23, g=5, a=6, b=15: the classic worked example.
        alice = DiffieHellman(prime=23, generator=5, _private=6)
        bob = DiffieHellman(prime=23, generator=5, _private=15)
        assert alice.public_value == 8
        assert bob.public_value == 19
        shared = alice.compute_shared(bob.public_value)
        assert shared == bob.compute_shared(alice.public_value)
        assert shared.hex() == (
            "9c17522de13300cf1a4fc296f55cfb7268c2de3a0877110a108ccdd12e68c50e"
        )

    def test_modp_2048_fixed_exponents(self):
        alice = DiffieHellman(_private=0xA5A5A5A5)
        bob = DiffieHellman(_private=0x5A5A5A5A)
        shared = alice.compute_shared(bob.public_value)
        assert shared == bob.compute_shared(alice.public_value)
        assert shared.hex() == (
            "d8834271de4640674d11c22110014dab09299054f240124425c0591a2783de65"
        )

    def test_shared_key_commutes_for_random_parties(self):
        for _ in range(3):
            alice, bob = DiffieHellman(), DiffieHellman()
            assert alice.compute_shared(bob.public_value) == bob.compute_shared(
                alice.public_value
            )
