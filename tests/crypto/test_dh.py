"""Diffie-Hellman key agreement tests."""

from __future__ import annotations

import pytest

from repro.crypto.dh import MODP_2048_PRIME, DiffieHellman
from repro.errors import KeyExchangeError


class TestAgreement:
    def test_shared_secret_matches(self):
        alice, bob = DiffieHellman(), DiffieHellman()
        assert alice.compute_shared(bob.public_value) == bob.compute_shared(
            alice.public_value
        )

    def test_shared_secret_is_32_bytes(self):
        alice, bob = DiffieHellman(), DiffieHellman()
        assert len(alice.compute_shared(bob.public_value)) == 32

    def test_different_sessions_different_keys(self):
        a1, b1 = DiffieHellman(), DiffieHellman()
        a2, b2 = DiffieHellman(), DiffieHellman()
        assert a1.compute_shared(b1.public_value) != a2.compute_shared(b2.public_value)

    def test_public_values_differ(self):
        assert DiffieHellman().public_value != DiffieHellman().public_value


class TestValidation:
    @pytest.mark.parametrize("bad", [0, 1, MODP_2048_PRIME - 1, MODP_2048_PRIME, -5])
    def test_degenerate_peer_values_rejected(self, bad):
        with pytest.raises(KeyExchangeError):
            DiffieHellman().compute_shared(bad)

    def test_public_value_in_range(self):
        dh = DiffieHellman()
        assert 1 < dh.public_value < MODP_2048_PRIME - 1
