"""Unit and property tests for the number-theory primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numtheory import (
    bytes_to_int,
    egcd,
    generate_distinct_primes,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    modinv,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 101, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 0, -7, 4, 9, 15, 561, 41041, 2**31 + 1, 104729 * 104729]
# 561 and 41041 are Carmichael numbers — Fermat pseudoprimes that
# Miller-Rabin must still reject.


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero(self):
        g, x, _ = egcd(5, 0)
        assert g == 5
        assert x == 1

    @given(st.integers(min_value=1, max_value=10**12), st.integers(min_value=1, max_value=10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestModinv:
    def test_known(self):
        assert modinv(3, 11) == 4  # 3*4 = 12 = 1 mod 11

    def test_not_invertible(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    @given(st.integers(min_value=2, max_value=10**9))
    def test_inverse_mod_prime(self, a):
        p = 2**61 - 1
        inv = modinv(a, p)
        assert (a * inv) % p == 1

    def test_negative_input_normalized(self):
        inv = modinv(-3 % 11, 11)
        assert (8 * inv) % 11 == 1


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites(self, n):
        assert not is_probable_prime(n)

    def test_rejects_product_of_generated_primes(self):
        p, q = generate_distinct_primes(64)
        assert not is_probable_prime(p * q)


class TestPrimeGeneration:
    @pytest.mark.parametrize("bits", [16, 32, 64, 128])
    def test_bit_length_exact(self, bits):
        p = generate_prime(bits)
        assert p.bit_length() == bits
        assert is_probable_prime(p)

    def test_distinct(self):
        p, q = generate_distinct_primes(32)
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_generated_primes_are_odd(self):
        assert generate_prime(24) % 2 == 1


class TestByteCodec:
    @given(st.integers(min_value=0, max_value=2**512))
    def test_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_zero(self):
        assert int_to_bytes(0) == b"\x00"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)

    def test_big_endian(self):
        assert int_to_bytes(0x0102) == b"\x01\x02"


class TestKnownAnswers:
    """Fixed vectors pinning the implementations, not just their laws.

    A property suite can pass with a subtly different algorithm (e.g. an
    inverse normalized into the wrong range); these vectors cannot.
    """

    def test_modinv_textbook_vector(self):
        # RSA-textbook staple: 17^-1 mod 3120 (phi of 3233).
        assert modinv(17, 3120) == 2753
        assert (17 * 2753) % 3120 == 1

    def test_egcd_textbook_vector(self):
        # gcd(240, 46) = 2 = 240*(-9) + 46*47.
        assert egcd(240, 46) == (2, -9, 47)

    def test_modp_2048_is_a_safe_prime_group(self):
        # RFC 3526 group 14: p and (p-1)/2 both prime, generator 2.
        from repro.crypto.dh import MODP_2048_GENERATOR, MODP_2048_PRIME

        assert MODP_2048_PRIME.bit_length() == 2048
        assert MODP_2048_GENERATOR == 2
        assert is_probable_prime(MODP_2048_PRIME, rounds=8)
        assert is_probable_prime((MODP_2048_PRIME - 1) // 2, rounds=8)

    def test_int_to_bytes_vectors(self):
        assert int_to_bytes(0) == b"\x00"
        assert int_to_bytes(255) == b"\xff"
        assert int_to_bytes(256) == b"\x01\x00"
        assert int_to_bytes(65536) == b"\x01\x00\x00"

    @given(st.integers(min_value=2, max_value=10**9))
    def test_modinv_of_inverse_is_identity(self, a):
        p = 2**31 - 1  # Mersenne prime
        inv = modinv(a % p or 1, p)
        assert modinv(inv, p) == (a % p or 1)
