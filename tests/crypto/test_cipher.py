"""Authenticated cipher tests: confidentiality + integrity + AD binding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cipher import AuthenticatedCipher
from repro.errors import CipherError

KEY = b"k" * 32


@pytest.fixture()
def cipher():
    return AuthenticatedCipher(KEY)


class TestRoundtrip:
    def test_basic(self, cipher):
        frame = cipher.encrypt(b"attack at dawn")
        assert cipher.decrypt(frame) == b"attack at dawn"

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_large_plaintext(self, cipher):
        data = bytes(range(256)) * 512
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_with_associated_data(self, cipher):
        frame = cipher.encrypt(b"payload", b"seq-7")
        assert cipher.decrypt(frame, b"seq-7") == b"payload"

    @given(st.binary(max_size=2048), st.binary(max_size=64))
    def test_property_roundtrip(self, plaintext, ad):
        c = AuthenticatedCipher(KEY)
        assert c.decrypt(c.encrypt(plaintext, ad), ad) == plaintext

    def test_nonce_randomization(self, cipher):
        assert cipher.encrypt(b"x") != cipher.encrypt(b"x")


class TestRejection:
    def test_tampered_ciphertext(self, cipher):
        frame = bytearray(cipher.encrypt(b"secret data"))
        frame[20] ^= 0x01
        with pytest.raises(CipherError):
            cipher.decrypt(bytes(frame))

    def test_tampered_nonce(self, cipher):
        frame = bytearray(cipher.encrypt(b"secret data"))
        frame[0] ^= 0x01
        with pytest.raises(CipherError):
            cipher.decrypt(bytes(frame))

    def test_tampered_tag(self, cipher):
        frame = bytearray(cipher.encrypt(b"secret data"))
        frame[-1] ^= 0x01
        with pytest.raises(CipherError):
            cipher.decrypt(bytes(frame))

    def test_wrong_associated_data(self, cipher):
        frame = cipher.encrypt(b"payload", b"seq-7")
        with pytest.raises(CipherError):
            cipher.decrypt(frame, b"seq-8")

    def test_truncated_frame(self, cipher):
        with pytest.raises(CipherError):
            cipher.decrypt(b"short")

    def test_wrong_key(self):
        frame = AuthenticatedCipher(KEY).encrypt(b"x")
        with pytest.raises(CipherError):
            AuthenticatedCipher(b"j" * 32).decrypt(frame)

    def test_short_session_key_rejected(self):
        with pytest.raises(CipherError):
            AuthenticatedCipher(b"short")


class TestConfidentiality:
    def test_plaintext_not_visible(self, cipher):
        frame = cipher.encrypt(b"TOPSECRET-MARKER" * 4)
        assert b"TOPSECRET-MARKER" not in frame

    def test_key_separation(self):
        # Same session key, different derived enc/mac keys per domain.
        c1 = AuthenticatedCipher(KEY)
        c2 = AuthenticatedCipher(KEY)
        assert c1.decrypt(c2.encrypt(b"cross")) == b"cross"
