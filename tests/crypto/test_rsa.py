"""RSA signature tests: the unforgeability dRBAC depends on."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.rsa import RsaPublicKey, generate_keypair
from repro.errors import SignatureError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(512)


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(512)


class TestSignVerify:
    def test_roundtrip(self, keypair):
        sig = keypair.sign(b"hello world")
        assert keypair.public_key.verify(b"hello world", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.sign(b"hello world")
        assert not keypair.public_key.verify(b"hello worlD", sig)

    def test_wrong_key_rejected(self, keypair, other_keypair):
        sig = keypair.sign(b"msg")
        assert not other_keypair.public_key.verify(b"msg", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"msg"))
        sig[0] ^= 0xFF
        assert not keypair.public_key.verify(b"msg", bytes(sig))

    def test_truncated_signature_rejected(self, keypair):
        sig = keypair.sign(b"msg")
        assert not keypair.public_key.verify(b"msg", sig[:-1])

    def test_oversized_signature_rejected(self, keypair):
        big = (keypair.n + 1).to_bytes(keypair.byte_length, "big", signed=False)
        assert not keypair.public_key.verify(b"msg", big)

    def test_deterministic(self, keypair):
        assert keypair.sign(b"abc") == keypair.sign(b"abc")

    def test_empty_message(self, keypair):
        sig = keypair.sign(b"")
        assert keypair.public_key.verify(b"", sig)

    @given(st.binary(max_size=512))
    def test_any_message_roundtrips(self, message):
        # Module fixture unavailable in @given; use a cached pair.
        kp = _cached_pair()
        assert kp.public_key.verify(message, kp.sign(message))

    def test_require_valid_raises(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public_key.require_valid(b"msg", b"\x00" * keypair.byte_length)

    def test_require_valid_passes(self, keypair):
        keypair.public_key.require_valid(b"msg", keypair.sign(b"msg"))


class TestKeys:
    def test_public_key_hashable(self, keypair):
        assert {keypair.public_key: 1}[RsaPublicKey(keypair.n, keypair.e)] == 1

    def test_fingerprint_stable_and_short(self, keypair):
        fp = keypair.public_key.fingerprint()
        assert fp == keypair.public_key.fingerprint()
        assert len(fp) == 16

    def test_fingerprints_differ(self, keypair, other_keypair):
        assert keypair.public_key.fingerprint() != other_keypair.public_key.fingerprint()

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_keypair(256)

    def test_modulus_size(self, keypair):
        assert keypair.n.bit_length() >= 510  # two 256-bit primes


_PAIR = None


def _cached_pair():
    global _PAIR
    if _PAIR is None:
        _PAIR = generate_keypair(512)
    return _PAIR
