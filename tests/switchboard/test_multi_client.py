"""Multiple concurrent channels to one service."""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    ChannelState,
    RoleAuthorizer,
    SwitchboardEndpoint,
)


class Board:
    def __init__(self):
        self.posts = []

    def post(self, who, text):
        self.posts.append((who, text))
        return len(self.posts)

    def read(self):
        return [list(p) for p in self.posts]


@pytest.fixture()
def world(key_store):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("server")
    for i in range(3):
        net.add_node(f"client{i}")
        net.add_link(f"client{i}", "server", latency_s=0.001 * (i + 1))
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    server_ep = SwitchboardEndpoint(transport, "server")
    board = Board()
    server_ep.export("board", board)
    server_ep.listen(
        "board",
        AuthorizationSuite(
            identity=engine.identity("BoardSvc"),
            authorizer=RoleAuthorizer(engine, "Club.Member"),
        ),
    )
    return engine, transport, server_ep, board


def _connect(engine, transport, client_id):
    cred = engine.delegate("Club", f"Member{client_id}", "Club.Member")
    ep = SwitchboardEndpoint(transport, f"client{client_id}")
    suite = AuthorizationSuite(
        identity=engine.identity(f"Member{client_id}"), credentials=[cred]
    )
    return ep.connect("server", "board", suite).wait(), cred


class TestConcurrentChannels:
    def test_three_clients_interleave(self, world):
        engine, transport, server_ep, board = world
        connections = [_connect(engine, transport, i)[0] for i in range(3)]
        for round_number in range(2):
            for i, connection in enumerate(connections):
                connection.call_sync("board", "post", [f"m{i}", f"r{round_number}"])
        assert len(board.posts) == 6
        assert len(server_ep.connections()) == 3

    def test_channels_have_independent_sequences(self, world):
        engine, transport, server_ep, board = world
        a, _ = _connect(engine, transport, 0)
        b, _ = _connect(engine, transport, 1)
        for _ in range(5):
            a.call_sync("board", "read")
        b.call_sync("board", "read")  # small seq on b: not a replay
        server_connections = server_ep.connections()
        assert all(c.stats.replays_rejected == 0 for c in server_connections)

    def test_revoking_one_client_leaves_others_open(self, world):
        engine, transport, server_ep, board = world
        a, cred_a = _connect(engine, transport, 0)
        b, _ = _connect(engine, transport, 1)
        engine.revoke(cred_a)
        transport.scheduler.run()
        assert a.state is ChannelState.REVOKED
        assert b.state is ChannelState.OPEN
        assert b.call_sync("board", "post", ["b", "still here"]) == 1

    def test_per_channel_session_keys_differ(self, world):
        engine, transport, server_ep, board = world
        a, _ = _connect(engine, transport, 0)
        b, _ = _connect(engine, transport, 1)
        # Frames from one channel cannot decrypt on the other.
        sealed = a.cipher.encrypt(b"probe", b"ad")
        from repro.errors import CipherError

        with pytest.raises(CipherError):
            b.cipher.decrypt(sealed, b"ad")
