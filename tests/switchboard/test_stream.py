"""SwitchboardStream tests: ordered sealed byte transport."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.drbac import DrbacEngine
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    RoleAuthorizer,
    SwitchboardEndpoint,
)


@pytest.fixture()
def channel_pair(key_store):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency_s=0.002, secure=False)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    ep_a = SwitchboardEndpoint(transport, "a")
    ep_b = SwitchboardEndpoint(transport, "b")
    ep_b.listen("svc", AuthorizationSuite(identity=engine.identity("Svc")))
    client = ep_a.connect(
        "b", "svc", AuthorizationSuite(identity=engine.identity("User"))
    ).wait()
    server = ep_b.connections()[0]
    return engine, transport, client, server


class TestTransfer:
    def test_one_shot_send(self, channel_pair):
        engine, transport, client, server = channel_pair
        stream_id = client.streams.send_bytes(b"hello stream world")
        transport.scheduler.run()
        incoming = server.streams.incoming(stream_id)
        assert incoming.read_all() == b"hello stream world"
        assert incoming.complete

    def test_chunking(self, channel_pair):
        engine, transport, client, server = channel_pair
        payload = bytes(range(256)) * 100  # 25,600 bytes
        stream = client.streams.open(chunk_size=1024)
        stream.write(payload)
        stream.close()
        transport.scheduler.run()
        incoming = server.streams.incoming(stream.stream_id)
        assert incoming.read_all() == payload
        assert incoming.stats.chunks == 25

    def test_multiple_writes_preserve_order(self, channel_pair):
        engine, transport, client, server = channel_pair
        stream = client.streams.open()
        for part in (b"one ", b"two ", b"three"):
            stream.write(part)
        stream.close()
        transport.scheduler.run()
        assert server.streams.incoming(stream.stream_id).read_all() == b"one two three"

    def test_bidirectional_streams(self, channel_pair):
        engine, transport, client, server = channel_pair
        up = client.streams.send_bytes(b"up")
        down = server.streams.send_bytes(b"down")
        transport.scheduler.run()
        assert server.streams.incoming(up).read_all() == b"up"
        assert client.streams.incoming(down).read_all() == b"down"

    def test_incremental_read(self, channel_pair):
        engine, transport, client, server = channel_pair
        stream_id = client.streams.send_bytes(b"abcdefgh")
        transport.scheduler.run()
        incoming = server.streams.incoming(stream_id)
        assert incoming.read(3) == b"abc"
        assert incoming.read(3) == b"def"
        assert incoming.read() == b"gh"
        assert incoming.read() == b""

    @settings(
        max_examples=15,
        deadline=None,
        # Streams have unique ids, so reusing the channel across examples
        # is exactly the production pattern, not cross-test leakage.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(payload=st.binary(min_size=0, max_size=8192))
    def test_arbitrary_payload_roundtrip(self, channel_pair, payload):
        engine, transport, client, server = channel_pair
        stream = client.streams.open(chunk_size=512)
        stream.write(payload)
        stream.close()
        transport.scheduler.run()
        assert server.streams.incoming(stream.stream_id).read_all() == payload


class TestCallbacks:
    def test_on_data_and_eof(self, channel_pair):
        engine, transport, client, server = channel_pair
        events = []
        server.streams.on_open(
            lambda s: (s.on_data(lambda c: events.append(("data", c))),
                       s.on_eof(lambda: events.append(("eof",))))
        )
        client.streams.send_bytes(b"ping")
        transport.scheduler.run()
        assert ("data", b"ping") in events
        assert ("eof",) in events

    def test_late_on_data_replays_buffer(self, channel_pair):
        engine, transport, client, server = channel_pair
        stream_id = client.streams.send_bytes(b"early")
        transport.scheduler.run()
        seen = []
        server.streams.incoming(stream_id).on_data(seen.append)
        assert seen == [b"early"]


class TestSecurity:
    def test_stream_contents_sealed_on_wire(self, channel_pair):
        engine, transport, client, server = channel_pair
        snoops = []
        transport.observe_link("a", "b", lambda p, s, d: snoops.append(p))
        client.streams.send_bytes(b"CLASSIFIED-STREAM-PAYLOAD")
        transport.scheduler.run()
        import base64

        marker = base64.b64encode(b"CLASSIFIED-STREAM-PAYLOAD")
        assert snoops
        assert not any(b"CLASSIFIED" in p or marker in p for p in snoops)

    def test_revocation_aborts_live_streams(self, channel_pair):
        engine, transport, client, server = channel_pair
        # Re-establish with a revocable authorization.
        cred = engine.delegate("Comp.NY", "User2", "Comp.NY.Member")
        server.endpoint.listen(
            "svc2",
            AuthorizationSuite(
                identity=engine.identity("Svc"),
                authorizer=RoleAuthorizer(engine, "Comp.NY.Member"),
            ),
        )
        conn = client.endpoint.connect(
            "b", "svc2",
            AuthorizationSuite(identity=engine.identity("User2"), credentials=[cred]),
        ).wait()
        server_conn = [c for c in server.endpoint.connections() if c is not server][0]
        stream = conn.streams.open()
        stream.write(b"part1")
        transport.scheduler.run()
        engine.revoke(cred)
        transport.scheduler.run()
        incoming = server_conn.streams.incoming(stream.stream_id)
        assert incoming.stats.aborted
        from repro.errors import ChannelClosedError

        with pytest.raises(ChannelClosedError):
            stream.write(b"part2")
