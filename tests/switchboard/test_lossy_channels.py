"""Switchboard behaviour under injected link loss."""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    ChannelState,
    SwitchboardEndpoint,
)


class Echo:
    def ping(self):
        return "pong"


def make_world(key_store, loss_rate: float, *, seed: int = 5):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency_s=0.01, loss_rate=loss_rate)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler, loss_seed=seed)
    ep_a = SwitchboardEndpoint(transport, "a")
    ep_b = SwitchboardEndpoint(transport, "b")
    ep_b.export("echo", Echo())
    ep_b.listen("echo", AuthorizationSuite(identity=engine.identity("Svc")))
    return engine, scheduler, transport, ep_a, ep_b


class TestLiveness:
    def test_heartbeats_detect_black_hole(self, key_store):
        """A link that starts eating every frame flips the channel DEAD
        within the missed-beat budget — the liveness monitoring §4.3
        promises."""
        engine, scheduler, transport, ep_a, ep_b = make_world(key_store, 0.0)
        connection = ep_a.connect(
            "b", "echo", AuthorizationSuite(identity=engine.identity("User"))
        ).wait()
        connection.start_heartbeats(1.0, max_missed=3)
        scheduler.run_until(2.5)
        assert connection.state is ChannelState.OPEN
        transport.network.link("a", "b").loss_rate = 1.0
        scheduler.run_until(10.0)
        assert connection.state is ChannelState.DEAD

    def test_occasional_loss_tolerated(self, key_store):
        """Mild loss delays pongs but stays within the missed budget."""
        engine, scheduler, transport, ep_a, ep_b = make_world(key_store, 0.0)
        connection = ep_a.connect(
            "b", "echo", AuthorizationSuite(identity=engine.identity("User"))
        ).wait()
        transport.network.link("a", "b").loss_rate = 0.2
        connection.start_heartbeats(1.0, max_missed=5)
        scheduler.run_until(20.0)
        assert connection.state is ChannelState.OPEN
        assert connection.stats.heartbeats_answered >= 10

    def test_dead_channel_rejects_calls(self, key_store):
        engine, scheduler, transport, ep_a, ep_b = make_world(key_store, 0.0)
        connection = ep_a.connect(
            "b", "echo", AuthorizationSuite(identity=engine.identity("User"))
        ).wait()
        connection.start_heartbeats(0.5, max_missed=2)
        transport.network.link("a", "b").loss_rate = 1.0
        scheduler.run_until(5.0)
        from repro.errors import ChannelClosedError

        with pytest.raises(ChannelClosedError):
            connection.call("echo", "ping")


class TestHandshakeUnderLoss:
    def test_handshake_fails_cleanly_on_black_hole(self, key_store):
        engine, scheduler, transport, ep_a, ep_b = make_world(key_store, 1.0)
        pending = ep_a.connect(
            "b", "echo", AuthorizationSuite(identity=engine.identity("User"))
        )
        scheduler.run()
        assert not pending.done  # the HELLO never arrived; no crash, no channel
        assert ep_b.connections() == []
