"""Plain RPC (RMI stand-in) tests."""

from __future__ import annotations

import pytest

from repro.net import EventScheduler, Network, Transport
from repro.switchboard.rpc import (
    ObjectExporter,
    PlainRpcEndpoint,
    RemoteError,
)
from repro.errors import SwitchboardError


class Calculator:
    def add(self, a, b):
        return a + b

    def boom(self):
        raise ValueError("kaput")

    def _secret(self):
        return "hidden"

    data = [1, 2, 3]


@pytest.fixture()
def world():
    net = Network()
    net.add_node("client")
    net.add_node("server")
    net.add_link("client", "server", latency_s=0.005, secure=False)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    client = PlainRpcEndpoint(transport, "client")
    server = PlainRpcEndpoint(transport, "server")
    server.exporter.export("calc", Calculator())
    return transport, client, server


class TestCalls:
    def test_sync_call(self, world):
        _, client, _ = world
        assert client.call_sync("server", "calc", "add", [2, 3]) == 5

    def test_async_future(self, world):
        transport, client, _ = world
        pending = client.call("server", "calc", "add", [1, 1])
        assert not pending.done
        transport.scheduler.run()
        assert pending.done and pending.value == 2

    def test_remote_exception_propagates(self, world):
        _, client, _ = world
        with pytest.raises(RemoteError, match="kaput"):
            client.call_sync("server", "calc", "boom")

    def test_unknown_target(self, world):
        _, client, _ = world
        with pytest.raises(RemoteError, match="no exported object"):
            client.call_sync("server", "ghost", "add", [1, 2])

    def test_unknown_method(self, world):
        _, client, _ = world
        with pytest.raises(RemoteError, match="no callable method"):
            client.call_sync("server", "calc", "subtract", [1, 2])

    def test_private_method_refused(self, world):
        _, client, _ = world
        with pytest.raises(RemoteError, match="private"):
            client.call_sync("server", "calc", "_secret")

    def test_non_callable_attribute_refused(self, world):
        _, client, _ = world
        with pytest.raises(RemoteError, match="no callable method"):
            client.call_sync("server", "calc", "data")

    def test_value_before_completion_raises(self, world):
        _, client, _ = world
        pending = client.call("server", "calc", "add", [1, 2])
        with pytest.raises(SwitchboardError):
            _ = pending.value

    def test_two_way(self, world):
        transport, client, server = world
        client.exporter.export("echo", Calculator())
        assert server.call_sync("client", "echo", "add", [4, 4]) == 8


class TestVisibility:
    def test_plaintext_arguments_visible_on_insecure_link(self, world):
        transport, client, _ = world
        snoops = []
        transport.observe_link("client", "server", lambda p, s, d: snoops.append(p))
        client.call_sync("server", "calc", "add", ["SENSITIVE", "DATA"])
        assert any(b"SENSITIVE" in frame for frame in snoops)


class TestExporter:
    def test_exported_names(self):
        exporter = ObjectExporter()
        exporter.export("b", object())
        exporter.export("a", object())
        assert exporter.exported_names() == ["a", "b"]

    def test_unexport(self):
        exporter = ObjectExporter()
        exporter.export("x", Calculator())
        exporter.unexport("x")
        with pytest.raises(SwitchboardError):
            exporter.dispatch("x", "add", [1, 2])
