"""Switchboard channel tests: handshake, confidentiality, replay,
heartbeats, continuous authorization, and revalidation."""

from __future__ import annotations

import json

import pytest

from repro.crypto import KeyStore
from repro.drbac import DrbacEngine, EntityRef, Role
from repro.errors import ChannelClosedError, HandshakeError
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AcceptAllAuthorizer,
    AuthorizationSuite,
    ChannelState,
    RoleAuthorizer,
    SwitchboardEndpoint,
)


class MailBoxService:
    def __init__(self):
        self.notes = []

    def inbox(self):
        return ["m1", "m2"]

    def note(self, text):
        self.notes.append(text)
        return len(self.notes)


@pytest.fixture()
def world(key_store: KeyStore):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("cnode")
    net.add_node("snode")
    net.add_link("cnode", "snode", latency_s=0.005, secure=False)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    directory = lambda name: (
        key_store.public(name) if name in key_store else None
    )
    client_ep = SwitchboardEndpoint(transport, "cnode", directory=directory)
    server_ep = SwitchboardEndpoint(transport, "snode", directory=directory)
    service = MailBoxService()
    server_ep.export("mail", service)
    return engine, transport, client_ep, server_ep, service


def _suite(engine, name, credentials=(), authorizer=None):
    return AuthorizationSuite(
        identity=engine.identity(name),
        credentials=list(credentials),
        authorizer=authorizer or AcceptAllAuthorizer(),
    )


def _open_channel(engine, client_ep, server_ep, *, server_authorizer=None, client="Alice"):
    cred = engine.delegate("Comp.NY", client, "Comp.NY.Member")
    server_ep.listen(
        "mail",
        _suite(
            engine,
            "MailService",
            authorizer=server_authorizer or RoleAuthorizer(engine, "Comp.NY.Member"),
        ),
    )
    pending = client_ep.connect("snode", "mail", _suite(engine, client, [cred]))
    return pending.wait(), cred


class TestHandshake:
    def test_successful_connect(self, world):
        engine, _, client_ep, server_ep, _ = world
        conn, _ = _open_channel(engine, client_ep, server_ep)
        assert conn.state is ChannelState.OPEN
        assert conn.peer_identity.name == "MailService"

    def test_unknown_service_rejected(self, world):
        engine, _, client_ep, server_ep, _ = world
        pending = client_ep.connect("snode", "ghost", _suite(engine, "Alice"))
        with pytest.raises(HandshakeError, match="no such service"):
            pending.wait()

    def test_unauthorized_client_rejected(self, world):
        engine, _, client_ep, server_ep, _ = world
        server_ep.listen(
            "mail",
            _suite(engine, "MailService", authorizer=RoleAuthorizer(engine, "Comp.NY.Member")),
        )
        pending = client_ep.connect("snode", "mail", _suite(engine, "Mallory"))
        with pytest.raises(HandshakeError, match="failed to prove"):
            pending.wait()

    def test_identity_binding_mismatch_rejected(self, world, key_store):
        engine, _, client_ep, server_ep, _ = world
        server_ep.listen("mail", _suite(engine, "MailService"))
        engine.identity("Alice")  # the real Alice exists in the PKI
        # Mallory claims to be Alice but signs with her own key.
        mallory = engine.identity("Mallory2")
        fake = AuthorizationSuite(
            identity=type(mallory)(name="Alice", private_key=mallory.private_key),
        )
        pending = client_ep.connect("snode", "mail", fake)
        with pytest.raises(HandshakeError, match="binding mismatch"):
            pending.wait()

    def test_server_identity_verified_by_client(self, world):
        engine, _, client_ep, server_ep, _ = world
        engine.identity("MailService")  # the real service exists in the PKI
        # Server claims to be "MailService" but uses Imposter's key.
        imposter = engine.identity("Imposter")
        server_ep.listen(
            "mail",
            AuthorizationSuite(
                identity=type(imposter)(name="MailService", private_key=imposter.private_key)
            ),
        )
        pending = client_ep.connect("snode", "mail", _suite(engine, "Alice"))
        with pytest.raises(HandshakeError, match="binding mismatch"):
            pending.wait()


class TestCalls:
    def test_round_trip(self, world):
        engine, _, client_ep, server_ep, _ = world
        conn, _ = _open_channel(engine, client_ep, server_ep)
        assert conn.call_sync("mail", "inbox") == ["m1", "m2"]

    def test_no_plaintext_on_wire(self, world):
        engine, transport, client_ep, server_ep, _ = world
        snoops = []
        transport.observe_link("cnode", "snode", lambda p, s, d: snoops.append(p))
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.call_sync("mail", "note", ["EXTREMELY_SECRET"])
        assert not any(b"EXTREMELY_SECRET" in p for p in snoops)

    def test_server_state_mutated(self, world):
        engine, _, client_ep, server_ep, service = world
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.call_sync("mail", "note", ["hello"])
        assert service.notes == ["hello"]

    def test_call_on_closed_channel(self, world):
        engine, transport, client_ep, server_ep, _ = world
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.close()
        transport.scheduler.run()
        with pytest.raises(ChannelClosedError):
            conn.call("mail", "inbox")


class TestReplayAndTamper:
    def _capture_data_frames(self, transport):
        frames = []
        transport.observe_link("cnode", "snode", lambda p, s, d: frames.append((p, s, d)))
        return frames

    def test_replayed_frame_rejected(self, world):
        engine, transport, client_ep, server_ep, service = world
        frames = self._capture_data_frames(transport)
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.call_sync("mail", "note", ["once"])
        # Find the client->server data frame and replay it verbatim.
        data_frames = [
            p for (p, s, d) in frames
            if s == "cnode" and json.loads(p.decode()).get("type") == "data"
        ]
        assert data_frames
        replay = data_frames[-1]
        server_conn = server_ep.connections()[0]
        before = server_conn.stats.replays_rejected
        transport.send("cnode", "snode", "switchboard", replay)
        transport.scheduler.run()
        assert server_conn.stats.replays_rejected == before + 1
        assert service.notes == ["once"]  # not applied twice

    def test_tampered_frame_rejected(self, world):
        engine, transport, client_ep, server_ep, service = world
        frames = self._capture_data_frames(transport)
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.call_sync("mail", "note", ["real"])
        data_frames = [
            p for (p, s, d) in frames
            if s == "cnode" and json.loads(p.decode()).get("type") == "data"
        ]
        outer = json.loads(data_frames[-1].decode())
        outer["seq"] = outer["seq"] + 1000  # fresh seq, but MAC now fails
        server_conn = server_ep.connections()[0]
        before = server_conn.stats.tamper_rejected
        transport.send(
            "cnode", "snode", "switchboard", json.dumps(outer).encode()
        )
        transport.scheduler.run()
        assert server_conn.stats.tamper_rejected == before + 1


class TestHeartbeats:
    def test_rtt_measured(self, world):
        engine, transport, client_ep, server_ep, _ = world
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.start_heartbeats(1.0)
        transport.scheduler.run_until(3.5)
        assert conn.last_rtt == pytest.approx(0.010, rel=0.2)
        assert conn.stats.heartbeats_answered >= 2

    def test_dead_after_missed_beats(self, world):
        engine, transport, client_ep, server_ep, _ = world
        conn, _ = _open_channel(engine, client_ep, server_ep)
        conn.start_heartbeats(1.0, max_missed=3)
        transport.network.link("cnode", "snode").up = False
        # Pings become unroutable (counted as loss, never raising into the
        # scheduler); missed pongs flip the channel to DEAD.
        transport.scheduler.run_until(10.0)
        assert conn.state is ChannelState.DEAD
        assert conn.stats.frames_unroutable > 0


class TestContinuousAuthorization:
    def test_revocation_flips_both_ends(self, world):
        engine, transport, client_ep, server_ep, _ = world
        conn, cred = _open_channel(engine, client_ep, server_ep)
        server_conn = server_ep.connections()[0]
        notified = []
        conn.on_trust_change(notified.append)
        engine.revoke(cred)
        transport.scheduler.run()
        assert server_conn.state is ChannelState.REVOKED
        assert conn.state is ChannelState.REVOKED
        assert notified

    def test_calls_blocked_after_revocation(self, world):
        engine, transport, client_ep, server_ep, _ = world
        conn, cred = _open_channel(engine, client_ep, server_ep)
        engine.revoke(cred)
        transport.scheduler.run()
        with pytest.raises(ChannelClosedError, match="revalidation"):
            conn.call("mail", "inbox")

    def test_revalidation_restores_service(self, world):
        engine, transport, client_ep, server_ep, service = world
        conn, cred = _open_channel(engine, client_ep, server_ep)
        engine.revoke(cred)
        transport.scheduler.run()
        assert conn.state is ChannelState.REVOKED
        # Alice obtains a fresh credential and revalidates.
        fresh = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        pending = conn.revalidate([fresh])
        assert pending.wait() is True
        assert conn.state is ChannelState.OPEN
        assert conn.call_sync("mail", "inbox") == ["m1", "m2"]

    def test_revalidation_with_bad_credentials_fails(self, world):
        engine, transport, client_ep, server_ep, _ = world
        conn, cred = _open_channel(engine, client_ep, server_ep)
        engine.revoke(cred)
        transport.scheduler.run()
        pending = conn.revalidate([])
        with pytest.raises(Exception, match="failed to prove"):
            pending.wait()
        assert conn.state is ChannelState.REVOKED
