"""RPC pipelining: windowing, ordering, id reuse, failure propagation."""

from __future__ import annotations

import pytest

from repro.errors import RpcTimeoutError, SwitchboardError
from repro.net import EventScheduler, Network, Transport
from repro.switchboard.rpc import CallIdPool, PlainRpcEndpoint, RemoteError


class Echo:
    def echo(self, value):
        return value

    def boom(self, value):
        raise ValueError(f"boom {value}")


@pytest.fixture()
def world():
    net = Network()
    net.add_node("client")
    net.add_node("server")
    net.add_link("client", "server", latency_s=0.005, secure=False)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    client = PlainRpcEndpoint(transport, "client")
    server = PlainRpcEndpoint(transport, "server")
    server.exporter.export("echo", Echo())
    return scheduler, transport, client


class TestCallIdPool:
    def test_fresh_ids_are_sequential(self):
        pool = CallIdPool()
        assert [pool.acquire() for _ in range(3)] == [1, 2, 3]

    def test_released_ids_are_reused_smallest_first(self):
        pool = CallIdPool()
        ids = [pool.acquire() for _ in range(4)]
        pool.release(ids[2])
        pool.release(ids[0])
        assert pool.acquire() == ids[0]
        assert pool.acquire() == ids[2]
        assert pool.acquire() == 5

    def test_non_reusable_ids_never_recycle(self):
        pool = CallIdPool()
        retry_id = pool.acquire(reusable=False)
        pool.release(retry_id)  # ignored
        assert pool.acquire() == retry_id + 1

    def test_release_is_idempotent(self):
        pool = CallIdPool()
        call_id = pool.acquire()
        pool.release(call_id)
        pool.release(call_id)
        assert pool.acquire() == call_id
        assert pool.acquire() == 2

    def test_high_water_stays_bounded_under_reuse(self, world):
        _, _, client = world
        for _ in range(20):
            client.call_sync("server", "echo", "echo", ["x"])
        # Every call completed before the next was issued, so one id
        # serves the whole sequence.
        assert client._ids.high_water == 1


class TestPipeline:
    def test_results_in_issue_order(self, world):
        _, _, client = world
        pipe = client.pipeline("server", "echo", depth=4)
        for index in range(10):
            pipe.call("echo", [index])
        assert pipe.drain() == list(range(10))

    def test_window_limits_in_flight(self, world):
        _, _, client = world
        pipe = client.pipeline("server", "echo", depth=3)
        for index in range(10):
            pipe.call("echo", [index])
        # Backlogged calls are queued locally, not on the wire.
        assert pipe.in_flight == 3
        assert pipe.outstanding == 10
        pipe.drain()
        assert pipe.in_flight == 0
        assert pipe.outstanding == 0

    def test_depth_one_is_serial(self, world):
        scheduler, _, client = world
        pipe = client.pipeline("server", "echo", depth=1)
        for index in range(3):
            pipe.call("echo", [index])
        assert pipe.drain() == [0, 1, 2]
        # Three strictly sequential round trips over a 5 ms link.
        assert scheduler.now() >= 3 * 2 * 0.005

    def test_pipelined_faster_than_serial(self, world):
        scheduler, _, client = world
        serial = client.pipeline("server", "echo", depth=1)
        for index in range(8):
            serial.call("echo", [index])
        serial.drain()
        serial_makespan = scheduler.now()
        fast = client.pipeline("server", "echo", depth=8)
        for index in range(8):
            fast.call("echo", [index])
        fast.drain()
        fast_makespan = scheduler.now() - serial_makespan
        assert serial_makespan / fast_makespan >= 2.0

    def test_remote_errors_do_not_hide_neighbours(self, world):
        _, _, client = world
        pipe = client.pipeline("server", "echo", depth=4)
        pipe.call("echo", [1])
        pipe.call("boom", [2])
        pipe.call("echo", [3])
        results = pipe.drain(return_exceptions=True)
        assert results[0] == 1
        assert isinstance(results[1], RemoteError)
        assert "boom 2" in str(results[1])
        assert results[2] == 3

    def test_drain_raises_without_opt_in(self, world):
        _, _, client = world
        pipe = client.pipeline("server", "echo", depth=4)
        pipe.call("boom", [1])
        with pytest.raises(RemoteError):
            pipe.drain()

    def test_caller_exception_aborts_only_that_call(self, world):
        _, _, client = world
        calls = 0

        def flaky(value):
            nonlocal calls
            calls += 1
            if calls == 2:
                raise RuntimeError("local send blew up")
            return client.call("server", "echo", "echo", [value])

        from repro.switchboard.rpc import RpcPipeline

        scheduler = client.transport.scheduler
        pipe = RpcPipeline(flaky, scheduler, depth=2)
        for index in range(3):
            pipe.call(index)
        results = pipe.drain(return_exceptions=True)
        assert results[0] == 0
        assert isinstance(results[1], RuntimeError)
        assert results[2] == 2

    def test_id_reuse_keeps_id_space_small(self, world):
        _, _, client = world
        pipe = client.pipeline("server", "echo", depth=4)
        for index in range(40):
            pipe.call("echo", [index])
        pipe.drain()
        # Ids cycle within (roughly) the window, not one per call.
        assert client._ids.high_water <= 8

    def test_rejects_bad_depth(self, world):
        _, _, client = world
        with pytest.raises(SwitchboardError):
            client.pipeline("server", "echo", depth=0)

    def test_drain_timeout_on_dead_server(self, world):
        scheduler, transport, client = world
        transport.network.node("server").up = False
        pipe = client.pipeline("server", "echo", depth=2)
        pipe.call("echo", [1])
        with pytest.raises((RpcTimeoutError, SwitchboardError)):
            pipe.drain(timeout=1.0)


class TestPipelineBatchingTogether:
    def test_batched_pipeline_results_identical(self, world):
        scheduler, transport, client = world
        plain = client.pipeline("server", "echo", depth=4)
        for index in range(12):
            plain.call("echo", [index])
        expected = plain.drain()
        transport.configure_batching(max_frames=4, window=0.002)
        batched = client.pipeline("server", "echo", depth=4)
        for index in range(12):
            batched.call("echo", [index])
        assert batched.drain() == expected
        assert transport.stats.batches_sent > 0
