"""Wire trace-context propagation through plain RPC.

The ``dist`` gate is the load-bearing property here: frames only grow a
``"tc"`` key — changing their byte size and therefore simulated transfer
delays — when a harness explicitly opts in, so every existing
byte-identical report (chaos, bench-load, simtest) is untouched.  With
the gate open, client and server spans share one trace id across the
simulated wire, and every failure path tags its span ``error=<type>``.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import RpcTimeoutError
from repro.net import EventScheduler, Network, Transport
from repro.switchboard.rpc import PlainRpcEndpoint, decode_frame


class Echo:
    def ping(self, value):
        return value

    def boom(self):
        raise ValueError("kaput")


def _world(*, loss_rate: float = 0.0):
    net = Network()
    net.add_node("client")
    net.add_node("server")
    net.add_link(
        "client", "server", latency_s=0.005, secure=False, loss_rate=loss_rate
    )
    scheduler = EventScheduler()
    transport = Transport(net, scheduler, loss_seed=1)
    client = PlainRpcEndpoint(transport, "client")
    server = PlainRpcEndpoint(transport, "server")
    server.exporter.export("echo", Echo())
    return net, scheduler, transport, client


class TestDistGate:
    def test_frames_carry_no_context_without_dist(self):
        _, scheduler, transport, client = _world()
        seen: list[dict] = []
        transport.observe_link(
            "client", "server",
            lambda payload, src, dst: seen.append(decode_frame(payload)),
        )
        with obs.scoped(enabled=True, dist=False):
            obs.set_tracer_clock(scheduler)
            client.call("server", "echo", "ping", [1]).wait()
        assert seen
        assert all("tc" not in frame for frame in seen)

    def test_dist_requires_enabled(self):
        with obs.scoped(enabled=False, dist=True):
            assert not obs.dist_enabled()
        with obs.scoped(enabled=True, dist=True):
            assert obs.dist_enabled()

    def test_frames_carry_context_with_dist(self):
        _, scheduler, transport, client = _world()
        seen: list[dict] = []
        transport.observe_link(
            "client", "server",
            lambda payload, src, dst: seen.append(decode_frame(payload)),
        )
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            client.call("server", "echo", "ping", [1]).wait()
        request = next(f for f in seen if f["type"] == "call")
        response = next(f for f in seen if f["type"] == "result")
        assert request["tc"] == response["tc"]
        assert len(request["tc"]) == 2


class TestStitching:
    def test_client_and_server_share_a_trace(self):
        _, scheduler, _, client = _world()
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            assert client.call("server", "echo", "ping", ["x"]).wait() == "x"
            tracer = obs.get_tracer()
            (client_span,) = tracer.find("rpc.client")
            (server_span,) = tracer.find("rpc.server")
        assert client_span.trace_id == server_span.trace_id
        assert server_span.parent_id == client_span.span_id
        assert client_span.ok and server_span.ok
        # The server span closes before the client learns the result.
        assert server_span.end <= client_span.end

    def test_transmit_spans_nest_under_the_call(self):
        _, scheduler, _, client = _world()
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            client.call("server", "echo", "ping", [1]).wait()
            tracer = obs.get_tracer()
            transmits = tracer.find("net.transmit")
            assert len(transmits) == 2  # request + response
            (client_span,) = tracer.find("rpc.client")
            (server_span,) = tracer.find("rpc.server")
            assert transmits[0].trace_id == client_span.trace_id
            parents = {t.parent_id for t in transmits}
        assert parents == {client_span.span_id, server_span.span_id}

    def test_spans_serialize_to_json(self):
        _, scheduler, _, client = _world()
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            client.call("server", "echo", "ping", [1]).wait()
            dumps = [root.to_dict() for root in obs.get_tracer().roots()]
        assert json.loads(json.dumps(dumps)) == dumps


class TestErrorTagging:
    def test_remote_exception_tags_both_sides(self):
        _, scheduler, _, client = _world()
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            pending = client.call("server", "echo", "boom")
            pending.wait_done()
            tracer = obs.get_tracer()
            (client_span,) = tracer.find("rpc.client")
            (server_span,) = tracer.find("rpc.server")
        assert client_span.attributes["error"] == "RemoteError"
        assert server_span.attributes["error"] == "ValueError"

    def test_wait_timeout_tags_without_finishing(self):
        net, scheduler, _, client = _world()
        net.link("client", "server").up = False
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            pending = client.call("server", "echo", "ping", [1])
            # The link is down: the call failed fast with NetworkError.
            assert pending.done
            (client_span,) = obs.get_tracer().roots()
        assert client_span.attributes["error"] == "NetworkError"

    def test_timeout_on_a_silent_peer(self):
        net, scheduler, _, client = _world()
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            pending = client.call("server", "echo", "ping", [1])
            # Kill the link after the send so no response can return.
            net.link("client", "server").up = False
            with pytest.raises((RpcTimeoutError, Exception)):
                pending.wait(timeout=0.5)
            span = pending.span
        assert span is not None
        assert not span.ok

    def test_retries_exhausted_tags_the_call_span(self):
        _, scheduler, _, client = _world(loss_rate=1.0)
        with obs.scoped(enabled=True, dist=True):
            obs.set_tracer_clock(scheduler)
            pending = client.call_with_retry(
                "server", "echo", "ping", [1], timeout=0.1, retries=2
            )
            pending.wait_done()
            tracer = obs.get_tracer()
            (call_span,) = tracer.find("rpc.client")
            attempts = tracer.find("rpc.attempt")
            log = obs.get_event_log()
            retry_events = log.find("rpc.retry")
            exhausted = log.find("rpc.exhausted")
        assert call_span.attributes["error"] == "RetriesExhausted"
        assert len(attempts) == 3  # initial + 2 retries
        assert [a.attributes["attempt"] for a in attempts] == [1, 2, 3]
        assert all(a.parent_id == call_span.span_id for a in attempts)
        assert len(retry_events) == 2
        assert len(exhausted) == 1
