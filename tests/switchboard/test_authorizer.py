"""Authorizer / AuthorizationMonitor tests."""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.errors import HandshakeError
from repro.switchboard.authorizer import (
    AcceptAllAuthorizer,
    AuthorizationSuite,
    RoleAuthorizer,
)


class TestAcceptAll:
    def test_accepts_anyone(self, engine):
        monitor = AcceptAllAuthorizer().authorize(engine.public_identity("X"), [])
        assert monitor.valid
        assert monitor.proof is None

    def test_never_fires(self, engine):
        monitor = AcceptAllAuthorizer().authorize(engine.public_identity("X"), [])
        fired = []
        monitor.on_change(fired.append)
        assert fired == []


class TestRoleAuthorizer:
    def test_authorizes_with_repository_chain(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        authorizer = RoleAuthorizer(engine, "Comp.NY.Member")
        monitor = authorizer.authorize(engine.public_identity("Alice"), [])
        assert monitor.valid
        assert monitor.proof is not None

    def test_presented_credentials_merge_with_repository(self, engine):
        # Leaf credential only presented, mapping lives in the repository.
        engine.delegate("Comp.NY", "Comp.SD.Member", "Comp.NY.Member")
        leaf = engine.delegate("Comp.SD", "Bob", "Comp.SD.Member", publish=False)
        authorizer = RoleAuthorizer(engine, "Comp.NY.Member")
        monitor = authorizer.authorize(engine.public_identity("Bob"), [leaf])
        assert monitor.valid

    def test_rejects_unprovable_partner(self, engine):
        authorizer = RoleAuthorizer(engine, "Comp.NY.Member")
        with pytest.raises(HandshakeError):
            authorizer.authorize(engine.public_identity("Nobody"), [])

    def test_monitor_fires_on_revocation(self, engine):
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        authorizer = RoleAuthorizer(engine, "Comp.NY.Member")
        monitor = authorizer.authorize(engine.public_identity("Alice"), [])
        fired = []
        monitor.on_change(fired.append)
        engine.revoke(cred)
        assert fired == [cred.credential_id]
        assert not monitor.valid

    def test_late_listener_informed(self, engine):
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        monitor = RoleAuthorizer(engine, "Comp.NY.Member").authorize(
            engine.public_identity("Alice"), []
        )
        engine.revoke(cred)
        fired = []
        monitor.on_change(fired.append)
        assert fired == [cred.credential_id]

    def test_required_attributes(self, engine):
        from repro.drbac.model import AttrSet

        engine.delegate(
            "Mail", "Worker", "Mail.Node", attributes={"Secure": AttrSet([False])}
        )
        authorizer = RoleAuthorizer(
            engine, "Mail.Node", required_attributes={"Secure": AttrSet([True])}
        )
        with pytest.raises(HandshakeError):
            authorizer.authorize(engine.public_identity("Worker"), [])


class TestSuite:
    def test_default_authorizer_accepts_all(self, engine):
        suite = AuthorizationSuite(identity=engine.identity("S"))
        assert isinstance(suite.authorizer, AcceptAllAuthorizer)
