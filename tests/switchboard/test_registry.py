"""Naming registry tests."""

from __future__ import annotations

import pytest

from repro.errors import SwitchboardError
from repro.switchboard.registry import NamingRegistry, ServiceAddress


class TestNaming:
    def test_bind_lookup(self):
        registry = NamingRegistry()
        address = ServiceAddress(node="n1", service="svc", target="obj")
        registry.bind("mail", address)
        assert registry.lookup("mail") == address

    def test_missing_binding(self):
        with pytest.raises(SwitchboardError):
            NamingRegistry().lookup("ghost")

    def test_rebind_replaces(self):
        registry = NamingRegistry()
        registry.bind("x", ServiceAddress("n1", "s", "t"))
        registry.bind("x", ServiceAddress("n2", "s", "t"))
        assert registry.lookup("x").node == "n2"

    def test_unbind(self):
        registry = NamingRegistry()
        registry.bind("x", ServiceAddress("n1", "s", "t"))
        registry.unbind("x")
        assert "x" not in registry

    def test_names_sorted(self):
        registry = NamingRegistry()
        registry.bind("b", ServiceAddress("n", "s", "t"))
        registry.bind("a", ServiceAddress("n", "s", "t"))
        assert registry.names() == ["a", "b"]
