"""Failure injection: channels torn down with RPCs still in flight.

A pending call whose channel dies must not hang its caller or fail with
an untyped error: every teardown path — local close, peer-initiated
close, and liveness-declared death — aborts in-flight calls with
:class:`repro.errors.RpcAbortedError` and counts each one on the
``switchboard.rpc.failures`` counter.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.crypto import KeyStore
from repro.drbac import DrbacEngine
from repro.errors import RpcAbortedError, SwitchboardError
from repro.net import EventScheduler, Network, Transport
from repro.obs import names as metric_names
from repro.switchboard import (
    AcceptAllAuthorizer,
    AuthorizationSuite,
    ChannelState,
    SwitchboardEndpoint,
)


class SlowService:
    def work(self):
        return "done"


@pytest.fixture()
def world(key_store: KeyStore):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("cnode")
    net.add_node("snode")
    net.add_link("cnode", "snode", latency_s=0.005, secure=False)
    transport = Transport(net, EventScheduler())
    directory = lambda name: (
        key_store.public(name) if name in key_store else None
    )
    client_ep = SwitchboardEndpoint(transport, "cnode", directory=directory)
    server_ep = SwitchboardEndpoint(transport, "snode", directory=directory)
    server_ep.export("svc", SlowService())
    server_ep.listen("svc", _suite(engine, "Service"))
    return engine, transport, client_ep, server_ep


def _suite(engine, name, credentials=()):
    return AuthorizationSuite(
        identity=engine.identity(name),
        credentials=list(credentials),
        authorizer=AcceptAllAuthorizer(),
    )


def _connect(engine, client_ep):
    return client_ep.connect("snode", "svc", _suite(engine, "Client")).wait()


class TestTeardownMidRpc:
    def test_local_close_aborts_pending_call(self, world):
        engine, transport, client_ep, server_ep = world
        with obs.scoped() as registry:
            conn = _connect(engine, client_ep)
            pending = conn.call("svc", "work")
            assert not pending.done
            conn.close()  # response can never arrive now
            assert pending.done
            with pytest.raises(RpcAbortedError, match="closed before call 'work'"):
                pending.value
            assert registry.counter_value(metric_names.SWB_RPC_FAILURES) == 1
            assert registry.counter_value(metric_names.SWB_CHANNELS_CLOSED) == 1

    def test_peer_close_aborts_pending_call(self, world):
        engine, transport, client_ep, server_ep = world
        with obs.scoped() as registry:
            conn = _connect(engine, client_ep)
            pending = conn.call("svc", "work")
            # The peer tears down before serving the in-flight request.
            server_ep.connections()[0].close()
            with pytest.raises(RpcAbortedError, match="closed"):
                pending.wait()
            assert conn.state is ChannelState.CLOSED
            assert registry.counter_value(metric_names.SWB_RPC_FAILURES) == 1

    def test_dead_channel_aborts_pending_call(self, world):
        engine, transport, client_ep, server_ep = world
        with obs.scoped() as registry:
            conn = _connect(engine, client_ep)
            conn.start_heartbeats(1.0, max_missed=2)
            pending = conn.call("svc", "work")
            # Crash the peer: its connection vanishes without a close
            # frame, so calls and pings go unanswered while the link
            # itself stays up.
            server_conn = server_ep.connections()[0]
            server_ep._forget(server_conn.conn_id)
            transport.scheduler.run_until(5.0)
            assert conn.state is ChannelState.DEAD
            assert pending.done
            with pytest.raises(RpcAbortedError, match="dead before call 'work'"):
                pending.value
            assert registry.counter_value(metric_names.SWB_CHANNELS_DEAD) == 1
            assert registry.counter_value(metric_names.SWB_RPC_FAILURES) == 1
            assert registry.gauge(metric_names.SWB_CHANNELS_LIVE).value == 1  # server end leaked by the crash

    def test_every_pending_call_aborted(self, world):
        engine, transport, client_ep, server_ep = world
        with obs.scoped() as registry:
            conn = _connect(engine, client_ep)
            calls = [conn.call("svc", "work") for _ in range(3)]
            conn.close()
            for pending in calls:
                with pytest.raises(RpcAbortedError):
                    pending.value
            assert registry.counter_value(metric_names.SWB_RPC_FAILURES) == 3

    def test_abort_error_is_typed(self, world):
        engine, transport, client_ep, server_ep = world
        conn = _connect(engine, client_ep)
        pending = conn.call("svc", "work")
        conn.close()
        with pytest.raises(SwitchboardError):  # catchable as the family error
            pending.value
        assert issubclass(RpcAbortedError, SwitchboardError)

    def test_completed_call_unaffected_by_later_close(self, world):
        engine, transport, client_ep, server_ep = world
        conn = _connect(engine, client_ep)
        pending = conn.call("svc", "work")
        assert pending.wait() == "done"
        conn.close()
        assert pending.value == "done"  # result survives the teardown
