"""Channel expiry-watch tests: time-limited credentials on live channels."""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.errors import ChannelClosedError
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    ChannelState,
    RoleAuthorizer,
    SwitchboardEndpoint,
)


class Clockwork:
    def tick(self):
        return "tock"


@pytest.fixture()
def world(key_store):
    net = Network()
    net.add_node("c")
    net.add_node("s")
    net.add_link("c", "s", latency_s=0.001)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    # The engine shares the scheduler as its clock so expiry follows
    # virtual time.
    engine = DrbacEngine(key_store=key_store, clock=scheduler)
    client_ep = SwitchboardEndpoint(transport, "c")
    server_ep = SwitchboardEndpoint(transport, "s")
    server_ep.export("clock", Clockwork())
    return engine, scheduler, transport, client_ep, server_ep


def _connect(engine, client_ep, server_ep, *, expires_at):
    cred = engine.delegate(
        "Comp.NY", "Short", "Comp.NY.Member", expires_at=expires_at
    )
    server_ep.listen(
        "clock",
        AuthorizationSuite(
            identity=engine.identity("ClockSvc"),
            authorizer=RoleAuthorizer(engine, "Comp.NY.Member"),
        ),
    )
    pending = client_ep.connect(
        "s", "clock",
        AuthorizationSuite(identity=engine.identity("Short"), credentials=[cred]),
    )
    return pending.wait()


class TestExpiryWatch:
    def test_channel_revokes_when_credential_lapses(self, world):
        engine, scheduler, transport, client_ep, server_ep = world
        connection = _connect(engine, client_ep, server_ep, expires_at=10.0)
        server_conn = server_ep.connections()[0]
        server_conn.watch_expiry(1.0)
        assert connection.call_sync("clock", "tick") == "tock"
        scheduler.run_until(15.0)
        assert server_conn.state is ChannelState.REVOKED
        assert connection.state is ChannelState.REVOKED

    def test_channel_survives_until_expiry(self, world):
        engine, scheduler, transport, client_ep, server_ep = world
        connection = _connect(engine, client_ep, server_ep, expires_at=100.0)
        server_conn = server_ep.connections()[0]
        server_conn.watch_expiry(1.0)
        scheduler.run_until(50.0)
        assert server_conn.state is ChannelState.OPEN
        assert connection.call_sync("clock", "tick") == "tock"

    def test_calls_blocked_after_lapse(self, world):
        engine, scheduler, transport, client_ep, server_ep = world
        connection = _connect(engine, client_ep, server_ep, expires_at=5.0)
        server_ep.connections()[0].watch_expiry(1.0)
        scheduler.run_until(10.0)
        with pytest.raises(ChannelClosedError):
            connection.call("clock", "tick")

    def test_revalidation_after_lapse(self, world):
        engine, scheduler, transport, client_ep, server_ep = world
        connection = _connect(engine, client_ep, server_ep, expires_at=5.0)
        server_ep.connections()[0].watch_expiry(1.0)
        scheduler.run_until(10.0)
        fresh = engine.delegate("Comp.NY", "Short", "Comp.NY.Member")
        assert connection.revalidate([fresh]).wait() is True
        assert connection.call_sync("clock", "tick") == "tock"

    def test_watch_self_cancels_after_revocation(self, world):
        engine, scheduler, transport, client_ep, server_ep = world
        connection = _connect(engine, client_ep, server_ep, expires_at=5.0)
        server_conn = server_ep.connections()[0]
        server_conn.watch_expiry(1.0)
        scheduler.run_until(10.0)
        # After the flip, the periodic check unregisters itself: the
        # event queue drains instead of ticking forever.
        scheduler.run()
        assert server_conn.state is ChannelState.REVOKED
