"""Self-check entry-point tests (``python -m repro``)."""

from __future__ import annotations

import subprocess
import sys

from repro.__main__ import run_selfcheck


class TestSelfCheck:
    def test_all_checks_pass_in_process(self, capsys):
        assert run_selfcheck(key_bits=512) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "FAIL" not in out.replace("FAILED", "")

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr[-1500:]
        assert "ALL CHECKS PASSED" in result.stdout
