"""Self-check entry-point tests (``python -m repro`` / ``repro stats``),
plus the metric-name self-check that keeps instrumentation and the
:mod:`repro.obs.names` catalogue in lock-step."""

from __future__ import annotations

import json
import subprocess
import sys

from repro import obs
from repro.__main__ import exercise_scenario, run_selfcheck, run_stats
from repro.obs import names as metric_names
from repro.obs.names import CATALOGUE, catalogue_by_name


class TestSelfCheck:
    def test_all_checks_pass_in_process(self, capsys):
        assert run_selfcheck(key_bits=512) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "FAIL" not in out.replace("FAILED", "")

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr[-1500:]
        assert "ALL CHECKS PASSED" in result.stdout


class TestMetricCatalogue:
    def test_catalogue_has_no_duplicates(self):
        by_name = catalogue_by_name()  # raises on duplicate entries
        assert len(by_name) == len(CATALOGUE)

    def test_catalogue_kinds_are_valid(self):
        assert {spec.kind for spec in CATALOGUE} <= {"counter", "gauge", "histogram"}

    def test_every_name_constant_is_catalogued(self):
        by_name = catalogue_by_name()
        constants = {
            value
            for key, value in vars(metric_names).items()
            if key.isupper() and isinstance(value, str)
        }
        assert constants == set(by_name)

    def test_every_instrumented_metric_is_registered_exactly_once(self):
        """Drive every instrumented subsystem, then check each live metric
        against the catalogue: known name, matching kind, no strays.  A
        typo'd name in any instrumentation site fails here instead of
        silently splitting a counter in two."""
        by_name = catalogue_by_name()
        with obs.scoped() as registry:
            exercise_scenario(key_bits=512)
            live_kinds = registry.kinds()
        assert live_kinds, "exercise_scenario recorded no metrics"
        strays = set(live_kinds) - set(by_name)
        assert not strays, f"instrumented metrics missing from the catalogue: {strays}"
        mismatched = {
            name: (kind, by_name[name].kind)
            for name, kind in live_kinds.items()
            if by_name[name].kind != kind
        }
        assert not mismatched, f"metric kind conflicts: {mismatched}"

    def test_flow_metrics_are_catalogued_with_matching_kinds(self):
        """Drive the overload-protection stack — admission, shedding,
        limiter adaptation, breaker trips — and check every ``flow.*``
        metric it emits against the catalogue.  An uncatalogued flow
        metric name fails here, same as any other subsystem."""
        from repro.flow import AimdLimiter, CircuitBreaker, FlowConfig, FlowController
        from repro.net.events import EventScheduler

        by_name = catalogue_by_name()
        with obs.scoped() as registry:
            scheduler = EventScheduler()
            controller = FlowController(
                FlowConfig(bucket_rate=1.0, bucket_burst=1.0, max_backlog=1),
                scheduler,
                name="test",
            )
            for n in range(4):
                controller.submit("p", "BlobStore", "put_blob", lambda: None)
            limiter = AimdLimiter(scheduler, initial=4)
            limiter.observe(0.01, ok=False)
            for _ in range(4):
                limiter.observe(0.01)
            breaker = CircuitBreaker(scheduler, failure_threshold=1)
            breaker.on_failure()
            live_kinds = registry.kinds()
        flow_metrics = {
            name: kind for name, kind in live_kinds.items()
            if name.startswith("flow.")
        }
        assert flow_metrics, "the flow stack recorded no flow.* metrics"
        strays = set(flow_metrics) - set(by_name)
        assert not strays, f"flow metrics missing from the catalogue: {strays}"
        mismatched = {
            name: (kind, by_name[name].kind)
            for name, kind in flow_metrics.items()
            if by_name[name].kind != kind
        }
        assert not mismatched, f"flow metric kind conflicts: {mismatched}"

    def test_durable_metrics_are_catalogued_with_matching_kinds(self):
        """Drive the durable layer — WAL appends, compaction, a torn
        tail, crash recovery with catch-up — and check every
        ``durable.*``/``recover.*`` metric against the catalogue."""
        from repro.clock import ManualClock
        from repro.crypto import KeyStore
        from repro.drbac import CachedAuthorizer, DrbacEngine
        from repro.durable import DurableNode, UpdateFeed

        by_name = catalogue_by_name()
        with obs.scoped() as registry:
            engine = DrbacEngine(key_store=KeyStore(key_bits=512), clock=ManualClock())
            cache = CachedAuthorizer(engine)
            feed = UpdateFeed()
            node = DurableNode(engine=engine, cache=cache, feed=feed, compact_every=2)
            creds = [
                engine.delegate("OrgA", f"user{i}", "OrgA.Reader", publish=False)
                for i in range(4)
            ]
            for cred in creds:
                feed.publish(cred)
            node.crash()
            feed.revoke(creds[0])
            node.restart(torn_tail_bytes=1)
            live_kinds = registry.kinds()
        durable_metrics = {
            name: kind for name, kind in live_kinds.items()
            if name.startswith(("durable.", "recover."))
        }
        assert durable_metrics, "the durable layer recorded no metrics"
        strays = set(durable_metrics) - set(by_name)
        assert not strays, f"durable metrics missing from the catalogue: {strays}"
        mismatched = {
            name: (kind, by_name[name].kind)
            for name, kind in durable_metrics.items()
            if by_name[name].kind != kind
        }
        assert not mismatched, f"durable metric kind conflicts: {mismatched}"

    def test_scenario_lights_up_every_subsystem(self):
        """The acceptance criterion behind ``repro stats``: the mail
        scenario produces non-zero proof-search, channel, and deployment
        metrics (plus cache and coherence traffic)."""
        with obs.scoped() as registry:
            exercise_scenario(key_bits=512)
            for counter in (
                metric_names.PROOF_SEARCHES,
                metric_names.PROOF_FOUND,
                metric_names.AUTHORIZE_GRANTED,
                metric_names.CACHE_HITS,
                metric_names.SWB_HANDSHAKES_ACCEPTED,
                metric_names.SWB_CHANNELS_OPENED,
                metric_names.SWB_RPC_CALLS,
                metric_names.PLAN_SUCCESS,
                metric_names.DEPLOY_DEPLOYMENTS,
                metric_names.DEPLOY_INSTANCES,
                metric_names.COHERENCE_ACQUIRES,
            ):
                assert registry.counter_value(counter) > 0, counter
            assert registry.histogram(metric_names.SWB_RPC_LATENCY).count > 0


class TestStatsCommand:
    def test_run_stats_in_process(self, capsys):
        assert run_stats([]) == 0
        out = capsys.readouterr().out
        assert "== counters ==" in out
        assert metric_names.PROOF_SEARCHES in out
        assert metric_names.DEPLOY_DEPLOYMENTS in out

    def test_run_stats_json(self, capsys):
        assert run_stats(["--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"][metric_names.PROOF_SEARCHES] > 0
        assert snap["counters"][metric_names.SWB_RPC_CALLS] > 0
        assert snap["histograms"][metric_names.SWB_RPC_LATENCY]["count"] > 0

    def test_stats_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "--json"],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr[-1500:]
        snap = json.loads(result.stdout)
        assert snap["counters"][metric_names.DEPLOY_INSTANCES] >= 1
