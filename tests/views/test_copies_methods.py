"""<Copies_Methods> tests: copying existing methods outside interfaces."""

from __future__ import annotations

import pytest

from repro.errors import ViewGenerationError, ViewSpecError
from repro.views import InterfaceRegistry, Vig, ViewRuntime, ViewSpec


class Journal:
    def __init__(self):
        self.entries = []

    def record(self, line):
        self.entries.append(line)
        return len(self.entries)

    def latest(self):
        return self.entries[-1] if self.entries else None

    def purge(self):
        self.entries = []


XML = """
<View name="RecorderView">
  <Represents name="Journal"/>
  <Copies_Methods>
    <MName>record</MName>
    <MName>latest</MName>
  </Copies_Methods>
</View>
"""


class TestSpecParsing:
    def test_copies_parsed(self):
        spec = ViewSpec.from_xml(XML)
        assert spec.copied_methods == ("record", "latest")

    def test_roundtrip(self):
        spec = ViewSpec.from_xml(XML)
        assert ViewSpec.from_xml(spec.to_xml()).copied_methods == ("record", "latest")

    def test_bad_element(self):
        with pytest.raises(ViewSpecError, match="MName"):
            ViewSpec.from_xml(
                '<View name="V"><Represents name="X"/>'
                "<Copies_Methods><Bogus/></Copies_Methods></View>"
            )

    def test_bad_identifier(self):
        with pytest.raises(ViewSpecError, match="identifier"):
            ViewSpec.from_xml(
                '<View name="V"><Represents name="X"/>'
                "<Copies_Methods><MName>not a name</MName></Copies_Methods></View>"
            )


class TestGeneration:
    def test_copied_methods_work_with_coherence(self):
        vig = Vig(InterfaceRegistry())
        view_cls = vig.generate(ViewSpec.from_xml(XML), Journal)
        origin = Journal()
        view = view_cls(ViewRuntime(local_objects={"Journal": origin}))
        assert view.record("first") == 1
        assert origin.entries == ["first"]  # coherence pushed
        assert view.latest() == "first"

    def test_uncopied_methods_absent(self):
        vig = Vig(InterfaceRegistry())
        view_cls = vig.generate(ViewSpec.from_xml(XML), Journal)
        assert not hasattr(view_cls, "purge")

    def test_unknown_copied_method_rejected(self):
        vig = Vig(InterfaceRegistry())
        spec = ViewSpec(
            name="Bad", represents="Journal", copied_methods=("vanish",)
        )
        with pytest.raises(ViewGenerationError, match="not defined"):
            vig.generate(spec, Journal)
