"""Cache-coherence machinery tests."""

from __future__ import annotations

import pytest

from repro.errors import ViewError
from repro.views.coherence import (
    CacheManager,
    CoherencePolicy,
    ImageService,
    LocalOrigin,
)


class FakeView:
    """Minimal view exposing the four image methods."""

    def __init__(self, origin):
        self.state = {"x": 0}
        self._origin = origin
        self.pulls = 0
        self.pushes = 0

    def extractImageFromView(self):
        return dict(self.state)

    def mergeImageIntoView(self, image):
        self.pulls += 1
        self.state.update(image)

    def extractImageFromObj(self):
        return self._origin.extract_image(["x"])

    def mergeImageIntoObj(self, image):
        self.pushes += 1
        self._origin.merge_image(image)


class Origin:
    def __init__(self):
        self.x = 10


@pytest.fixture()
def pair():
    origin = Origin()
    view = FakeView(LocalOrigin(origin))
    return origin, view


class TestLocalOrigin:
    def test_extract(self, pair):
        origin, view = pair
        assert LocalOrigin(origin).extract_image(["x"]) == {"x": 10}

    def test_merge(self, pair):
        origin, _ = pair
        LocalOrigin(origin).merge_image({"x": 99})
        assert origin.x == 99

    def test_unknown_field(self, pair):
        origin, _ = pair
        with pytest.raises(ViewError):
            LocalOrigin(origin).extract_image(["ghost"])


class TestImageService:
    def test_round_trip(self):
        origin = Origin()
        service = ImageService(origin)
        assert service.extract_image(["x"]) == {"x": 10}
        service.merge_image({"x": 5})
        assert origin.x == 5


class TestCacheManagerPolicies:
    def test_on_demand_pulls_and_pushes(self, pair):
        origin, view = pair
        manager = CacheManager(view, policy=CoherencePolicy.ON_DEMAND)
        manager.acquire_image()
        assert view.state["x"] == 10  # pulled
        view.state["x"] = 77
        manager.release_image()
        assert origin.x == 77  # pushed

    def test_write_through_skips_pull(self, pair):
        origin, view = pair
        manager = CacheManager(view, policy=CoherencePolicy.WRITE_THROUGH)
        manager.acquire_image()
        assert view.state["x"] == 0  # no pull
        view.state["x"] = 3
        manager.release_image()
        assert origin.x == 3

    def test_manual_does_nothing(self, pair):
        origin, view = pair
        manager = CacheManager(view, policy=CoherencePolicy.MANUAL)
        manager.acquire_image()
        view.state["x"] = 5
        manager.release_image()
        assert origin.x == 10
        assert view.pulls == 0 and view.pushes == 0


class TestReentrancy:
    def test_nested_acquire_synchronizes_once(self, pair):
        _, view = pair
        manager = CacheManager(view, policy=CoherencePolicy.ON_DEMAND)
        manager.acquire_image()
        manager.acquire_image()  # nested method call
        manager.release_image()
        manager.release_image()
        assert view.pulls == 1
        assert view.pushes == 1
        assert manager.stats.acquires == 1
        assert manager.stats.releases == 1

    def test_unbalanced_release_raises(self, pair):
        _, view = pair
        manager = CacheManager(view)
        with pytest.raises(ViewError):
            manager.release_image()


class TestStats:
    def test_counters(self, pair):
        _, view = pair
        manager = CacheManager(view, policy=CoherencePolicy.ON_DEMAND)
        for _ in range(3):
            manager.acquire_image()
            manager.release_image()
        assert manager.stats.images_pulled == 3
        assert manager.stats.images_pushed == 3
