"""Remote stub and ViewRuntime tests over the simulated network."""

from __future__ import annotations

import pytest

from repro.errors import ViewError
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    NamingRegistry,
    PlainRpcEndpoint,
    ServiceAddress,
    SwitchboardEndpoint,
)
from repro.views.coherence import ImageService, LocalOrigin
from repro.views.proxies import IMAGE_BINDING_PREFIX, RmiStub, ViewRuntime


class Directory:
    def __init__(self):
        self.phone = "555"

    def getPhone(self, name):
        return f"{self.phone}:{name}"


@pytest.fixture()
def world(key_store):
    net = Network()
    net.add_node("local")
    net.add_node("remote")
    net.add_link("local", "remote", latency_s=0.001)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    rpc_local = PlainRpcEndpoint(transport, "local")
    rpc_remote = PlainRpcEndpoint(transport, "remote")
    swb_local = SwitchboardEndpoint(transport, "local")
    swb_remote = SwitchboardEndpoint(transport, "remote")
    service = Directory()
    rpc_remote.exporter.export("dir", service)
    swb_remote.export("dir", service)
    swb_remote.listen(
        "dir", AuthorizationSuite(identity=key_store.identity("DirService"))
    )
    return transport, rpc_local, swb_local, service, key_store


class TestRmiStub:
    def test_forwards_calls(self, world):
        transport, rpc_local, _, _, _ = world
        stub = RmiStub(rpc_local, ServiceAddress("remote", "rmi", "dir"))
        assert stub.getPhone("bob") == "555:bob"

    def test_private_access_refused(self, world):
        transport, rpc_local, _, _, _ = world
        stub = RmiStub(rpc_local, ServiceAddress("remote", "rmi", "dir"))
        with pytest.raises(AttributeError):
            stub._secret


class TestViewRuntime:
    def test_local_object(self):
        runtime = ViewRuntime(local_objects={"X": 42})
        assert runtime.local_object("X") == 42
        with pytest.raises(ViewError):
            runtime.local_object("Y")

    def test_rmi_stub_resolution(self, world):
        transport, rpc_local, _, _, _ = world
        naming = NamingRegistry()
        naming.bind("dir", ServiceAddress("remote", "rmi", "dir"))
        runtime = ViewRuntime(naming=naming, rpc=rpc_local)
        assert runtime.rmi_stub("dir").getPhone("x") == "555:x"

    def test_rmi_without_endpoint_raises(self):
        naming = NamingRegistry()
        naming.bind("dir", ServiceAddress("remote", "rmi", "dir"))
        with pytest.raises(ViewError, match="no RPC endpoint"):
            ViewRuntime(naming=naming).rmi_stub("dir")

    def test_switchboard_stub_and_channel_reuse(self, world):
        transport, _, swb_local, _, key_store = world
        naming = NamingRegistry()
        naming.bind("dir", ServiceAddress("remote", "dir", "dir"))
        runtime = ViewRuntime(
            naming=naming,
            switchboard=swb_local,
            suite=AuthorizationSuite(identity=key_store.identity("ClientX")),
        )
        stub1 = runtime.switchboard_stub("dir")
        assert stub1.getPhone("a") == "555:a"
        stub2 = runtime.switchboard_stub("dir")
        assert stub1.connection is stub2.connection  # single sign-on reuse

    def test_switchboard_without_suite_raises(self, world):
        transport, _, swb_local, _, _ = world
        naming = NamingRegistry()
        naming.bind("dir", ServiceAddress("remote", "dir", "dir"))
        with pytest.raises(ViewError, match="switchboard"):
            ViewRuntime(naming=naming, switchboard=swb_local).switchboard_stub("dir")

    def test_origin_port_prefers_local(self, world):
        origin = Directory()
        runtime = ViewRuntime(local_objects={"Directory": origin})
        port = runtime.origin_port("Directory")
        assert isinstance(port, LocalOrigin)
        assert port.extract_image(["phone"]) == {"phone": "555"}

    def test_origin_port_via_rmi_binding(self, world):
        transport, rpc_local, _, service, _ = world
        remote_rpc = PlainRpcEndpoint(transport, "remote") if False else None
        # Export an image service for the remote original.
        image = ImageService(service)
        # Reuse the already-bound remote rpc endpoint's exporter.
        transport.network.node("remote")  # sanity
        # bind through a new endpoint is not possible (service taken); use existing:
        # the world fixture's rpc_remote isn't returned, so export via a fresh name
        # on the switchboard-side exporter instead is overkill — just test lookup path:
        naming = NamingRegistry()
        naming.bind(
            IMAGE_BINDING_PREFIX + "Directory",
            ServiceAddress("remote", "rmi", "dir#image"),
        )
        runtime = ViewRuntime(naming=naming, rpc=rpc_local)
        port = runtime.origin_port("Directory")
        assert port is not None  # resolved through the naming registry

    def test_origin_port_unreachable(self):
        assert ViewRuntime().origin_port("Ghost") is None

    def test_close_shuts_channels(self, world):
        transport, _, swb_local, _, key_store = world
        naming = NamingRegistry()
        naming.bind("dir", ServiceAddress("remote", "dir", "dir"))
        runtime = ViewRuntime(
            naming=naming,
            switchboard=swb_local,
            suite=AuthorizationSuite(identity=key_store.identity("ClientY")),
        )
        stub = runtime.switchboard_stub("dir")
        connection = stub.connection
        runtime.close()
        transport.scheduler.run()
        assert connection.state.value == "closed"
