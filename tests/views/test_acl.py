"""Role -> view access policy tests (Table 4)."""

from __future__ import annotations

import pytest

from repro.drbac.model import Role
from repro.views.acl import ViewAccessPolicy


@pytest.fixture()
def policy():
    return (
        ViewAccessPolicy("MailClient")
        .allow("Comp.NY.Member", "ViewMailClient_Member")
        .allow("Comp.NY.Partner", "ViewMailClient_Partner")
        .allow("others", "ViewMailClient_Anonymous")
    )


class TestResolution:
    def test_member_gets_member_view(self, engine, policy):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        decision = policy.resolve("Alice", engine)
        assert decision.view_name == "ViewMailClient_Member"
        assert decision.proof is not None

    def test_cross_domain_member(self, engine, policy):
        engine.delegate("Comp.NY", "Comp.SD.Member", "Comp.NY.Member")
        engine.delegate("Comp.SD", "Bob", "Comp.SD.Member")
        decision = policy.resolve("Bob", engine)
        assert decision.view_name == "ViewMailClient_Member"
        assert len(decision.proof.chain) == 2

    def test_partner_via_third_party(self, engine, policy):
        engine.identity("Comp.SD")
        engine.delegate("Comp.NY", "Comp.SD", "Comp.NY.Partner", assignment=True)
        engine.delegate("Comp.SD", "Inc.SE.Member", "Comp.NY.Partner")
        engine.delegate("Inc.SE", "Charlie", "Inc.SE.Member")
        decision = policy.resolve("Charlie", engine)
        assert decision.view_name == "ViewMailClient_Partner"

    def test_anonymous_default(self, engine, policy):
        decision = policy.resolve("Stranger", engine)
        assert decision.view_name == "ViewMailClient_Anonymous"
        assert decision.proof is None
        assert decision.rule.is_default

    def test_rule_order_first_provable_wins(self, engine, policy):
        # Someone who is both Member and Partner gets the Member view
        # because that rule comes first.
        engine.delegate("Comp.NY", "Dora", "Comp.NY.Member")
        engine.delegate("Comp.NY", "Dora", "Comp.NY.Partner")
        assert policy.resolve("Dora", engine).view_name == "ViewMailClient_Member"

    def test_no_default_returns_none(self, engine):
        strict = ViewAccessPolicy("X").allow("Comp.NY.Member", "V")
        assert strict.resolve("Stranger", engine) is None

    def test_presented_credentials_merge_with_repository(self, engine, policy):
        engine.delegate("Comp.NY", "Comp.SD.Member", "Comp.NY.Member")
        leaf = engine.delegate("Comp.SD", "Eve", "Comp.SD.Member", publish=False)
        decision = policy.resolve("Eve", engine, credentials=[leaf])
        assert decision.view_name == "ViewMailClient_Member"


class TestConstruction:
    def test_rules_after_default_rejected(self):
        policy = ViewAccessPolicy("X").allow("others", "Anon")
        with pytest.raises(ValueError):
            policy.allow("Comp.NY.Member", "V")

    def test_role_objects_accepted(self):
        policy = ViewAccessPolicy("X").allow(Role("A", "R"), "V")
        assert policy.rules()[0].role == Role("A", "R")
