"""VIG tests: generation, restriction, customization, validation errors,
coherence wrapping, caching, and the mirrored inheritance chain."""

from __future__ import annotations

import pytest

from repro.errors import ViewGenerationError
from repro.views import (
    CoherencePolicy,
    InterfaceDef,
    InterfaceRegistry,
    MethodSig,
    Vig,
    ViewRuntime,
    ViewSpec,
)
from repro.views.spec import (
    InterfaceMode,
    InterfaceRestriction,
    FieldSpec,
    MethodSpec,
)
from repro.views.vig import represented_fields, represented_methods, self_attribute_refs


class Counter:
    """Simple represented class with a private helper and two fields."""

    def __init__(self):
        self.count = 0
        self.log = []

    def increment(self):
        self.count = self.count + 1
        self._record("inc")
        return self.count

    def current(self):
        return self.count

    def reset(self):
        self.count = 0
        return True

    def _record(self, what):
        self.log.append(what)


CounterI = InterfaceDef(
    "CounterI",
    (MethodSig("increment", ()), MethodSig("current", ())),
)
ResetI = InterfaceDef("ResetI", (MethodSig("reset", ()),))


@pytest.fixture()
def vig():
    registry = InterfaceRegistry()
    registry.register(CounterI)
    registry.register(ResetI)
    return Vig(registry)


def local_spec(name="CounterView", interfaces=("CounterI",), **kwargs):
    return ViewSpec(
        name=name,
        represents="Counter",
        interfaces=tuple(
            InterfaceRestriction(n, InterfaceMode.LOCAL) for n in interfaces
        ),
        **kwargs,
    )


class TestIntrospection:
    def test_self_attribute_refs(self):
        refs = self_attribute_refs(Counter.increment)
        assert {"count", "_record"} <= refs

    def test_represented_fields(self):
        assert {"count", "log"} <= represented_fields(Counter)

    def test_represented_methods(self):
        methods = represented_methods(Counter)
        assert {"increment", "current", "reset", "_record"} <= set(methods)


class TestGeneration:
    def test_local_methods_copied_and_work(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        origin = Counter()
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        assert view.increment() == 1
        assert view.current() == 1

    def test_restriction_hides_other_methods(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        view = view_cls(ViewRuntime(local_objects={"Counter": Counter()}))
        assert not hasattr(view, "reset")

    def test_fields_auto_replicated(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        assert "count" in view_cls.__replicated_fields__
        assert "log" in view_cls.__replicated_fields__  # via _record helper

    def test_helper_methods_copied(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        assert hasattr(view_cls, "_record")

    def test_coherence_pushes_to_origin(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        origin = Counter()
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        view.increment()
        assert origin.count == 1
        assert origin.log == ["inc"]

    def test_coherence_pulls_from_origin(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        origin = Counter()
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        origin.count = 41
        assert view.increment() == 42

    def test_write_through_policy_does_not_pull(self, vig):
        view_cls = vig.generate(local_spec(), Counter)
        origin = Counter()
        view = view_cls(
            ViewRuntime(local_objects={"Counter": origin}),
            policy=CoherencePolicy.WRITE_THROUGH,
        )
        origin.count = 100  # external change, view does not see it
        assert view.increment() == 1
        assert origin.count == 1  # but writes flow back

    def test_customized_method_overrides(self, vig):
        spec = local_spec(
            customized_methods=(
                MethodSpec("current", (), "return -self.count"),
            )
        )
        view_cls = vig.generate(spec, Counter)
        origin = Counter()
        origin.count = 5
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        assert view.current() == -5

    def test_added_method(self, vig):
        spec = local_spec(
            added_methods=(
                MethodSpec("double", (), "return self.count * 2"),
            )
        )
        view_cls = vig.generate(spec, Counter)
        origin = Counter()
        origin.count = 21
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        assert view.double() == 42

    def test_added_field_initialized_none(self, vig):
        spec = local_spec(added_fields=(FieldSpec(name="scratch"),))
        view_cls = vig.generate(spec, Counter)
        view = view_cls(ViewRuntime(local_objects={"Counter": Counter()}))
        assert view.scratch is None

    def test_constructor_body_runs_last(self, vig):
        spec = local_spec(
            added_fields=(FieldSpec(name="banner"),),
            constructor_body="self.banner = 'ready:' + str(self.count)",
        )
        view_cls = vig.generate(spec, Counter)
        origin = Counter()
        origin.count = 7
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        assert view.banner == "ready:7"

    def test_view_metadata(self, vig):
        spec = local_spec()
        view_cls = vig.generate(spec, Counter)
        assert view_cls.__view_spec__ is spec
        assert view_cls.__represents__ is Counter
        assert view_cls.__view_interfaces__ == ("CounterI",)
        assert view_cls.__name__ == "CounterView"


class TestValidationErrors:
    """The paper: VIG errors 'indicate how the XML rules can be rectified'."""

    def test_unknown_interface(self, vig):
        with pytest.raises(ViewGenerationError, match="not .*registered"):
            vig.generate(local_spec(interfaces=("GhostI",)), Counter)

    def test_interface_method_missing_from_object(self, vig):
        registry = vig.interfaces
        registry.register(InterfaceDef("BadI", (MethodSig("missing", ()),)))
        with pytest.raises(ViewGenerationError, match="not defined by"):
            vig.generate(local_spec(interfaces=("BadI",)), Counter)

    def test_unknown_self_reference_in_body(self, vig):
        spec = local_spec(
            added_methods=(MethodSpec("bad", (), "return self.ghost"),)
        )
        with pytest.raises(ViewGenerationError, match="self.ghost"):
            vig.generate(spec, Counter)

    def test_error_names_the_fix(self, vig):
        spec = local_spec(
            added_methods=(MethodSpec("bad", (), "return self.ghost"),)
        )
        with pytest.raises(ViewGenerationError, match="<Field"):
            vig.generate(spec, Counter)

    def test_syntax_error_in_body(self, vig):
        spec = local_spec(
            added_methods=(MethodSpec("bad", (), "return ((("),)
        )
        with pytest.raises(ViewGenerationError, match="rectify the XML rules"):
            vig.generate(spec, Counter)

    def test_customizing_nonexistent_method(self, vig):
        spec = local_spec(
            customized_methods=(MethodSpec("ghost", (), "pass"),)
        )
        with pytest.raises(ViewGenerationError, match="Adds_Methods"):
            vig.generate(spec, Counter)

    def test_adding_existing_method(self, vig):
        spec = local_spec(
            added_methods=(MethodSpec("reset", (), "pass"),)
        )
        with pytest.raises(ViewGenerationError, match="Customizes_Methods"):
            vig.generate(spec, Counter)


class TestCaching:
    """Generation deferred + cached: cost proportional to utility."""

    def test_same_spec_hits_cache(self, vig):
        spec = local_spec()
        first = vig.generate(spec, Counter)
        second = vig.generate(spec, Counter)
        assert first is second
        assert vig.stats.generated == 1
        assert vig.stats.cache_hits == 1

    def test_equivalent_spec_hits_cache(self, vig):
        assert vig.generate(local_spec(), Counter) is vig.generate(
            local_spec(), Counter
        )

    def test_different_spec_regenerates(self, vig):
        a = vig.generate(local_spec(), Counter)
        b = vig.generate(local_spec(name="Other"), Counter)
        assert a is not b
        assert vig.stats.generated == 2


class TestInheritanceMirroring:
    def test_shadow_chain_mirrors_extends(self, vig):
        class Base:
            def __init__(self):
                self.base_field = 1

            def base_method(self):
                return self.base_field

        class Derived(Base):
            def __init__(self):
                super().__init__()
                self.derived_field = 2

            def derived_method(self):
                return self.derived_field

        iface = InterfaceDef(
            "BothI",
            (MethodSig("base_method", ()), MethodSig("derived_method", ())),
        )
        vig.interfaces.register(iface)
        spec = ViewSpec(
            name="DerivedView",
            represents="Derived",
            interfaces=(InterfaceRestriction("BothI", InterfaceMode.LOCAL),),
        )
        view_cls = vig.generate(spec, Derived)
        shadows = [getattr(c, "__shadows__", None) for c in view_cls.__mro__]
        assert Base in shadows  # the extends chain is mirrored
        origin = Derived()
        view = view_cls(ViewRuntime(local_objects={"Derived": origin}))
        assert view.base_method() == 1
        assert view.derived_method() == 2


class TestXmlEndToEnd:
    def test_generate_from_xml(self, vig):
        xml = """
        <View name="XmlView">
          <Represents name="Counter"/>
          <Restricts><Interface name="CounterI" type="local"/></Restricts>
          <Customizes_Methods>
            <MSign>int current()</MSign>
            <MBody>return self.count * 10</MBody>
          </Customizes_Methods>
        </View>
        """
        view_cls = vig.generate_from_xml(xml, Counter)
        origin = Counter()
        origin.count = 3
        view = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        assert view.current() == 30


class TestViewProperties:
    """§4.2: "view properties to be specified at creation time"."""

    def test_spec_properties_flow_to_instance(self, vig):
        spec = local_spec()
        spec.properties["tier"] = "partner"
        view_cls = vig.generate(spec, Counter)
        view = view_cls(ViewRuntime(local_objects={"Counter": Counter()}))
        assert view.properties["tier"] == "partner"

    def test_creation_time_properties_override_spec(self, vig):
        spec = local_spec(name="PropView")
        spec.properties["tier"] = "default"
        view_cls = vig.generate(spec, Counter)
        view = view_cls(
            ViewRuntime(local_objects={"Counter": Counter()}),
            properties={"tier": "gold", "extra": 1},
        )
        assert view.properties == {"tier": "gold", "extra": 1}

    def test_properties_reach_cache_manager(self, vig):
        view_cls = vig.generate(local_spec(name="CmProps"), Counter)
        view = view_cls(
            ViewRuntime(local_objects={"Counter": Counter()}),
            properties={"sync": "eager"},
        )
        assert view._cache_manager.properties["sync"] == "eager"

    def test_instances_do_not_share_property_dicts(self, vig):
        view_cls = vig.generate(local_spec(name="PropIso"), Counter)
        origin = Counter()
        a = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        b = view_cls(ViewRuntime(local_objects={"Counter": origin}))
        a.properties["x"] = 1
        assert "x" not in b.properties
