"""Interface definition tests."""

from __future__ import annotations

import pytest

from repro.views.interfaces import (
    InterfaceDef,
    InterfaceRegistry,
    MethodSig,
    interface_from_class,
)


class SampleI:
    def greet(self, name):
        ...

    def farewell(self):
        ...

    def _private(self):
        ...


class TestDerivation:
    def test_public_methods_captured(self):
        iface = interface_from_class(SampleI)
        assert iface.method_names() == ("farewell", "greet")

    def test_private_methods_skipped(self):
        iface = interface_from_class(SampleI)
        assert "_private" not in iface

    def test_params_without_self(self):
        iface = interface_from_class(SampleI)
        assert iface.method("greet").params == ("name",)

    def test_custom_name(self):
        assert interface_from_class(SampleI, name="Renamed").name == "Renamed"

    def test_inherited_methods_excluded(self):
        class Child(SampleI):
            def extra(self):
                ...

        assert interface_from_class(Child).method_names() == ("extra",)


class TestInterfaceDef:
    def test_contains(self):
        iface = InterfaceDef("I", (MethodSig("m", ("x",)),))
        assert "m" in iface and "q" not in iface

    def test_method_lookup_missing(self):
        iface = InterfaceDef("I", ())
        with pytest.raises(KeyError):
            iface.method("ghost")

    def test_str(self):
        assert str(InterfaceDef("AddressI")) == "AddressI"
        assert str(MethodSig("getPhone", ("name",))) == "getPhone(name)"


class TestRegistry:
    def test_register_and_get(self):
        registry = InterfaceRegistry()
        iface = registry.register_class(SampleI)
        assert registry.get("SampleI") is iface
        assert "SampleI" in registry

    def test_unknown(self):
        with pytest.raises(KeyError):
            InterfaceRegistry().get("Nope")

    def test_names_sorted(self):
        registry = InterfaceRegistry()
        registry.register(InterfaceDef("B"))
        registry.register(InterfaceDef("A"))
        assert registry.names() == ["A", "B"]
