"""View specification tests: the Table 3(b) XML language."""

from __future__ import annotations

import pytest

from repro.errors import ViewSpecError
from repro.views.spec import (
    FieldSpec,
    InterfaceMode,
    InterfaceRestriction,
    MethodSpec,
    ViewSpec,
    parse_signature,
)

TABLE_3B = """
<View name="ViewMailClient_Partner">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="MessageI" type="local"/>
    <Interface name="NotesI" type="rmi"/>
    <Interface name="AddressI" type="switchboard"/>
  </Restricts>
  <Adds_Fields>
    <Field name="accountCopy" type="Account"/>
  </Adds_Fields>
  <Adds_Methods>
    <MSign>void mergeImageIntoView(byte[] image)</MSign>
    <MBody>pass</MBody>
    <MSign>void mergeImageIntoObj(byte[] image)</MSign>
    <MBody>pass</MBody>
    <MSign>byte[] extractImageFromView()</MSign>
    <MBody>return {}</MBody>
    <MSign>byte[] extractImageFromObj()</MSign>
    <MBody>return {}</MBody>
  </Adds_Methods>
  <Customizes_Methods>
    <MSign>boolean addMeeting(String name)</MSign>
    <MBody>return "requested"</MBody>
  </Customizes_Methods>
</View>
"""


class TestSignatureParsing:
    def test_plain(self):
        assert parse_signature("addMeeting(name)") == ("addMeeting", ("name",))

    def test_java_style_types_stripped(self):
        assert parse_signature("boolean addMeeting(String name)") == (
            "addMeeting",
            ("name",),
        )

    def test_java_array_types(self):
        assert parse_signature("void merge(byte[] image)") == ("merge", ("image",))

    def test_no_params(self):
        assert parse_signature("extractImageFromView()") == ("extractImageFromView", ())

    def test_multiple_params(self):
        assert parse_signature("f(int a, int b)") == ("f", ("a", "b"))

    @pytest.mark.parametrize("bad", ["noparens", "f(", "(x)", "1f(x)", "f(2x)"])
    def test_malformed(self, bad):
        with pytest.raises(ViewSpecError):
            parse_signature(bad)


class TestXmlParsing:
    def test_table_3b_parses(self):
        spec = ViewSpec.from_xml(TABLE_3B)
        assert spec.name == "ViewMailClient_Partner"
        assert spec.represents == "MailClient"
        modes = {r.name: r.mode for r in spec.interfaces}
        assert modes == {
            "MessageI": InterfaceMode.LOCAL,
            "NotesI": InterfaceMode.RMI,
            "AddressI": InterfaceMode.SWITCHBOARD,
        }
        assert spec.added_fields == (FieldSpec(name="accountCopy", type_name="Account"),)
        assert {m.name for m in spec.added_methods} == {
            "mergeImageIntoView",
            "mergeImageIntoObj",
            "extractImageFromView",
            "extractImageFromObj",
        }
        assert spec.customized_methods[0].name == "addMeeting"

    def test_switch_alias(self):
        assert InterfaceMode.parse("switch") is InterfaceMode.SWITCHBOARD

    def test_unknown_mode(self):
        with pytest.raises(ViewSpecError):
            InterfaceMode.parse("telnet")

    def test_missing_represents(self):
        with pytest.raises(ViewSpecError, match="Represents"):
            ViewSpec.from_xml('<View name="V"><Restricts/></View>')

    def test_missing_name(self):
        with pytest.raises(ViewSpecError, match="name"):
            ViewSpec.from_xml('<View><Represents name="X"/></View>')

    def test_unknown_element(self):
        with pytest.raises(ViewSpecError, match="unknown element"):
            ViewSpec.from_xml(
                '<View name="V"><Represents name="X"/><Bogus/></View>'
            )

    def test_msign_without_mbody(self):
        with pytest.raises(ViewSpecError, match="no matching"):
            ViewSpec.from_xml(
                '<View name="V"><Represents name="X"/>'
                "<Adds_Methods><MSign>f()</MSign></Adds_Methods></View>"
            )

    def test_mbody_without_msign(self):
        with pytest.raises(ViewSpecError, match="without a preceding"):
            ViewSpec.from_xml(
                '<View name="V"><Represents name="X"/>'
                "<Adds_Methods><MBody>pass</MBody></Adds_Methods></View>"
            )

    def test_nested_method_element_supported(self):
        spec = ViewSpec.from_xml(
            '<View name="V"><Represents name="X"/>'
            "<Adds_Methods><Method><MSign>f()</MSign><MBody>pass</MBody></Method>"
            "</Adds_Methods></View>"
        )
        assert spec.added_methods[0].name == "f"

    def test_unparseable_xml(self):
        with pytest.raises(ViewSpecError, match="unparseable"):
            ViewSpec.from_xml("<View")

    def test_constructor_lifted_from_view_named_method(self):
        spec = ViewSpec.from_xml(
            '<View name="V"><Represents name="X"/>'
            "<Adds_Methods><MSign>V(args)</MSign><MBody>self.ready = True</MBody>"
            "</Adds_Methods></View>"
        )
        assert spec.constructor_body == "self.ready = True"
        assert not spec.added_methods

    def test_replicates_fields(self):
        spec = ViewSpec.from_xml(
            '<View name="V"><Represents name="X"/>'
            '<Replicates_Fields><Field name="inbox"/></Replicates_Fields></View>'
        )
        assert spec.replicated_fields == ("inbox",)


class TestValidation:
    def test_duplicate_interface_rejected(self):
        with pytest.raises(ViewSpecError, match="twice"):
            ViewSpec(
                name="V",
                represents="X",
                interfaces=(
                    InterfaceRestriction("I", InterfaceMode.LOCAL),
                    InterfaceRestriction("I", InterfaceMode.RMI),
                ),
            )

    def test_duplicate_method_rejected(self):
        with pytest.raises(ViewSpecError, match="more than once"):
            ViewSpec(
                name="V",
                represents="X",
                added_methods=(MethodSpec("f", (), "pass"),),
                customized_methods=(MethodSpec("f", (), "pass"),),
            )

    def test_invalid_view_name(self):
        with pytest.raises(ViewSpecError):
            ViewSpec(name="bad name", represents="X")

    def test_coherence_detection(self):
        spec = ViewSpec.from_xml(TABLE_3B)
        assert spec.provides_coherence_methods()


class TestRoundtrip:
    def test_to_xml_from_xml_stable(self):
        spec = ViewSpec.from_xml(TABLE_3B)
        again = ViewSpec.from_xml(spec.to_xml())
        assert again.name == spec.name
        assert again.interfaces == spec.interfaces
        assert {m.name for m in again.added_methods} == {
            m.name for m in spec.added_methods
        }

    def test_digest_stable(self):
        a = ViewSpec.from_xml(TABLE_3B)
        b = ViewSpec.from_xml(TABLE_3B)
        assert a.digest() == b.digest()

    def test_digest_changes_with_content(self):
        a = ViewSpec.from_xml(TABLE_3B)
        b = ViewSpec(name="Other", represents="MailClient")
        assert a.digest() != b.digest()
