"""Automatic view inference tests (§6 future work, implemented)."""

from __future__ import annotations

import pytest

from repro.errors import ViewSpecError
from repro.mail.client import MAIL_CLIENT_INTERFACES, MailClient
from repro.views import (
    InterfaceMode,
    InterfaceRegistry,
    ViewHint,
    ViewRuntime,
    Vig,
    infer_view_spec,
    method_writes_state,
)


@pytest.fixture()
def registry():
    registry = InterfaceRegistry()
    for iface in MAIL_CLIENT_INTERFACES:
        registry.register(iface)
    return registry


def _original():
    return MailClient(
        owner="o",
        accounts={"a": {"name": "a", "phone": "1", "email": "a@x"}},
    )


class TestInference:
    def test_fully_allowed_interface_is_local(self, registry):
        spec = infer_view_spec(
            "AutoMember",
            MailClient,
            registry,
            ViewHint(allow=["sendMessage", "receiveMessages"]),
        )
        assert [(r.name, r.mode) for r in spec.interfaces] == [
            ("MessageI", InterfaceMode.LOCAL)
        ]
        assert not spec.customized_methods

    def test_partially_allowed_interface_gets_denials(self, registry):
        spec = infer_view_spec(
            "AutoBrowser",
            MailClient,
            registry,
            ViewHint(allow=["getEmail"]),
        )
        assert [r.name for r in spec.interfaces] == ["AddressI"]
        assert [m.name for m in spec.customized_methods] == ["getPhone"]
        assert "PermissionError" in spec.customized_methods[0].body

    def test_remote_hint_routes_interface(self, registry):
        spec = infer_view_spec(
            "AutoRemote",
            MailClient,
            registry,
            ViewHint(allow=["getPhone", "getEmail"], remote=["AddressI"]),
        )
        assert spec.interfaces[0].mode is InterfaceMode.SWITCHBOARD

    def test_remote_mode_override(self, registry):
        spec = infer_view_spec(
            "AutoRmi",
            MailClient,
            registry,
            ViewHint(
                allow=["addNote", "addMeeting"],
                remote=["NotesI"],
                remote_mode=InterfaceMode.RMI,
            ),
        )
        assert spec.interfaces[0].mode is InterfaceMode.RMI

    def test_unknown_allowed_method_rejected(self, registry):
        with pytest.raises(ViewSpecError, match="no registered"):
            infer_view_spec(
                "Bad", MailClient, registry, ViewHint(allow=["launchRockets"])
            )

    def test_unknown_remote_interface_rejected(self, registry):
        with pytest.raises(ViewSpecError, match="remote"):
            infer_view_spec(
                "Bad",
                MailClient,
                registry,
                ViewHint(allow=["getEmail"], remote=["GhostI"]),
            )

    def test_empty_hint_rejected(self, registry):
        with pytest.raises(ViewSpecError, match="admits no interface"):
            infer_view_spec("Bad", MailClient, registry, ViewHint(allow=[]))

    def test_prefer_remote_writes(self, registry):
        # NotesI.addNote writes state -> remote under the conservative policy;
        # AddressI only reads -> stays local.
        spec = infer_view_spec(
            "AutoConservative",
            MailClient,
            registry,
            ViewHint(allow=["addNote", "addMeeting", "getPhone", "getEmail"]),
            prefer_remote_writes=True,
        )
        modes = {r.name: r.mode for r in spec.interfaces}
        assert modes["NotesI"] is InterfaceMode.SWITCHBOARD
        assert modes["AddressI"] is InterfaceMode.LOCAL


class TestGeneratedAutoViews:
    def test_inferred_view_works_end_to_end(self, registry):
        spec = infer_view_spec(
            "AutoBrowserView",
            MailClient,
            registry,
            ViewHint(allow=["getEmail"]),
        )
        vig = Vig(registry)
        view_cls = vig.generate(spec, MailClient)
        original = _original()
        view = view_cls(ViewRuntime(local_objects={"MailClient": original}))
        assert view.getEmail("a") == "a@x"
        with pytest.raises(PermissionError):
            view.getPhone("a")
        assert not hasattr(view, "sendMessage")

    def test_custom_deny_message(self, registry):
        spec = infer_view_spec(
            "AutoPolite",
            MailClient,
            registry,
            ViewHint(allow=["getEmail"], deny_message="ask HR about {name}"),
        )
        vig = Vig(registry)
        view_cls = vig.generate(spec, MailClient)
        view = view_cls(ViewRuntime(local_objects={"MailClient": _original()}))
        with pytest.raises(PermissionError, match="ask HR about getPhone"):
            view.getPhone("a")


class TestWriteDetection:
    def test_detects_attribute_store(self):
        class W:
            def set_x(self):
                self.x = 1

            def read_x(self):
                return self.x

        assert method_writes_state(W.set_x)
        assert not method_writes_state(W.read_x)
