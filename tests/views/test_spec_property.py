"""Property test: arbitrary well-formed view specs survive XML round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.views.spec import (
    FieldSpec,
    InterfaceMode,
    InterfaceRestriction,
    MethodSpec,
    ViewSpec,
)

identifier = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True)


@st.composite
def view_specs(draw):
    name = draw(identifier)
    represents = draw(identifier)
    iface_names = draw(
        st.lists(identifier, max_size=4, unique=True)
    )
    interfaces = tuple(
        InterfaceRestriction(
            name=iface,
            mode=draw(st.sampled_from(list(InterfaceMode))),
            binding=draw(st.sampled_from(["", iface])),
        )
        for iface in iface_names
    )
    field_names = draw(st.lists(identifier, max_size=3, unique=True))
    added_fields = tuple(FieldSpec(name=f) for f in field_names)
    method_names = draw(
        st.lists(identifier, max_size=3, unique=True).filter(
            lambda names: not set(names) & set(field_names) and name not in names
        )
    )
    added_methods = tuple(
        MethodSpec(
            name=m,
            params=tuple(draw(st.lists(identifier, max_size=2, unique=True))),
            body="return 1",
        )
        for m in method_names
    )
    copied = tuple(
        draw(
            st.lists(identifier, max_size=2, unique=True).filter(
                lambda names: not set(names) & set(method_names)
            )
        )
    )
    return ViewSpec(
        name=name,
        represents=represents,
        interfaces=interfaces,
        added_fields=added_fields,
        copied_methods=copied,
        added_methods=added_methods,
    )


class TestXmlRoundtrip:
    @settings(max_examples=80, deadline=None)
    @given(spec=view_specs())
    def test_roundtrip_preserves_structure(self, spec):
        restored = ViewSpec.from_xml(spec.to_xml())
        assert restored.name == spec.name
        assert restored.represents == spec.represents
        assert restored.interfaces == spec.interfaces
        assert restored.added_fields == spec.added_fields
        assert restored.copied_methods == spec.copied_methods
        assert [(m.name, m.params) for m in restored.added_methods] == [
            (m.name, m.params) for m in spec.added_methods
        ]

    @settings(max_examples=40, deadline=None)
    @given(spec=view_specs())
    def test_digest_is_roundtrip_stable(self, spec):
        assert ViewSpec.from_xml(spec.to_xml()).digest() == spec.digest()
