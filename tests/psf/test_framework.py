"""PSF façade tests: request_service and serve_client_view."""

from __future__ import annotations

import pytest

from repro.errors import AuthorizationError, PsfError
from repro.mail import MailClient
from repro.psf import EdgeRequirement, ServiceRequest


class TestRequestService:
    def test_full_flow(self, scenario_factory):
        scenario = scenario_factory()
        session = scenario.psf.request_service(
            ServiceRequest(
                client="Bob",
                client_node="sd-pc1",
                interface="MailI",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            )
        )
        session.access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "s", "body": "b"}
        )
        assert scenario.server.fetchMail("Alice")


class TestServeClientView:
    """The Table 4 single-sign-on path."""

    def _client(self, scenario):
        accounts = {"Alice": {"name": "Alice", "phone": "1", "email": "a@x"}}
        return MailClient(owner="shared", accounts=accounts)

    def test_member_view_full_function(self, scenario_factory):
        scenario = scenario_factory()
        view, decision = scenario.psf.serve_client_view(
            "MailClient", "Alice", original=self._client(scenario)
        )
        assert decision.view_name == "ViewMailClient_Member"
        assert view.addMeeting("standup") is True
        assert view.getPhone("Alice") == "1"

    def test_cross_domain_member(self, scenario_factory):
        scenario = scenario_factory()
        view, decision = scenario.psf.serve_client_view(
            "MailClient", "Bob", original=self._client(scenario),
            credentials=scenario.client_wallet("Bob").credentials(),
        )
        assert decision.view_name == "ViewMailClient_Member"

    def test_partner_gets_restricted_meeting(self, scenario_factory):
        scenario = scenario_factory()
        original = self._client(scenario)
        from repro.views import ViewRuntime

        runtime = ViewRuntime(local_objects={"MailClient": original})
        # Partner view routes NotesI over rmi and AddressI over
        # switchboard; for the local test we pre-bind local stubs by
        # keeping everything local via the naming-free runtime: instead,
        # resolve through deployment-grade wiring in the e2e tests.  Here
        # we check the policy decision only.
        policy = scenario.psf.registrar.policy("MailClient")
        decision = policy.resolve(
            "Charlie", scenario.engine,
            scenario.client_wallet("Charlie").credentials(),
        )
        assert decision.view_name == "ViewMailClient_Partner"

    def test_anonymous_default(self, scenario_factory):
        scenario = scenario_factory()
        policy = scenario.psf.registrar.policy("MailClient")
        decision = policy.resolve("Stranger", scenario.engine)
        assert decision.view_name == "ViewMailClient_Anonymous"

    def test_missing_policy_raises(self, scenario_factory):
        scenario = scenario_factory()
        with pytest.raises(PsfError):
            scenario.psf.serve_client_view(
                "MailServer", "Alice", original=scenario.server
            )
