"""Deployment failure-path tests."""

from __future__ import annotations

import pytest

from repro.errors import DeploymentError
from repro.psf import EdgeRequirement, ServiceRequest
from repro.psf.planner import DeploymentPlan, PlannedComponent, PlannedLink


def request(**kwargs):
    defaults = dict(client="Bob", client_node="sd-pc1", interface="MailI")
    defaults.update(kwargs)
    return ServiceRequest(**defaults)


class TestDeployerErrors:
    def test_component_without_factory_or_spec(self, scenario_factory):
        scenario = scenario_factory()
        from repro.psf.component import ComponentType, Port

        broken = ComponentType(name="Broken", implements=(Port("MailI"),))
        plan = DeploymentPlan(
            request=request(),
            components=[PlannedComponent("px1", broken, "sd-pc1")],
            links=[
                PlannedLink("client", "px1", "MailI", ("sd-pc1",), "local")
            ],
            entry_instance="px1",
        )
        with pytest.raises(DeploymentError, match="neither a factory"):
            scenario.psf.deployer.deploy(plan)

    def test_unknown_provider_rejected(self, scenario_factory):
        scenario = scenario_factory()
        plan = DeploymentPlan(
            request=request(),
            components=[],
            links=[PlannedLink("client", "GhostSvc", "MailI", ("sd-pc1",), "rmi")],
            entry_instance="GhostSvc",
        )
        deployment = scenario.psf.deployer.deploy(plan)
        with pytest.raises(DeploymentError, match="unknown provider"):
            deployment.client_access()

    def test_mislabelled_local_link_rejected(self, scenario_factory):
        scenario = scenario_factory()
        plan = DeploymentPlan(
            request=request(client_node="sd-pc1"),
            components=[],
            links=[
                # MailServer lives on ny-server; calling it "local" from
                # sd-pc1 is a planner bug the deployer must catch.
                PlannedLink("p-fake", "MailServer", "MailI", ("sd-pc1",), "local")
            ],
            entry_instance="MailServer",
        )
        deployment = scenario.psf.deployer.deploy(plan)
        with pytest.raises(DeploymentError, match="local but nodes differ"):
            deployment.access_provider(plan.links[0], from_node="sd-pc1")

    def test_plan_without_client_link(self, scenario_factory):
        scenario = scenario_factory()
        plan = DeploymentPlan(
            request=request(), components=[], links=[], entry_instance=""
        )
        deployment = scenario.psf.deployer.deploy(plan)
        with pytest.raises(DeploymentError, match="no client entry link"):
            deployment.client_access()

    def test_context_requires_unplanned_interface(self, scenario_factory):
        scenario = scenario_factory()
        from repro.psf.deployment import DeploymentContext

        plan = scenario.psf.planner().plan(request())
        deployment = scenario.psf.deployer.deploy(plan)
        context = DeploymentContext("pz9", "sd-pc1", deployment, plan.links)
        with pytest.raises(DeploymentError, match="no planned link"):
            context.require("GhostI")


class TestDeployCountAccounting:
    def test_deploy_count_increments(self, scenario_factory):
        scenario = scenario_factory()
        before = scenario.psf.deployer.deploy_count
        plan = scenario.psf.planner().plan(request())
        scenario.psf.deployer.deploy(plan)
        assert scenario.psf.deployer.deploy_count == before + 1
