"""Planner tests against the mail scenario topology."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.psf import EdgeRequirement, ServiceRequest


def request(**kwargs):
    defaults = dict(client="Bob", client_node="sd-pc1", interface="MailI")
    defaults.update(kwargs)
    return ServiceRequest(**defaults)


class TestDirectLinking:
    def test_no_constraints_links_existing_server(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(request())
        assert plan.components == []
        assert plan.entry_instance == "MailServer"
        assert plan.links[0].mode == "rmi"

    def test_privacy_over_insecure_path_uses_switchboard(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(
            request(qos=EdgeRequirement(privacy=True))
        )
        assert plan.components == []
        assert plan.links[0].mode == "switchboard"

    def test_secure_lan_path_keeps_rmi(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(
            request(client="Alice", client_node="ny-pc1", qos=EdgeRequirement(privacy=True))
        )
        assert plan.links[0].mode == "rmi"


class TestAdaptation:
    def test_bulk_privacy_deploys_cache_with_secure_sync(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        assert plan.deployed_names() == ["ViewMailServer"]
        assert plan.components[0].node.startswith("sd-")
        sync_link = [l for l in plan.links if l.consumer != "client"][0]
        assert sync_link.mode == "switchboard"

    def test_bulk_privacy_without_views_builds_encryptor_chain(self, shared_scenario):
        plan = shared_scenario.psf.planner(use_views=False).plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        names = plan.deployed_names()
        assert sorted(names) == ["Decryptor", "Encryptor"]
        by_name = {p.component.name: p.node for p in plan.components}
        assert by_name["Decryptor"].startswith("sd-")  # near the client
        assert by_name["Encryptor"].startswith("ny-")  # near the server

    def test_low_bandwidth_deploys_cache_near_client(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(
            request(qos=EdgeRequirement(min_bandwidth_bps=50e6))
        )
        assert plan.deployed_names() == ["ViewMailServer"]
        assert plan.components[0].node == "sd-pc1"

    def test_low_bandwidth_without_views_fails(self, shared_scenario):
        # Encryptors are bandwidth-transparent, so nothing can bridge the
        # 10 Mbps WAN: the cache is the only answer (the paper's E-PLAN
        # claim that views enlarge the feasible set).
        with pytest.raises(PlanningError):
            shared_scenario.psf.planner(use_views=False).plan(
                request(qos=EdgeRequirement(min_bandwidth_bps=50e6))
            )

    def test_latency_bound_deploys_cache(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(
            request(qos=EdgeRequirement(max_latency_s=0.010))
        )
        assert plan.deployed_names() == ["ViewMailServer"]


class TestAuthorizationGating:
    def test_cache_cannot_land_on_seattle_nodes(self, shared_scenario):
        # SE machines are IBM.Windows: Secure={false}, Trust=(0,1), which
        # fails the cache's Secure={true} Trust=(0,5) constraint.  A cache
        # anywhere else cannot satisfy the client's bandwidth edge, so the
        # request is genuinely unplannable: untrusted hardware blocks the
        # adaptation (the flip side of the paper's node-authorization story).
        with pytest.raises(PlanningError):
            shared_scenario.psf.planner().plan(
                request(
                    client="Charlie",
                    client_node="se-pc1",
                    qos=EdgeRequirement(min_bandwidth_bps=50e6),
                )
            )

    def test_gateways_never_host(self, shared_scenario):
        # Gateways hold no Mail.Node chain at all.
        plan = shared_scenario.psf.planner().plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        for planned in plan.components:
            assert "gw" not in planned.node

    def test_decryptor_allowed_in_seattle(self, shared_scenario):
        # Credential 17 gives Comp.NY executables CPU=40 in Seattle; the
        # Decryptor demands 30 <= 40, and its node constraint is any
        # Mail.Node.  The paper's narrative deploys it exactly there.
        plan = shared_scenario.psf.planner(use_views=False).plan(
            request(
                client="Charlie",
                client_node="se-pc1",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            )
        )
        by_name = {p.component.name: p.node for p in plan.components}
        assert by_name["Decryptor"] == "se-pc1"

    def test_cpu_budget_blocks_heavy_components(self, scenario_factory):
        scenario = scenario_factory()
        # Raise the Decryptor's demand beyond Seattle's 40-CPU budget
        # (credential 17).  The decryptor must run on the client's node to
        # deliver plaintext MailI locally, so Charlie's request becomes
        # unplannable — the attenuated CPU attribute is load-bearing.
        decryptor = scenario.psf.registrar.component("Decryptor")
        decryptor.cpu_demand = 60
        with pytest.raises(PlanningError):
            scenario.psf.planner(use_views=False).plan(
                request(
                    client="Charlie",
                    client_node="se-pc1",
                    qos=EdgeRequirement(privacy=True, channel="rmi"),
                )
            )
        # The same component is fine in San Diego (80-CPU budget, cred 14).
        plan = scenario.psf.planner(use_views=False).plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        assert "Decryptor" in plan.deployed_names()


class TestFailureModes:
    def test_unknown_interface_fails(self, shared_scenario):
        with pytest.raises(PlanningError):
            shared_scenario.psf.planner().plan(request(interface="GhostI"))

    def test_unsatisfiable_interface_properties_fail(self, shared_scenario):
        # No registered component implements MailI with encrypted payloads
        # (the Encryptor implements SecMailI instead).
        with pytest.raises(PlanningError):
            shared_scenario.psf.planner().plan(
                request(required_props=(("encrypted", True),))
            )

    def test_local_cache_absorbs_any_bandwidth_demand(self, shared_scenario):
        # A node-local cache serves from memory: even absurd bandwidth
        # demands are satisfiable when a cache may be placed on the
        # client's own node.
        plan = shared_scenario.psf.planner().plan(
            request(qos=EdgeRequirement(min_bandwidth_bps=1e15))
        )
        assert plan.deployed_names() == ["ViewMailServer"]
        assert plan.components[0].node == "sd-pc1"

    def test_search_counters_populated(self, shared_scenario):
        plan = shared_scenario.psf.planner().plan(request())
        assert plan.goals_expanded >= 1
        assert plan.candidates_examined >= 1
