"""Planner tests on synthetic topologies, independent of the mail world."""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.drbac.model import EntityRef
from repro.net import Network
from repro.psf.component import ComponentType, Port
from repro.psf.guard import Guard
from repro.psf.planner import (
    EdgeRequirement,
    ExistingInstance,
    Planner,
    ServiceRequest,
)
from repro.psf.registrar import Registrar


def make_world(key_store, node_names, links):
    """A single-domain world where every node is a certified App.Node."""
    engine = DrbacEngine(key_store=key_store)
    network = Network()
    for name in node_names:
        network.add_node(name, domain="D")
    for a, b, kwargs in links:
        network.add_link(a, b, **kwargs)
    guard = Guard(engine, "Dom")
    app = Guard(engine, "App")
    for name in node_names:
        app.certify(EntityRef(name), app.role("Node"))
    return engine, network, guard, app


def component(name, implements, requires=(), **kwargs):
    from repro.drbac.query import Constraint

    return ComponentType(
        name=name,
        implements=tuple(Port(i) if isinstance(i, str) else i for i in implements),
        requires=tuple(Port(r) if isinstance(r, str) else r for r in requires),
        node_constraints=(Constraint.parse("App.Node"),),
        factory=lambda ctx: object(),
        **kwargs,
    )


class TestChainTopology:
    """client -- n0 -- n1 -- n2 -- server, relay must sit mid-chain."""

    @pytest.fixture()
    def world(self, key_store):
        nodes = ["n0", "n1", "n2"]
        links = [
            ("n0", "n1", dict(latency_s=0.01)),
            ("n1", "n2", dict(latency_s=0.01)),
        ]
        engine, network, guard, app = make_world(key_store, nodes, links)
        registrar = Registrar()
        registrar.register_component(
            component("Origin", ["SvcI"], deployable=False)
        )
        registrar.register_component(
            component("Relay", [Port("SvcI", {"cached": True})], requires=["SvcI"])
        )
        planner = Planner(
            registrar,
            network,
            {"D": guard},
            existing=[
                ExistingInstance(
                    name="Origin", node="n2", component=registrar.component("Origin")
                )
            ],
        )
        return planner

    def test_direct_when_unconstrained(self, world):
        plan = world.plan(ServiceRequest(client="u", client_node="n0", interface="SvcI"))
        assert plan.components == []

    def test_latency_bound_forces_local_relay(self, world):
        plan = world.plan(
            ServiceRequest(
                client="u", client_node="n0", interface="SvcI",
                qos=EdgeRequirement(max_latency_s=0.005),
            )
        )
        assert plan.deployed_names() == ["Relay"]
        assert plan.components[0].node == "n0"

    def test_cached_property_requirement_forces_relay(self, world):
        plan = world.plan(
            ServiceRequest(
                client="u", client_node="n0", interface="SvcI",
                required_props=(("cached", True),),
            )
        )
        assert plan.deployed_names() == ["Relay"]


class TestDiamondTopology:
    """Two disjoint paths, one secure and slow, one insecure and fast."""

    @pytest.fixture()
    def world(self, key_store):
        nodes = ["src", "sec", "fast", "dst"]
        links = [
            ("src", "sec", dict(latency_s=0.050, secure=True)),
            ("sec", "dst", dict(latency_s=0.050, secure=True)),
            ("src", "fast", dict(latency_s=0.001, secure=False)),
            ("fast", "dst", dict(latency_s=0.001, secure=False)),
        ]
        engine, network, guard, app = make_world(key_store, nodes, links)
        registrar = Registrar()
        registrar.register_component(component("Origin", ["SvcI"], deployable=False))
        planner = Planner(
            registrar,
            network,
            {"D": guard},
            existing=[
                ExistingInstance(
                    name="Origin", node="dst", component=registrar.component("Origin")
                )
            ],
        )
        return network, planner

    def test_routing_prefers_fast_path(self, world):
        network, planner = world
        plan = planner.plan(ServiceRequest(client="u", client_node="src", interface="SvcI"))
        assert "fast" in plan.links[0].path

    def test_privacy_rides_switchboard_on_fast_insecure_path(self, world):
        network, planner = world
        plan = planner.plan(
            ServiceRequest(
                client="u", client_node="src", interface="SvcI",
                qos=EdgeRequirement(privacy=True),
            )
        )
        assert plan.links[0].mode == "switchboard"

    def test_privacy_bulk_unsatisfiable_without_components(self, world):
        from repro.errors import PlanningError

        network, planner = world
        # The secure path exists but routing picks per-delay; the fast
        # path is insecure, and no encryptor components are registered.
        # The planner must still find the secure detour admissible? No:
        # routing is delay-based, so the chosen path is insecure and rmi
        # bulk privacy fails.
        with pytest.raises(PlanningError):
            planner.plan(
                ServiceRequest(
                    client="u", client_node="src", interface="SvcI",
                    qos=EdgeRequirement(privacy=True, channel="rmi"),
                )
            )


class TestAuthorizationInSyntheticWorld:
    def test_uncertified_node_excluded(self, key_store):
        engine, network, guard, app = make_world(
            key_store, ["good"], []
        )
        network.add_node("bad", domain="D")  # never certified as App.Node
        network.add_link("good", "bad")
        registrar = Registrar()
        registrar.register_component(component("Origin", ["SvcI"], deployable=False))
        registrar.register_component(component("Relay", [Port("SvcI", {"cached": True})], requires=["SvcI"]))
        planner = Planner(
            registrar,
            network,
            {"D": guard},
            existing=[
                ExistingInstance(
                    name="Origin", node="good", component=registrar.component("Origin")
                )
            ],
        )
        plan = planner.plan(
            ServiceRequest(
                client="u", client_node="bad", interface="SvcI",
                required_props=(("cached", True),),
            )
        )
        # The relay cannot land on the uncertified node, even though it is
        # the client's own machine: it deploys next door instead.
        assert plan.components[0].node == "good"

    def test_unknown_domain_rejected(self, key_store):
        engine, network, guard, app = make_world(key_store, ["n0"], [])
        network.add_node("foreign", domain="X")  # no guard for X
        network.add_link("n0", "foreign")
        registrar = Registrar()
        registrar.register_component(component("Origin", ["SvcI"], deployable=False))
        registrar.register_component(component("Svc", ["SvcI"]))
        planner = Planner(registrar, network, {"D": guard}, existing=[])
        plan = planner.plan(
            ServiceRequest(client="u", client_node="foreign", interface="SvcI")
        )
        # Deployment lands in the governed domain only.
        assert plan.components[0].node == "n0"
