"""Registrar tests."""

from __future__ import annotations

import pytest

from repro.errors import PsfError
from repro.psf.component import ComponentType, Port
from repro.psf.registrar import Registrar
from repro.views.acl import ViewAccessPolicy
from repro.views.spec import ViewSpec


def component(name="C", iface="I", props=None):
    return ComponentType(name, implements=(Port(iface, props or {}),))


class TestComponents:
    def test_register_and_lookup(self):
        registrar = Registrar()
        c = registrar.register_component(component())
        assert registrar.component("C") is c

    def test_duplicate_rejected(self):
        registrar = Registrar()
        registrar.register_component(component())
        with pytest.raises(PsfError):
            registrar.register_component(component())

    def test_unknown_component(self):
        with pytest.raises(PsfError):
            Registrar().component("ghost")

    def test_providers_filter_by_properties(self):
        registrar = Registrar()
        registrar.register_component(component("Plain", "MailI"))
        registrar.register_component(
            component("Enc", "MailI", {"encrypted": True})
        )
        providers = registrar.providers_of("MailI", {"encrypted": True})
        assert [c.name for c in providers] == ["Enc"]

    def test_component_class_registration(self):
        registrar = Registrar()

        class Impl:
            pass

        registrar.register_component(component(), cls=Impl)
        assert registrar.component_class("C") is Impl
        assert registrar.component_class("missing") is None


class TestViews:
    def test_register_view_derives_component(self):
        registrar = Registrar()
        registrar.register_component(component("Base", "I"))
        spec = ViewSpec(name="BaseView", represents="Base")
        derived = registrar.register_view("Base", spec)
        assert derived.is_view
        assert registrar.view_spec("BaseView") is spec

    def test_unknown_view_spec(self):
        with pytest.raises(PsfError):
            Registrar().view_spec("ghost")


class TestPolicies:
    def test_policy_requires_component(self):
        registrar = Registrar()
        with pytest.raises(PsfError):
            registrar.set_policy("ghost", ViewAccessPolicy("ghost"))

    def test_policy_roundtrip(self):
        registrar = Registrar()
        registrar.register_component(component())
        policy = ViewAccessPolicy("C")
        registrar.set_policy("C", policy)
        assert registrar.policy("C") is policy
        assert registrar.policy("other") is None
