"""Environment-monitor tests."""

from __future__ import annotations

from repro.net.simnet import Network
from repro.psf.monitor import EnvironmentMonitor


def make_net():
    net = Network()
    net.add_node("a", domain="NY", properties={"vendor": "Dell"})
    net.add_node("b", domain="SD")
    net.add_link("a", "b", latency_s=0.01, bandwidth_bps=1e6, secure=False)
    return net


class TestSnapshot:
    def test_nodes_and_links_reported(self):
        monitor = EnvironmentMonitor(make_net())
        snap = monitor.snapshot()
        assert {n.name for n in snap.nodes} == {"a", "b"}
        assert snap.links[0].secure is False
        assert dict(snap.nodes[0].properties).get("vendor") == "Dell"


class TestChanges:
    def test_bandwidth_change_notifies(self):
        monitor = EnvironmentMonitor(make_net())
        seen = []
        monitor.on_change(lambda kind, report: seen.append((kind, report.bandwidth_bps)))
        monitor.set_link_bandwidth("a", "b", 5e5)
        assert seen == [("bandwidth", 5e5)]
        assert monitor.network.link("a", "b").bandwidth_bps == 5e5

    def test_security_change_notifies(self):
        monitor = EnvironmentMonitor(make_net())
        seen = []
        monitor.on_change(lambda kind, report: seen.append(kind))
        monitor.set_link_security("a", "b", True)
        assert seen == ["security"]

    def test_latency_and_updown(self):
        monitor = EnvironmentMonitor(make_net())
        monitor.set_link_latency("a", "b", 0.2)
        monitor.set_link_up("a", "b", False)
        assert monitor.network.link("a", "b").latency_s == 0.2
        assert not monitor.network.link("a", "b").up
        assert monitor.changes_observed == 2
