"""Deployment tests: instantiation, credentials, exports, and wiring."""

from __future__ import annotations

import pytest

from repro.psf import EdgeRequirement, ServiceRequest


def request(**kwargs):
    defaults = dict(client="Bob", client_node="sd-pc1", interface="MailI")
    defaults.update(kwargs)
    return ServiceRequest(**defaults)


class TestCacheDeployment:
    @pytest.fixture()
    def deployed(self, scenario_factory):
        scenario = scenario_factory()
        plan = scenario.psf.planner().plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        deployment = scenario.psf.deployer.deploy(plan)
        return scenario, plan, deployment

    def test_view_instance_created_by_vig(self, deployed):
        scenario, plan, deployment = deployed
        instance = next(iter(deployment.instances.values()))
        assert type(instance.obj).__name__ == "ViewMailServer"
        assert scenario.psf.vig.stats.generated == 1

    def test_instance_receives_credentials(self, deployed):
        scenario, plan, deployment = deployed
        instance = next(iter(deployment.instances.values()))
        assert instance.credentials
        cred = instance.credentials[0]
        assert str(cred.role) == "Mail.ViewMailServer"
        # The instance can prove its executable role in SD.
        proof = scenario.engine.find_proof(
            instance.instance_id, "Comp.SD.Executable"
        )
        assert proof is not None

    def test_client_reads_through_cache(self, deployed):
        scenario, plan, deployment = deployed
        scenario.server.sendMail(
            {"sender": "Alice", "recipient": "Bob", "subject": "s", "body": "b"}
        )
        access = deployment.client_access()
        assert [m["subject"] for m in access.fetchMail("Bob")] == ["s"]

    def test_client_writes_propagate_to_origin(self, deployed):
        scenario, plan, deployment = deployed
        access = deployment.client_access()
        access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "w", "body": "b"}
        )
        assert scenario.server.fetchMail("Alice")[0]["subject"] == "w"

    def test_second_deployment_hits_vig_cache(self, deployed):
        scenario, plan, deployment = deployed
        plan2 = scenario.psf.planner().plan(
            request(client="Alice", client_node="sd-pc2",
                    qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        scenario.psf.deployer.deploy(plan2)
        assert scenario.psf.vig.stats.generated == 1
        assert scenario.psf.vig.stats.cache_hits >= 1


class TestEncryptorChainDeployment:
    @pytest.fixture()
    def deployed(self, scenario_factory):
        scenario = scenario_factory()
        plan = scenario.psf.planner(use_views=False).plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        deployment = scenario.psf.deployer.deploy(plan)
        return scenario, plan, deployment

    def test_factories_receive_dependencies(self, deployed):
        scenario, plan, deployment = deployed
        names = {i.component.name for i in deployment.instances.values()}
        assert names == {"Encryptor", "Decryptor"}

    def test_end_to_end_mail_flow(self, deployed):
        scenario, plan, deployment = deployed
        access = deployment.client_access()
        access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "x", "body": "y"}
        )
        assert scenario.server.fetchMail("Alice")[0]["body"] == "y"

    def test_wan_carries_only_ciphertext(self, deployed):
        scenario, plan, deployment = deployed
        snoops = []
        scenario.psf.transport.observe_link(
            "ny-gw", "sd-gw", lambda p, s, d: snoops.append(p)
        )
        access = deployment.client_access()
        access.sendMail(
            {"sender": "Bob", "recipient": "Alice", "subject": "q",
             "body": "CONFIDENTIAL-PAYLOAD"}
        )
        access.fetchMail("Alice")
        assert snoops, "traffic must actually cross the WAN"
        assert not any(b"CONFIDENTIAL-PAYLOAD" in p for p in snoops)


class TestClientAccessModes:
    def test_local_access_returns_object(self, scenario_factory):
        scenario = scenario_factory()
        plan = scenario.psf.planner().plan(
            request(client="Alice", client_node="ny-server")
        )
        deployment = scenario.psf.deployer.deploy(plan)
        assert deployment.client_access() is scenario.server

    def test_rmi_access(self, scenario_factory):
        scenario = scenario_factory()
        plan = scenario.psf.planner().plan(request())
        deployment = scenario.psf.deployer.deploy(plan)
        access = deployment.client_access()
        assert access.listAccounts() == ["Alice", "Bob", "Charlie"]

    def test_switchboard_access(self, scenario_factory):
        scenario = scenario_factory()
        plan = scenario.psf.planner().plan(
            request(qos=EdgeRequirement(privacy=True))
        )
        deployment = scenario.psf.deployer.deploy(plan)
        access = deployment.client_access()
        assert access.listAccounts() == ["Alice", "Bob", "Charlie"]
