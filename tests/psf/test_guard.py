"""Guard tests: the §3.3 certificate-generation helpers."""

from __future__ import annotations

import pytest

from repro.drbac.model import AttrScalar, Role
from repro.psf.guard import Guard


@pytest.fixture()
def ny(engine):
    return Guard(engine, "Comp.NY")


@pytest.fixture()
def sd(engine):
    return Guard(engine, "Comp.SD")


class TestCertificates:
    def test_certify_member(self, engine, ny):
        ny.certify_member("Alice")
        assert engine.find_proof("Alice", "Comp.NY.Member") is not None

    def test_map_role_cross_domain(self, engine, ny, sd):
        sd.certify_member("Bob")
        ny.map_role(Role("Comp.SD", "Member"), "Member")
        assert engine.find_proof("Bob", "Comp.NY.Member") is not None

    def test_grant_assignment_enables_third_party(self, engine, ny, sd):
        ny.grant_assignment("Comp.SD", "Partner")
        sd.certify(Role("Inc.SE", "Member"), Role("Comp.NY", "Partner"))
        engine.delegate("Inc.SE", "Charlie", "Inc.SE.Member")
        assert engine.find_proof("Charlie", "Comp.NY.Partner") is not None

    def test_issued_log(self, ny):
        ny.certify_member("Alice")
        assert len(ny.issued) == 1

    def test_role_namespace(self, ny):
        assert str(ny.role("Member")) == "Comp.NY.Member"
        assert str(ny.executable_role) == "Comp.NY.Executable"


class TestComponentBudgets:
    def test_cpu_attenuates_across_domains(self, engine, ny, sd):
        ny.certify(
            Role("Mail", "Enc"), ny.executable_role, attributes={"CPU": AttrScalar(100)}
        )
        sd.accept_executables(ny.executable_role, cpu=80)
        assert sd.component_cpu_budget(Role("Mail", "Enc")) == 80
        assert ny.component_cpu_budget(Role("Mail", "Enc")) == 100

    def test_unauthorized_component_none(self, sd):
        assert sd.component_cpu_budget(Role("Mail", "Ghost")) is None

    def test_budget_without_cpu_attribute_unbounded(self, engine, ny):
        ny.certify(Role("Mail", "Free"), ny.executable_role)
        assert ny.component_cpu_budget(Role("Mail", "Free")) == float("inf")


class TestAuthorization:
    def test_authorize_client(self, engine, ny):
        ny.certify_member("Alice")
        result = ny.authorize_client("Alice", "Comp.NY.Member")
        assert result.valid

    def test_node_satisfies(self, engine, ny):
        from repro.drbac.model import AttrSet

        engine.delegate(
            "Mail", "node1", "Mail.Node", attributes={"Secure": AttrSet([True])}
        )
        assert ny.node_satisfies("node1", "Mail.Node with Secure={true}")
        assert not ny.node_satisfies("node1", "Mail.Node with Secure={false}")
