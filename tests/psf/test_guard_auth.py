"""Guard challenge-response authentication tests (§3.3)."""

from __future__ import annotations

from repro.psf.guard import Guard


class TestChallengeResponse:
    def test_successful_authentication(self, engine):
        guard = Guard(engine, "Comp.NY")
        alice = engine.identity("Alice")
        assert guard.authenticate("Alice", alice.sign)

    def test_wrong_key_rejected(self, engine):
        guard = Guard(engine, "Comp.NY")
        engine.identity("Alice")
        mallory = engine.identity("Mallory")
        assert not guard.authenticate("Alice", mallory.sign)

    def test_unknown_principal_rejected(self, engine):
        guard = Guard(engine, "Comp.NY")
        challenge = guard.challenge("Ghost-Principal")
        # Any bytes fail: the PKI has no key bound to the name.
        assert not guard.verify_response("Ghost-Principal", b"\x00" * 64)

    def test_challenge_is_one_shot(self, engine):
        guard = Guard(engine, "Comp.NY")
        alice = engine.identity("Alice")
        challenge = guard.challenge("Alice")
        signature = alice.sign(challenge)
        assert guard.verify_response("Alice", signature)
        # Replaying the same signature fails: the nonce was consumed.
        assert not guard.verify_response("Alice", signature)

    def test_challenges_are_fresh(self, engine):
        guard = Guard(engine, "Comp.NY")
        assert guard.challenge("Alice") != guard.challenge("Alice")

    def test_challenge_bound_to_domain(self, engine):
        ny = Guard(engine, "Comp.NY")
        sd = Guard(engine, "Comp.SD")
        alice = engine.identity("Alice")
        ny_challenge = ny.challenge("Alice")
        signature = alice.sign(ny_challenge)
        sd.challenge("Alice")
        # A signature over NY's challenge does not satisfy SD's.
        assert not sd.verify_response("Alice", signature)

    def test_no_outstanding_challenge_rejected(self, engine):
        guard = Guard(engine, "Comp.NY")
        alice = engine.identity("Alice")
        assert not guard.verify_response("Alice", alice.sign(b"anything"))
