"""Adaptation-manager tests: the continuous re-planning loop."""

from __future__ import annotations

import pytest

from repro.psf import AdaptationManager, EdgeRequirement, ServiceRequest
from repro.psf.adaptation import plan_signature


def request(**kwargs):
    defaults = dict(client="Alice", client_node="ny-pc1", interface="MailI")
    defaults.update(kwargs)
    return ServiceRequest(**defaults)


class TestManagedSessions:
    def test_manage_deploys_and_serves(self, scenario_factory):
        scenario = scenario_factory()
        manager = AdaptationManager(scenario.psf)
        session = manager.manage(request())
        assert session.access.listAccounts() == ["Alice", "Bob", "Charlie"]
        assert session.history == []

    def test_irrelevant_change_keeps_plan(self, scenario_factory):
        scenario = scenario_factory()
        manager = AdaptationManager(scenario.psf)
        session = manager.manage(request())
        # Changing a far-away link should re-plan to the same configuration.
        scenario.psf.monitor.set_link_latency("sd-gw", "se-gw", 0.2)
        assert len(session.history) == 1
        assert not session.history[0].redeployed

    def test_link_compromise_triggers_redeployment(self, scenario_factory):
        scenario = scenario_factory()
        manager = AdaptationManager(scenario.psf)
        session = manager.manage(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        before = plan_signature(session.plan)
        events = []
        session.on_adaptation(events.append)
        scenario.psf.monitor.set_link_security("ny-pc1", "ny-server", False)
        scenario.psf.monitor.set_link_security("ny-pc1", "ny-gw", False)
        redeployed = [e for e in session.history if e.redeployed]
        assert redeployed
        assert plan_signature(session.plan) != before
        assert session.plan.deployed_names()  # now adapted
        assert events  # listener observed the adaptation

    def test_session_stays_usable_after_adaptation(self, scenario_factory):
        scenario = scenario_factory()
        manager = AdaptationManager(scenario.psf)
        session = manager.manage(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        scenario.psf.monitor.set_link_security("ny-pc1", "ny-server", False)
        scenario.psf.monitor.set_link_security("ny-pc1", "ny-gw", False)
        session.access.sendMail(
            {"sender": "Alice", "recipient": "Bob", "subject": "s", "body": "b"}
        )
        assert scenario.server.fetchMail("Bob")

    def test_unplannable_change_recorded_as_error(self, scenario_factory):
        scenario = scenario_factory()
        manager = AdaptationManager(scenario.psf)
        session = manager.manage(
            request(client="Bob", client_node="sd-pc1",
                    qos=EdgeRequirement(min_bandwidth_bps=50e6))
        )
        # Taking the client's own node constraint away is impossible here;
        # instead sever San Diego entirely: no cache placement survives a
        # downed site link for a *remote* goal... the cache is local, so
        # degrade differently: kill the WAN so the cache cannot sync.
        scenario.psf.monitor.set_link_up("ny-gw", "sd-gw", False)
        scenario.psf.monitor.set_link_up("sd-gw", "se-gw", False)
        errors = [e for e in session.history if e.error]
        assert errors
        assert errors[-1].new_signature is None

    def test_multiple_sessions_managed_independently(self, scenario_factory):
        scenario = scenario_factory()
        manager = AdaptationManager(scenario.psf)
        s1 = manager.manage(request())
        s2 = manager.manage(request(client="Bob", client_node="sd-pc1"))
        scenario.psf.monitor.set_link_latency("ny-gw", "sd-gw", 0.2)
        assert len(s1.history) == 1
        assert len(s2.history) == 1


class TestPlanSignature:
    def test_same_config_same_signature(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        a = planner.plan(request())
        b = planner.plan(request())
        assert plan_signature(a) == plan_signature(b)

    def test_different_config_different_signature(self, shared_scenario):
        psf = shared_scenario.psf
        a = psf.planner().plan(request())
        b = psf.planner().plan(
            request(client="Bob", client_node="sd-pc1",
                    qos=EdgeRequirement(min_bandwidth_bps=50e6))
        )
        assert plan_signature(a) != plan_signature(b)
