"""Declarative application-specification tests (PSF element #1)."""

from __future__ import annotations

import pytest

from repro.errors import PsfError
from repro.psf import Registrar, load_application

MINI_APP = """
<Application name="mini-mail">
  <Interfaces>
    <Interface name="MailI">
      <Method>fetchMail(user)</Method>
      <Method>sendMail(mes)</Method>
    </Interface>
    <Interface name="SecMailI">
      <Method>fetchMailEnc(user)</Method>
    </Interface>
  </Interfaces>
  <Components>
    <Component name="MailServer" role="Mail.MailServer" cpu="50" deployable="false">
      <Implements interface="MailI"/>
      <NodeConstraint>Mail.Node with Secure={true}</NodeConstraint>
    </Component>
    <Component name="Encryptor" role="Mail.Encryptor" cpu="30">
      <Property name="bandwidth_transparent" value="true"/>
      <Implements interface="SecMailI">
        <Property name="encrypted" value="true"/>
      </Implements>
      <Requires interface="MailI">
        <Property name="privacy" value="true"/>
        <Property name="channel" value="rmi"/>
      </Requires>
      <NodeConstraint>Mail.Node</NodeConstraint>
    </Component>
  </Components>
  <Views>
    <View name="CacheView" component="MailServer" cpu="20" role="Mail.ViewMailServer">
      <Represents name="MailServer"/>
      <Restricts>
        <Interface name="MailI" type="local"/>
      </Restricts>
      <Replicates_Fields>
        <Field name="mailboxes"/>
      </Replicates_Fields>
    </View>
  </Views>
  <Policies>
    <Policy component="MailServer">
      <Allow role="Comp.NY.Member" view="CacheView"/>
      <Allow role="others" view="CacheView"/>
    </Policy>
  </Policies>
</Application>
"""


class TestLoading:
    def test_full_document(self):
        registrar = Registrar()
        report = load_application(registrar, MINI_APP)
        assert report.application == "mini-mail"
        assert report.interfaces == ["MailI", "SecMailI"]
        assert report.components == ["MailServer", "Encryptor"]
        assert report.views == ["CacheView"]
        assert report.policies == ["MailServer"]

    def test_interfaces_registered_with_methods(self):
        registrar = Registrar()
        load_application(registrar, MINI_APP)
        mail_i = registrar.interfaces.get("MailI")
        assert mail_i.method_names() == ("fetchMail", "sendMail")
        assert mail_i.method("fetchMail").params == ("user",)

    def test_component_fields(self):
        registrar = Registrar()
        load_application(registrar, MINI_APP)
        server = registrar.component("MailServer")
        assert server.cpu_demand == 50
        assert not server.deployable
        assert str(server.component_role) == "Mail.MailServer"
        assert str(server.node_constraints[0]) == "Mail.Node with Secure={true}"

    def test_port_properties(self):
        registrar = Registrar()
        load_application(registrar, MINI_APP)
        encryptor = registrar.component("Encryptor")
        assert encryptor.implements[0].properties == {"encrypted": True}
        assert encryptor.requires[0].properties == {
            "privacy": True,
            "channel": "rmi",
        }
        assert encryptor.properties == {"bandwidth_transparent": True}

    def test_view_derived_component(self):
        registrar = Registrar()
        load_application(registrar, MINI_APP)
        view = registrar.component("CacheView")
        assert view.is_view
        assert view.cpu_demand == 20
        assert str(view.component_role) == "Mail.ViewMailServer"
        assert registrar.view_spec("CacheView").replicated_fields == ("mailboxes",)

    def test_policy_rules(self):
        registrar = Registrar()
        load_application(registrar, MINI_APP)
        policy = registrar.policy("MailServer")
        assert [r.view_name for r in policy.rules()] == ["CacheView", "CacheView"]
        assert policy.rules()[-1].is_default

    def test_factories_and_classes_bound(self):
        registrar = Registrar()

        class FakeServer:
            pass

        sentinel = object()
        load_application(
            registrar,
            MINI_APP,
            factories={"Encryptor": lambda ctx: sentinel},
            classes={"MailServer": FakeServer},
        )
        assert registrar.component("Encryptor").factory(None) is sentinel
        assert registrar.component_class("MailServer") is FakeServer


class TestErrors:
    def test_bad_root(self):
        with pytest.raises(PsfError, match="Application"):
            load_application(Registrar(), "<Bogus/>")

    def test_unparseable(self):
        with pytest.raises(PsfError, match="unparseable"):
            load_application(Registrar(), "<Application")

    def test_component_without_name(self):
        doc = "<Application><Components><Component cpu='1'/></Components></Application>"
        with pytest.raises(PsfError, match="name"):
            load_application(Registrar(), doc)

    def test_policy_without_component(self):
        doc = "<Application><Policies><Policy/></Policies></Application>"
        with pytest.raises(PsfError, match="component"):
            load_application(Registrar(), doc)


class TestPlannability:
    def test_loaded_app_plans_like_programmatic_registration(self, key_store):
        """The declarative document drives the same planner machinery."""
        from repro.drbac.model import AttrSet
        from repro.psf import EdgeRequirement, Planner, ServiceRequest, ExistingInstance
        from repro.psf.guard import Guard
        from repro.drbac import DrbacEngine
        from repro.net import Network

        registrar = Registrar()
        load_application(registrar, MINI_APP)

        engine = DrbacEngine(key_store=key_store)
        network = Network()
        network.add_node("n1", domain="NY")
        network.add_node("n2", domain="NY")
        network.add_link("n1", "n2", secure=False)
        guard = Guard(engine, "Comp.NY")
        mail = Guard(engine, "Mail")
        for node in ("n1", "n2"):
            mail.certify(
                __import__("repro.drbac.model", fromlist=["EntityRef"]).EntityRef(node),
                mail.role("Node"),
                attributes={"Secure": AttrSet([True])},
            )
        guard.certify(
            __import__("repro.drbac.model", fromlist=["Role"]).Role("Mail", "ViewMailServer"),
            guard.executable_role,
        )
        planner = Planner(
            registrar,
            network,
            {"NY": guard},
            existing=[
                ExistingInstance(
                    name="MailServer", node="n2", component=registrar.component("MailServer")
                )
            ],
        )
        plan = planner.plan(
            ServiceRequest(
                client="u", client_node="n1", interface="MailI",
                qos=EdgeRequirement(min_bandwidth_bps=1e12),
            )
        )
        assert plan.deployed_names() == ["CacheView"]
