"""Service-level tests: credentials select QoS tiers (§2.2)."""

from __future__ import annotations

import pytest

from repro.errors import AuthorizationError
from repro.psf.qos import QosPolicy, ServiceLevel

GOLD = ServiceLevel(name="gold", privacy=True, min_bandwidth_bps=50e6)
SILVER = ServiceLevel(name="silver", privacy=True)
BRONZE = ServiceLevel(name="bronze")


@pytest.fixture()
def policy():
    return (
        QosPolicy("mail")
        .offer("Comp.NY.Member", GOLD)
        .offer("Comp.NY.Partner", SILVER)
        .offer("others", BRONZE)
    )


class TestResolution:
    def test_member_gets_gold(self, engine, policy):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        assert policy.resolve("Alice", engine) is GOLD

    def test_partner_gets_silver(self, engine, policy):
        engine.identity("Comp.SD")
        engine.delegate("Comp.NY", "Comp.SD", "Comp.NY.Partner", assignment=True)
        engine.delegate("Comp.SD", "Inc.SE.Member", "Comp.NY.Partner")
        engine.delegate("Inc.SE", "Charlie", "Inc.SE.Member")
        assert policy.resolve("Charlie", engine) is SILVER

    def test_stranger_gets_floor(self, engine, policy):
        assert policy.resolve("Nobody", engine) is BRONZE

    def test_no_floor_returns_none(self, engine):
        strict = QosPolicy("x").offer("Comp.NY.Member", GOLD)
        assert strict.resolve("Nobody", engine) is None

    def test_presented_credentials_considered(self, engine, policy):
        engine.delegate("Comp.NY", "Comp.SD.Member", "Comp.NY.Member")
        leaf = engine.delegate("Comp.SD", "Bob", "Comp.SD.Member", publish=False)
        assert policy.resolve("Bob", engine, [leaf]) is GOLD

    def test_rules_after_default_rejected(self):
        policy = QosPolicy("x").offer("others", BRONZE)
        with pytest.raises(ValueError):
            policy.offer("Comp.NY.Member", GOLD)


class TestRequestBuilding:
    def test_request_carries_tier_qos(self, engine, policy):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        request = policy.request_for("Alice", "ny-pc1", "MailI", engine)
        assert request.qos.privacy is True
        assert request.qos.min_bandwidth_bps == 50e6

    def test_unqualified_client_raises(self, engine):
        strict = QosPolicy("x").offer("Comp.NY.Member", GOLD)
        with pytest.raises(AuthorizationError):
            strict.request_for("Nobody", "n", "MailI", engine)


class TestScenarioIntegration:
    def test_levels_drive_adaptation(self, shared_scenario):
        """Gold members behind the WAN force the cache; bronze strangers
        ride the plain direct link — QoS tiers choose deployments."""
        engine = shared_scenario.engine
        policy = (
            QosPolicy("mail")
            .offer("Comp.NY.Member", GOLD)
            .offer("others", BRONZE)
        )
        gold_request = policy.request_for("Bob", "sd-pc1", "MailI", engine)
        bronze_request = policy.request_for("Visitor", "sd-pc1", "MailI", engine)
        planner = shared_scenario.psf.planner()
        gold_plan = planner.plan(gold_request)
        bronze_plan = planner.plan(bronze_request)
        assert gold_plan.deployed_names() == ["ViewMailServer"]
        assert bronze_plan.deployed_names() == []
        assert bronze_plan.links[0].mode == "rmi"
