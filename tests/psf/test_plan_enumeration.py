"""Plan enumeration and cost-optimal selection tests."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.psf import EdgeRequirement, ServiceRequest
from repro.psf.adaptation import plan_signature


def request(**kwargs):
    defaults = dict(client="Bob", client_node="sd-pc1", interface="MailI")
    defaults.update(kwargs)
    return ServiceRequest(**defaults)


class TestEnumeration:
    def test_multiple_feasible_configurations(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        plans = planner.enumerate_plans(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        assert len(plans) > 1
        names = {tuple(sorted(p.deployed_names())) for p in plans}
        assert ("ViewMailServer",) in names
        assert ("Decryptor", "Encryptor") in names

    def test_limit_respected(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        plans = planner.enumerate_plans(
            request(qos=EdgeRequirement(privacy=True, channel="rmi")), limit=3
        )
        assert len(plans) <= 3

    def test_infeasible_request_enumerates_nothing(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        assert planner.enumerate_plans(request(interface="GhostI")) == []

    def test_every_enumerated_plan_is_well_formed(self, shared_scenario):
        """Invariant: all links reference planned or existing providers,
        every planned component's requirements are wired, and the client
        edge exists."""
        planner = shared_scenario.psf.planner()
        existing = {i.name for i in planner.existing}
        plans = planner.enumerate_plans(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        for plan in plans:
            ids = {p.instance_id for p in plan.components}
            consumers = {l.consumer for l in plan.links}
            assert "client" in consumers
            for link in plan.links:
                assert link.provider in ids | existing
                assert link.consumer == "client" or link.consumer in ids
            for planned in plan.components:
                wired = {
                    l.interface for l in plan.links if l.consumer == planned.instance_id
                }
                needed = {p.interface for p in planned.component.requires}
                assert needed <= wired

    def test_enumerated_plans_deploy_and_work(self, scenario_factory):
        """Not just the heuristic favourite: an alternative configuration
        from the enumeration also deploys and serves."""
        scenario = scenario_factory()
        planner = scenario.psf.planner()
        plans = planner.enumerate_plans(
            request(qos=EdgeRequirement(privacy=True, channel="rmi"))
        )
        encryptor_plan = next(
            p for p in plans if sorted(p.deployed_names()) == ["Decryptor", "Encryptor"]
        )
        deployment = scenario.psf.deployer.deploy(encryptor_plan)
        access = deployment.client_access()
        access.sendMail({"sender": "Bob", "recipient": "Alice", "subject": "s", "body": "b"})
        assert scenario.server.fetchMail("Alice")


class TestOptimalSelection:
    def test_optimal_never_costlier_than_heuristic(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        for qos in (
            EdgeRequirement(privacy=True, channel="rmi"),
            EdgeRequirement(min_bandwidth_bps=50e6),
            EdgeRequirement(),
        ):
            heuristic = planner.plan(request(qos=qos))
            optimal = planner.plan(request(qos=qos), optimize=True)
            assert planner.plan_cost(optimal) <= planner.plan_cost(heuristic) + 1e-9

    def test_optimize_raises_when_infeasible(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        with pytest.raises(PlanningError):
            planner.plan(request(interface="GhostI"), optimize=True)

    def test_cost_prefers_fewer_components(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        optimal = planner.plan(
            request(qos=EdgeRequirement(privacy=True, channel="rmi")), optimize=True
        )
        assert optimal.deployed_names() == ["ViewMailServer"]

    def test_cost_counts_path_delay(self, shared_scenario):
        planner = shared_scenario.psf.planner()
        direct = planner.plan(request())
        assert planner.plan_cost(direct) > 0  # WAN latency shows up
