"""Component model tests: ports, property satisfaction, view derivation."""

from __future__ import annotations

import pytest

from repro.psf.component import ComponentType, Port, view_component
from repro.views.spec import (
    InterfaceMode,
    InterfaceRestriction,
    ViewSpec,
)


class TestPort:
    def test_boolean_property_requires_equality(self):
        port = Port("MailI", {"encrypted": True})
        assert port.satisfies({"encrypted": True})
        assert not port.satisfies({"encrypted": False})

    def test_numeric_property_is_minimum(self):
        port = Port("MailI", {"throughput": 100})
        assert port.satisfies({"throughput": 50})
        assert not port.satisfies({"throughput": 200})

    def test_missing_property_fails(self):
        assert not Port("MailI").satisfies({"encrypted": True})

    def test_no_requirements_always_satisfied(self):
        assert Port("MailI").satisfies({})

    def test_string_property_equality(self):
        port = Port("MailI", {"codec": "json"})
        assert port.satisfies({"codec": "json"})
        assert not port.satisfies({"codec": "xml"})


class TestComponentType:
    def test_implements_interface(self):
        component = ComponentType("C", implements=(Port("A"), Port("B")))
        assert component.implements_interface("A", {})
        assert not component.implements_interface("Z", {})

    def test_implemented_port_lookup(self):
        port = Port("A", {"x": 1})
        component = ComponentType("C", implements=(port,))
        assert component.implemented_port("A") is port
        assert component.implemented_port("Z") is None

    def test_str(self):
        component = ComponentType(
            "Enc", implements=(Port("SecMailI"),), requires=(Port("MailI"),)
        )
        assert "SecMailI" in str(component) and "MailI" in str(component)


class TestViewComponent:
    def _base(self):
        return ComponentType(
            "MailServer",
            implements=(Port("MailI"),),
            cpu_demand=50,
        )

    def test_local_only_view_requires_origin_for_replication(self):
        spec = ViewSpec(
            name="CacheView",
            represents="MailServer",
            interfaces=(InterfaceRestriction("MailI", InterfaceMode.LOCAL),),
            replicated_fields=("mailboxes",),
        )
        derived = view_component(self._base(), spec)
        assert derived.is_view
        assert [p.interface for p in derived.implements] == ["MailI"]
        assert [p.interface for p in derived.requires] == ["MailI"]
        assert derived.requires[0].properties["view_origin"] == "MailServer"
        assert derived.requires[0].properties["privacy"] is True

    def test_remote_interfaces_become_requirements(self):
        spec = ViewSpec(
            name="GatewayView",
            represents="MailServer",
            interfaces=(InterfaceRestriction("MailI", InterfaceMode.SWITCHBOARD),),
        )
        derived = view_component(self._base(), spec)
        assert [p.interface for p in derived.requires] == ["MailI"]

    def test_pure_local_view_with_no_state_requires_nothing(self):
        spec = ViewSpec(
            name="StatelessView",
            represents="MailServer",
            interfaces=(InterfaceRestriction("MailI", InterfaceMode.LOCAL),),
        )
        derived = view_component(self._base(), spec)
        assert derived.requires == ()

    def test_cpu_override(self):
        spec = ViewSpec(name="V", represents="MailServer")
        derived = view_component(self._base(), spec, cpu_demand=5)
        assert derived.cpu_demand == 5

    def test_inherits_base_role_and_constraints(self):
        from repro.drbac.model import Role
        from repro.drbac.query import Constraint

        base = ComponentType(
            "S",
            implements=(Port("I"),),
            component_role=Role("Mail", "S"),
            node_constraints=(Constraint.parse("Mail.Node"),),
        )
        derived = view_component(base, ViewSpec(name="V", represents="S"))
        assert derived.component_role == Role("Mail", "S")
        assert derived.node_constraints == base.node_constraints
