"""Per-call ACL baseline tests (the Legion-MayI foil for single sign-on)."""

from __future__ import annotations

import pytest

from repro.baselines.acl_per_call import PerCallGuardedService
from repro.errors import AuthorizationError


class Store:
    def __init__(self):
        self.items = []

    def read(self):
        return list(self.items)

    def write(self, item):
        self.items.append(item)
        return len(self.items)


class TestPerCallChecks:
    def test_authorized_call_passes(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        service = PerCallGuardedService(Store(), engine, "Comp.NY.Member")
        assert service.invoke("Alice", "write", ["x"]) == 1

    def test_unauthorized_denied(self, engine):
        service = PerCallGuardedService(Store(), engine, "Comp.NY.Member")
        with pytest.raises(AuthorizationError):
            service.invoke("Mallory", "read")
        assert service.stats.denials == 1

    def test_every_call_runs_a_proof(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        service = PerCallGuardedService(Store(), engine, "Comp.NY.Member")
        for _ in range(5):
            service.invoke("Alice", "read")
        assert service.stats.proofs_run == 5
        assert service.stats.calls == 5

    def test_per_method_roles(self, engine):
        engine.delegate("Comp.NY", "Reader", "Comp.NY.Member")
        service = PerCallGuardedService(
            Store(),
            engine,
            "Comp.NY.Member",
            method_roles={"write": "Comp.NY.Admin"},
        )
        assert service.invoke("Reader", "read") == []
        with pytest.raises(AuthorizationError):
            service.invoke("Reader", "write", ["x"])

    def test_revocation_takes_effect_immediately(self, engine):
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        service = PerCallGuardedService(Store(), engine, "Comp.NY.Member")
        service.invoke("Alice", "read")
        engine.revoke(cred)
        with pytest.raises(AuthorizationError):
            service.invoke("Alice", "read")

    def test_presented_credentials(self, engine):
        leaf = engine.delegate("Comp.SD", "Bob", "Comp.SD.Member", publish=False)
        engine.delegate("Comp.NY", "Comp.SD.Member", "Comp.NY.Member")
        service = PerCallGuardedService(Store(), engine, "Comp.NY.Member")
        assert service.invoke("Bob", "read", credentials=[leaf]) == []
