"""GSI baseline tests: the P x U storage model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.gsi import GsiDeployment


class TestStorage:
    @given(st.integers(0, 12), st.integers(0, 12))
    def test_records_are_p_times_u(self, p, u):
        deployment = GsiDeployment()
        for i in range(p):
            deployment.add_provider(f"prov{i}")
        for j in range(u):
            deployment.add_user(f"user{j}")
        assert deployment.total_records == p * u

    def test_late_provider_sync_restores_invariant(self):
        deployment = GsiDeployment()
        deployment.add_user("u1")
        deployment.add_user("u2")
        deployment.add_provider("p1")
        deployment.sync()
        assert deployment.total_records == 2


class TestAuthorization:
    def test_enrolled_user_authorized_everywhere(self):
        deployment = GsiDeployment()
        deployment.add_provider("p1")
        deployment.add_provider("p2")
        deployment.add_user("alice")
        assert deployment.authorize("p1", "alice")
        assert deployment.authorize("p2", "alice")

    def test_unknown_user_denied(self):
        deployment = GsiDeployment()
        deployment.add_provider("p1")
        assert not deployment.authorize("p1", "mallory")

    def test_gridmap_maps_to_local_account(self):
        deployment = GsiDeployment()
        provider = deployment.add_provider("p1")
        deployment.add_user("alice")
        assert provider._gridmap["alice"].local_account == "p1:alice"
