"""CAS baseline tests: the C x (P + U) storage model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.cas import CasDeployment


class TestStorage:
    @given(st.integers(1, 6), st.integers(0, 10), st.integers(0, 10))
    def test_records_are_c_times_p_plus_u(self, c, p, u):
        deployment = CasDeployment()
        for k in range(c):
            deployment.add_community(f"com{k}")
        for i in range(p):
            deployment.add_provider(f"prov{i}")  # trusts all communities
        for j in range(u):
            deployment.enroll_user(f"user{j}")  # joins all communities
        assert deployment.total_records == c * (p + u)


class TestAuthorization:
    def _world(self):
        deployment = CasDeployment()
        deployment.add_community("science")
        deployment.add_provider("p1")
        deployment.enroll_user("alice", ["science"])
        return deployment

    def test_member_authorized(self):
        deployment = self._world()
        assert deployment.authorize("p1", "science", "alice")

    def test_non_member_denied(self):
        deployment = self._world()
        assert not deployment.authorize("p1", "science", "mallory")

    def test_untrusted_community_denied(self):
        deployment = self._world()
        deployment.add_community("games")
        deployment.enroll_user("bob", ["games"])
        provider = deployment.providers["p1"]
        assert not provider.authorize(
            deployment.communities["games"].issue_capability("bob")
        )

    def test_capability_format(self):
        deployment = self._world()
        cap = deployment.communities["science"].issue_capability("alice")
        assert cap == "cas:science:alice"

    def test_garbage_capability_denied(self):
        deployment = self._world()
        assert not deployment.providers["p1"].authorize("not-a-cap")
        assert not deployment.providers["p1"].authorize(None)
