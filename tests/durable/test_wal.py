"""WAL framing, torn-tail truncation, and compaction unit + property tests.

The two properties the recovery protocol leans on:

* **replay idempotence** — decoding (or re-loading) the same disk image
  any number of times yields the identical record sequence;
* **torn-tail safety** — ripping *any* suffix off the log recovers a
  valid prefix of what was appended, never a corrupt or reordered
  record.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durable.disk import SimDisk
from repro.durable.wal import (
    WriteAheadLog,
    decode_records,
    digest_state,
    encode_record,
)

records_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "seq": st.integers(0, 2**31),
            "kind": st.sampled_from(["publish", "revoke"]),
            "payload": st.dictionaries(
                st.sampled_from(["id", "home", "x"]),
                st.text(max_size=8) | st.integers(-5, 5),
                max_size=3,
            ),
        }
    ),
    max_size=12,
)


class TestSimDisk:
    def test_append_read_replace(self):
        disk = SimDisk()
        disk.append("wal", b"abc")
        disk.append("wal", b"def")
        assert disk.read("wal") == b"abcdef"
        assert disk.size("wal") == 6
        disk.replace("snapshot", b"xyz")
        disk.replace("snapshot", b"uv")
        assert disk.read("snapshot") == b"uv"
        assert disk.read("missing") == b""

    def test_truncate_tail_clamps_and_rejects_negative(self):
        disk = SimDisk()
        disk.append("wal", b"0123456789")
        assert disk.truncate_tail("wal", 4) == 4
        assert disk.read("wal") == b"012345"
        assert disk.truncate_tail("wal", 100) == 6
        assert disk.read("wal") == b""
        with pytest.raises(ValueError):
            disk.truncate_tail("wal", -1)


class TestFraming:
    def test_roundtrip(self):
        payloads = [{"seq": i, "kind": "publish", "payload": {"id": f"c{i}"}}
                    for i in range(5)]
        data = b"".join(encode_record(p) for p in payloads)
        records, consumed, torn = decode_records(data)
        assert records == payloads
        assert consumed == len(data)
        assert torn == 0

    def test_corrupt_crc_stops_at_valid_prefix(self):
        good = encode_record({"seq": 1})
        bad = bytearray(encode_record({"seq": 2}))
        bad[-1] ^= 0xFF  # flip a body byte: crc mismatch
        records, consumed, torn = decode_records(good + bytes(bad))
        assert records == [{"seq": 1}]
        assert consumed == len(good)
        assert torn == len(bad)

    @given(records=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_decode_is_idempotent(self, records):
        data = b"".join(encode_record(r) for r in records)
        assert decode_records(data) == decode_records(data)
        decoded, consumed, torn = decode_records(data)
        assert decoded == records
        assert (consumed, torn) == (len(data), 0)

    @given(records=records_strategy, cut=st.integers(0, 400))
    @settings(max_examples=100, deadline=None)
    def test_any_torn_tail_recovers_a_valid_prefix(self, records, cut):
        data = b"".join(encode_record(r) for r in records)
        torn_data = data[: max(0, len(data) - cut)]
        decoded, consumed, torn = decode_records(torn_data)
        assert decoded == records[: len(decoded)]  # a prefix, in order
        assert consumed + torn == len(torn_data)
        # Re-decoding the consumed prefix alone is stable and complete.
        assert decode_records(torn_data[:consumed]) == (decoded, consumed, 0)


class TestWriteAheadLog:
    def test_load_truncates_torn_suffix_off_disk(self):
        disk = SimDisk()
        wal = WriteAheadLog(disk, compact_every=1000)
        for i in range(4):
            wal.append({"seq": i})
        disk.append("wal", b"\x00\x00\x00\x09partial")  # torn final frame
        snapshot, records, torn_bytes = wal.load()
        assert snapshot is None
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert torn_bytes == 11
        # The torn suffix is gone from disk: a second load is clean.
        assert wal.load() == (None, records, 0)

    def test_compaction_snapshots_and_resets_the_log(self):
        disk = SimDisk()
        wal = WriteAheadLog(disk, compact_every=3)
        state = {"creds": []}
        for i in range(3):
            state["creds"].append(i)
            wal.append({"seq": i})
            wal.maybe_compact(lambda: dict(state))
        snapshot, records, _ = wal.load()
        assert snapshot == {"creds": [0, 1, 2]}
        assert records == []  # folded into the snapshot
        wal.append({"seq": 3})
        snapshot, records, _ = wal.load()
        assert snapshot == {"creds": [0, 1, 2]}
        assert [r["seq"] for r in records] == [3]

    def test_truncate_tail_then_load(self):
        disk = SimDisk()
        wal = WriteAheadLog(disk, compact_every=1000)
        for i in range(6):
            wal.append({"seq": i})
        wal.truncate_tail(1)  # tears into the final frame
        _, records, _ = wal.load()
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]


class TestDigest:
    def test_digest_is_order_sensitive_and_stable(self):
        a = digest_state({"creds": ["x", "y"]})
        assert a == digest_state({"creds": ["x", "y"]})
        assert a != digest_state({"creds": ["y", "x"]})
