"""DurableNode recovery protocol tests: replay, catch-up, cache scrub.

The end-to-end invariant: after ``restart`` the node's observable
authorization behaviour is identical to a node that never crashed —
including when revocations landed while it was down and the WAL tail
was torn off.  The cache regression class pins the exact rebuild of the
:class:`~repro.drbac.cache.CachedAuthorizer` watch table and entries
gauge, since a leaked watch or stale positive there is invisible to
coarser tests until a revocation goes unheard.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.clock import ManualClock
from repro.drbac import CachedAuthorizer, DrbacEngine
from repro.durable import DurableNode, UpdateFeed
from repro.errors import AuthorizationError
from repro.obs import names as metric_names


class World:
    """One engine + cache + durable node fed by a shared update stream."""

    def __init__(self, key_store, feed, *, mutation=None, compact_every=64):
        self.clock = ManualClock()
        self.engine = DrbacEngine(
            key_store=key_store, clock=self.clock, incremental=True
        )
        self.cache = CachedAuthorizer(self.engine, max_entries=64, shards=2)
        self.node = DurableNode(
            engine=self.engine, cache=self.cache, feed=feed,
            compact_every=compact_every, mutation=mutation,
        )

    def sign(self, issuer, subject, role, *, ttl=None):
        expires_at = self.clock.now() + ttl if ttl is not None else None
        return self.engine.delegate(
            issuer, subject, role, expires_at=expires_at, publish=False
        )

    def holds(self, subject, role) -> bool:
        try:
            self.cache.authorize(subject, role)
            return True
        except AuthorizationError:
            return False


@pytest.fixture()
def feed():
    return UpdateFeed()


@pytest.fixture()
def world(key_store, feed):
    return World(key_store, feed)


class TestLivePath:
    def test_feed_updates_reach_engine_and_wal(self, world, feed):
        cred = world.sign("OrgA", "Alice", "OrgA.Reader")
        feed.publish(cred)
        assert world.holds("Alice", "OrgA.Reader")
        assert world.node.last_seqno == feed.seqno == 1
        assert world.node.published_ids() == {cred.credential_id}
        feed.revoke(cred)
        assert not world.holds("Alice", "OrgA.Reader")
        assert world.node.last_seqno == 2

    def test_rejects_unknown_mutation(self, key_store, feed):
        with pytest.raises(ValueError, match="unknown recovery mutation"):
            DurableNode(
                engine=DrbacEngine(key_store=key_store, clock=ManualClock()),
                feed=feed, mutation="made-up",
            )


class TestRecovery:
    def test_restart_restores_pre_crash_verdicts(self, world, feed):
        reader = world.sign("OrgA", "Alice", "OrgA.Reader")
        member = world.sign("OrgB", "Bob", "OrgB.Member")
        feed.publish(reader)
        feed.publish(member)
        feed.revoke(member)
        digest = world.node.state_digest()
        world.node.crash()
        assert not world.node.up
        report = world.node.restart()
        assert world.node.up
        assert world.node.state_digest() == digest
        assert report.wal_records_replayed == 3
        assert world.holds("Alice", "OrgA.Reader")
        assert not world.holds("Bob", "OrgB.Member")

    def test_revocation_during_downtime_is_caught_up(self, world, feed):
        cred = world.sign("OrgA", "Alice", "OrgA.Reader")
        feed.publish(cred)
        assert world.holds("Alice", "OrgA.Reader")
        world.node.crash()
        feed.revoke(cred)  # lands on the feed while the node is dead
        report = world.node.restart()
        assert report.catchup_updates == 1
        assert not world.holds("Alice", "OrgA.Reader")

    def test_torn_tail_is_repaired_by_catchup(self, world, feed):
        creds = [
            world.sign("OrgA", name, "OrgA.Reader")
            for name in ("Alice", "Bob", "Carol")
        ]
        for cred in creds:
            feed.publish(cred)
        digest = world.node.state_digest()
        world.node.crash()
        # A one-byte tear invalidates the whole final frame; catch-up
        # must re-pull it from the feed by sequence number.
        report = world.node.restart(torn_tail_bytes=1)
        assert report.torn_bytes > 1
        assert report.catchup_updates >= 1
        assert world.node.state_digest() == digest
        for name in ("Alice", "Bob", "Carol"):
            assert world.holds(name, "OrgA.Reader")

    def test_recover_is_idempotent(self, world, feed):
        cred = world.sign("OrgA", "Alice", "OrgA.Reader")
        feed.publish(cred)
        feed.revoke(world.sign("OrgB", "Bob", "OrgB.Member"))
        world.node.crash()
        world.node.restart()
        digest = world.node.state_digest()
        world.node.recover()  # second pass over identical durable state
        assert world.node.state_digest() == digest
        assert world.holds("Alice", "OrgA.Reader")
        assert world.node.recoveries == 2

    def test_compaction_bounds_replay(self, key_store, feed):
        world = World(key_store, feed, compact_every=4)
        for i in range(10):
            feed.publish(world.sign("OrgA", f"user{i}", "OrgA.Reader"))
        world.node.crash()
        report = world.node.restart()
        assert report.snapshot_creds == 8  # two compactions folded 8 in
        assert report.wal_records_replayed == 2
        assert world.holds("user0", "OrgA.Reader")
        assert world.holds("user9", "OrgA.Reader")

    def test_version_stays_monotonic_across_recovery(self, world, feed):
        feed.publish(world.sign("OrgA", "Alice", "OrgA.Reader"))
        version = world.engine.repository.version
        world.node.crash()
        world.node.restart()
        assert world.engine.repository.version >= version


class TestSkipCatchupMutation:
    def test_mutant_serves_stale_grants(self, key_store):
        feed = UpdateFeed()
        mutant = World(key_store, feed, mutation="skip-catchup")
        control = World(key_store, feed)
        cred = mutant.sign("OrgA", "Alice", "OrgA.Reader")
        feed.publish(cred)
        mutant.node.crash()
        control.node.crash()
        feed.revoke(cred)
        mutant.node.restart()
        control.node.restart()
        # The mutant missed the downtime revocation and wrongly grants;
        # the honest node caught up and denies.  Exactly the divergence
        # the differential drill must flag.
        assert mutant.holds("Alice", "OrgA.Reader")
        assert not control.holds("Alice", "OrgA.Reader")
        assert mutant.node.state_digest() != control.node.state_digest()


class TestCacheRebuild:
    """Satellite regression: entries gauge and watch table after recovery."""

    def _watch_table_invariant(self, cache):
        """_watches must hold exactly the live entries' proof credentials."""
        expected = set()
        entries = 0
        for shard in cache._shards:
            for entry in shard.entries.values():
                entries += 1
                if entry.result is not None:
                    expected.update(
                        d.credential_id
                        for d in entry.result.proof.all_delegations()
                    )
        assert set(cache._watches) == expected
        return entries

    def test_gauge_and_watch_table_exactly_rebuilt(self, key_store, feed):
        with obs.scoped() as registry:
            world = World(key_store, feed)
            alice = world.sign("OrgA", "Alice", "OrgA.Reader")
            bob = world.sign("OrgB", "Bob", "OrgB.Member")
            feed.publish(alice)
            feed.publish(bob)
            assert world.holds("Alice", "OrgA.Reader")
            assert world.holds("Bob", "OrgB.Member")
            assert not world.holds("mallory", "OrgA.Reader")  # negative entry
            world.node.crash()
            feed.revoke(bob)  # revoked while down: no stale positive allowed
            report = world.node.restart()
            assert report.cache_kept >= 1
            entries = self._watch_table_invariant(world.cache)
            assert len(world.cache) == entries
            assert registry.gauge(metric_names.CACHE_ENTRIES).value == entries
            assert not world.holds("Bob", "OrgB.Member")

    def test_recovered_watches_still_hear_revocations(self, key_store, feed):
        world = World(key_store, feed)
        cred = world.sign("OrgA", "Alice", "OrgA.Reader")
        feed.publish(cred)
        assert world.holds("Alice", "OrgA.Reader")
        world.node.crash()
        world.node.restart()
        assert world.holds("Alice", "OrgA.Reader")  # kept across recovery
        feed.revoke(cred)  # post-recovery revocation through fresh watches
        assert not world.holds("Alice", "OrgA.Reader")

    def test_no_watches_leak_across_repeated_recoveries(self, key_store, feed):
        world = World(key_store, feed)
        for i in range(6):
            feed.publish(world.sign("OrgA", f"user{i}", "OrgA.Reader"))
            world.holds(f"user{i}", "OrgA.Reader")
        hub = world.engine.monitor_hub
        for _ in range(3):
            world.node.crash()
            world.node.restart()
            for i in range(6):
                assert world.holds(f"user{i}", "OrgA.Reader")
        self._watch_table_invariant(world.cache)
        # Each credential has exactly one hub channel feeding cache watch,
        # proof monitors, and incremental engine — recoveries must not
        # stack duplicate subscriptions.
        assert len(hub._channels) <= 6 + len(world.cache._watches)
