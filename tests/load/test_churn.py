"""Churn-bench unit tests: determinism, schedule shape, CLI contract."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.load.churn import REPORT_SCHEMA, ChurnBench, generate_schedule


class TestSchedule:
    def test_seeded_and_deterministic(self):
        assert generate_schedule(3, 200) == generate_schedule(3, 200)
        assert generate_schedule(3, 200) != generate_schedule(4, 200)

    def test_mix_has_every_op_kind(self):
        kinds = {op[0] for op in generate_schedule(7, 300)}
        assert kinds == {"delegate", "revoke", "authorize", "advance"}


class TestChurnBench:
    def test_report_is_deterministic(self, key_store):
        first = ChurnBench(seed=5, ops=150, key_store=key_store).run()
        second = ChurnBench(seed=5, ops=150, key_store=key_store).run()
        assert first == second

    def test_arms_agree_and_incremental_wins(self, key_store):
        report = ChurnBench(seed=7, ops=300, key_store=key_store).run()
        assert report["schema"] == REPORT_SCHEMA
        assert report["transcripts_match"] and report["oracle_agrees"]
        full, incr = report["arms"]["full"], report["arms"]["incremental"]
        assert (full["grants"], full["denials"]) == (incr["grants"], incr["denials"])
        assert incr["work_units"] < full["work_units"]
        assert report["speedup"]["authorize_after_revoke"] > 1.0


class TestCli:
    def test_bench_churn_json(self, capsys, tmp_path):
        out = tmp_path / "churn.json"
        code = main(["bench-churn", "--seed", "7", "--ops", "150", "--json",
                     "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == REPORT_SCHEMA
        assert json.loads(capsys.readouterr().out) == report

    def test_bench_churn_human_mode_summarizes_both_arms(self, capsys):
        assert main(["bench-churn", "--seed", "7", "--ops", "150"]) == 0
        text = capsys.readouterr().out
        assert "speedup" in text
        assert "full" in text and "incremental" in text
        assert "transcripts match: yes" in text

    def test_bench_churn_rejects_unknown_argument(self, capsys):
        assert main(["bench-churn", "--bogus"]) == 2
        assert "usage" in capsys.readouterr().err
