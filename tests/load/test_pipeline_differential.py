"""The differential guarantee: fast mode changes the clock, not the data.

Pipelining reorders completions and batching coalesces wire transfers,
but neither may change what any client *observes*: per-client results in
issue order must be byte-identical between a serial run and a
pipelined + batched run of the same seeded workload.  These tests pin
that guarantee, the determinism of the report, and the throughput win
the optimisations exist for.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.load import LoadGenerator, run_bench
from repro.load.generator import transcript_digest

SEED = 7
CLIENTS = 4
REQUESTS = 25


@pytest.fixture(scope="module")
def generator(key_store):
    return LoadGenerator(
        seed=SEED, clients=CLIENTS, requests=REQUESTS, key_store=key_store
    )


@pytest.fixture(scope="module")
def serial(generator):
    return generator.run(pipelined=False, batching=False)


@pytest.fixture(scope="module")
def fast(generator):
    return generator.run(pipelined=True, batching=True)


class TestDifferential:
    def test_transcripts_byte_identical(self, serial, fast):
        assert serial.transcripts == fast.transcripts
        assert transcript_digest(serial.transcripts) == transcript_digest(
            fast.transcripts
        )

    def test_every_client_produced_every_result(self, serial):
        assert len(serial.transcripts) == CLIENTS
        assert all(len(t) == REQUESTS for t in serial.transcripts)

    def test_same_logical_frames_either_way(self, serial, fast):
        # Batching changes wire framing, never the logical frame stream.
        assert serial.net["messages_sent"] == fast.net["messages_sent"]
        assert serial.net["bytes_sent"] == fast.net["bytes_sent"]
        assert serial.net["messages_delivered"] == fast.net["messages_delivered"]

    def test_errors_are_part_of_the_transcript(self, serial, fast):
        # The seeded workload includes dRBAC denials and view-narrowing
        # denials; both must appear identically in both modes.
        assert serial.errors == fast.errors
        assert serial.errors > 0
        flat = [entry for t in serial.transcripts for entry in t]
        assert any("AuthorizationError" in entry for entry in flat)
        assert any("no callable method" in entry for entry in flat)

    def test_pipelining_actually_pipelines(self, serial, fast):
        assert serial.depth == 1
        assert fast.depth > 1
        assert fast.net["batches_sent"] > 0
        assert fast.net["frames_coalesced"] > 0
        assert serial.net["batches_sent"] == 0


class TestTraceTopology:
    """The differential guarantee extended to distributed traces: the
    fast path may change timing and wire framing, but not the causal
    shape — same calls from the same clients, each stitched to the same
    number of server-side spans."""

    @pytest.fixture(scope="class")
    def traced_runs(self, key_store):
        generator = LoadGenerator(
            seed=SEED, clients=2, requests=10, key_store=key_store
        )
        # dist must be on in the surrounding scope: the generator's own
        # scoped block inherits it (it never passes dist explicitly).
        with obs.scoped(enabled=True, dist=True):
            serial = generator.run(pipelined=False, batching=False)
            fast = generator.run(pipelined=True, batching=True)
        return serial, fast

    def test_topology_captured_only_under_dist(self, serial):
        # The module-scope runs execute with dist off: no wire tracing,
        # no topology, and — critically — unchanged frame bytes.
        assert serial.topology is None

    def test_fast_path_preserves_span_topology(self, traced_runs):
        serial, fast = traced_runs
        assert serial.topology is not None
        assert fast.topology is not None
        assert serial.topology == fast.topology

    def test_every_call_stitched_to_one_server_span(self, traced_runs):
        serial, _fast = traced_runs
        assert len(serial.topology) == 2 * 10
        assert all(servers == 1 for _n, _t, _m, servers in serial.topology)

    def test_transcripts_still_match_with_tracing_on(self, traced_runs):
        serial, fast = traced_runs
        assert serial.transcripts == fast.transcripts


class TestThroughput:
    def test_at_least_2x_speedup(self, serial, fast):
        assert fast.makespan_s > 0
        assert serial.makespan_s / fast.makespan_s >= 2.0

    def test_cache_worked_under_load(self, fast):
        assert fast.cache["hits"] > 0
        assert fast.cache["negative_hits"] > 0
        assert fast.cache["hit_rate"] > 0.5


class TestReportDeterminism:
    def test_same_seed_byte_identical_reports(self, key_store):
        reports = [
            json.dumps(
                run_bench(
                    seed=11, clients=2, requests=8, key_store=key_store
                ),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_different_seeds_differ(self, key_store):
        a = run_bench(seed=11, clients=2, requests=8, key_store=key_store)
        b = run_bench(seed=12, clients=2, requests=8, key_store=key_store)
        assert a["transcript_digest"] != b["transcript_digest"]

    def test_report_shape(self, key_store):
        report = run_bench(seed=3, clients=2, requests=6, key_store=key_store)
        assert report["schema"] == "bench-load/v1"
        assert report["transcripts_match"] is True
        for mode in ("serial", "pipelined"):
            section = report[mode]
            assert {"p50", "p95", "p99", "mean"} <= section["latency_s"].keys()
            assert section["ops"] == 2 * 6
