"""Recovery-bench unit tests: determinism, gates, mutation, CLI contract."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.load.recovery import (
    REPORT_SCHEMA,
    RecoveryBench,
    generate_schedule,
)


class TestSchedule:
    def test_seeded_and_deterministic(self):
        assert generate_schedule(3, 120, 2) == generate_schedule(3, 120, 2)
        assert generate_schedule(3, 120, 2) != generate_schedule(4, 120, 2)

    def test_every_crash_cycle_is_complete(self):
        schedule = generate_schedule(7, 120, 3)
        kinds = [op[0] for op in schedule]
        assert kinds.count("crash") == 3
        assert kinds.count("restart") == 3
        assert kinds.count("battery") == 3
        # No authorization is attempted inside a downtime window.
        down = False
        for op in schedule:
            if op[0] == "crash":
                down = True
            elif op[0] == "restart":
                down = False
            elif op[0] == "authorize":
                assert not down

    def test_downtime_windows_carry_revocations(self):
        schedule = generate_schedule(7, 240, 4)
        down = False
        downtime_kinds = set()
        for op in schedule:
            if op[0] == "crash":
                down = True
            elif op[0] == "restart":
                down = False
            elif down:
                downtime_kinds.add(op[0])
        assert "revoke" in downtime_kinds


class TestRecoveryBench:
    def test_report_is_deterministic(self, key_store):
        first = RecoveryBench(seed=5, ops=120, crashes=2, key_store=key_store).run()
        second = RecoveryBench(seed=5, ops=120, crashes=2, key_store=key_store).run()
        assert first == second

    def test_gates_pass_and_recovery_is_accounted(self, key_store):
        report = RecoveryBench(seed=7, ops=180, crashes=3, key_store=key_store).run()
        assert report["schema"] == REPORT_SCHEMA
        assert report["ok"]
        assert report["verdicts_match"]
        assert report["oracle_agrees"]
        assert report["digests_match"]
        assert len(report["recoveries"]) == 3
        total = report["recovery"]
        assert total["work_units"] >= total["wal_records_replayed"]
        assert total["catchup_updates"] > 0  # downtime updates were pulled
        assert report["verdicts"]["checked"] > 0

    def test_skip_catchup_mutation_fails_the_gates(self, key_store):
        report = RecoveryBench(
            seed=7, ops=180, crashes=3, key_store=key_store,
            mutation="skip-catchup",
        ).run()
        assert not report["ok"]
        assert not report["digests_match"]


class TestCli:
    def test_bench_recovery_json(self, capsys, tmp_path):
        out = tmp_path / "recovery.json"
        code = main(["bench-recovery", "--seed", "7", "--ops", "120",
                     "--crashes", "2", "--json", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == REPORT_SCHEMA
        assert json.loads(capsys.readouterr().out) == report

    def test_bench_recovery_human_mode_lists_restarts(self, capsys):
        assert main(["bench-recovery", "--seed", "7", "--ops", "120",
                     "--crashes", "2"]) == 0
        text = capsys.readouterr().out
        assert "restart 0:" in text and "restart 1:" in text
        assert "[PASS] verdicts_match" in text
        assert "[PASS] digests_match" in text

    def test_bench_recovery_mutation_exits_nonzero(self, capsys):
        assert main(["bench-recovery", "--seed", "7", "--ops", "120",
                     "--crashes", "2", "--mutate", "skip-catchup"]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_bench_recovery_rejects_unknown_argument(self, capsys):
        assert main(["bench-recovery", "--bogus"]) == 2
        assert "usage" in capsys.readouterr().err
