"""CLI tests for ``repro trace`` and the simtest flight-recorder dump."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main, run_simtest, run_trace


class TestTraceCommand:
    def test_stdout_is_the_trace_json(self, capsys):
        assert run_trace(["--seed", "3"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["otherData"]["schema"] == "repro-trace/v1"
        assert trace["otherData"]["seed"] == 3
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_out_writes_file_and_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert run_trace(["--seed", "3", "--chaos", "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["otherData"]["chaos"] is True
        summary = capsys.readouterr().out
        assert "spans" in summary and "perfetto" in summary

    def test_dispatch_through_main(self, capsys):
        assert main(["trace", "--seed", "3"]) == 0
        json.loads(capsys.readouterr().out)

    def test_bad_arguments(self, capsys):
        assert run_trace(["--seed"]) == 2
        assert run_trace(["--seed", "x"]) == 2
        assert run_trace(["--frobnicate"]) == 2


@pytest.mark.slow
class TestSimtestFlightDump:
    def test_divergence_writes_flight_beside_the_repro(self, tmp_path, capsys):
        out = tmp_path / "repro.json"
        code = run_simtest([
            "--seed", "7", "--steps", "300",
            "--mutate", "ignore-revoke", "--out", str(out),
        ])
        assert code == 1
        assert out.exists()
        flight_path = tmp_path / "repro-flight.json"
        assert flight_path.exists()
        flight = json.loads(flight_path.read_text())
        assert flight["schema"] == "flightrec/v1"
        assert flight["reason"] == "simtest.divergence"
        assert flight["events"], "flight dump carries the recent event tail"
        kinds = {e["kind"] for e in flight["events"]}
        assert "check.op" in kinds
