"""Shared fixtures.

RSA key generation dominates test time, so a session-scoped
:class:`~repro.crypto.KeyStore` with small (but real) 512-bit keys is
shared by every test that doesn't specifically exercise key generation,
and the full mail scenario is built once for read-only assertions
(mutating tests request a fresh one via ``scenario_factory``).

The autouse ``hermetic`` fixture pins the process-global id counters
(connection ids, credential serials, planner instance ids) to fresh
``count(1)`` iterators around every test and resets the metrics registry
afterwards, so no test observes ids or metrics leaked by whichever tests
happened to run before it — the same guarantee the chaos/load/simtest
harnesses provide for their own runs.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.clock import ManualClock
from repro.crypto import KeyStore
from repro.drbac import DrbacEngine
from repro.hermetic import hermetic_counters
from repro.mail import build_scenario

TEST_KEY_BITS = 512


@pytest.fixture(autouse=True)
def hermetic():
    """Fresh id counters per test; metrics registry reset afterwards."""
    with hermetic_counters():
        yield
    obs.reset()


@pytest.fixture(scope="session")
def key_store() -> KeyStore:
    return KeyStore(key_bits=TEST_KEY_BITS)


@pytest.fixture()
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture()
def engine(key_store: KeyStore, clock: ManualClock) -> DrbacEngine:
    """A fresh dRBAC engine sharing the session key cache."""
    return DrbacEngine(key_store=key_store, clock=clock)


@pytest.fixture(scope="session")
def shared_scenario(key_store: KeyStore):
    """One mail scenario for read-only assertions (do not mutate)."""
    return build_scenario(key_store=key_store)


@pytest.fixture()
def scenario_factory(key_store: KeyStore):
    """Builder for tests that deploy, revoke, or otherwise mutate."""

    def build(**kwargs):
        kwargs.setdefault("key_store", key_store)
        return build_scenario(**kwargs)

    return build
