"""End-to-end chaos acceptance: recovery per fault class, determinism."""

from __future__ import annotations

import json

import pytest

from repro.errors import FaultError
from repro.faults import ChaosRunner, FaultKind


def _injected_classes(report):
    return {
        FaultKind(entry["kind"]).fault_class
        for entry in report.injections
        if entry["phase"] == "inject"
    }


@pytest.fixture(scope="module")
def seed7_report(key_store):
    runner = ChaosRunner(seed=7, duration=5, key_store=key_store)
    return runner.run()


class TestAcceptance:
    def test_no_invariant_violations(self, seed7_report):
        assert seed7_report.violations == []
        assert seed7_report.ok

    def test_every_injected_class_recovers(self, seed7_report):
        for fault_class in _injected_classes(seed7_report):
            assert seed7_report.recoveries.get(fault_class, 0) >= 1, fault_class

    def test_core_fault_classes_exercised(self, seed7_report):
        injected = _injected_classes(seed7_report)
        assert {"link", "partition", "node", "revocation"} <= injected

    def test_no_probe_failures(self, seed7_report):
        assert all(p["ok"] for p in seed7_report.probes)

    def test_report_json_round_trips(self, seed7_report):
        payload = json.loads(seed7_report.to_json())
        assert payload["seed"] == 7
        assert payload["violations"] == []


class TestDeterminism:
    def test_same_seed_byte_identical_in_process(self, key_store, seed7_report):
        again = ChaosRunner(seed=7, duration=5, key_store=key_store).run()
        assert again.to_json() == seed7_report.to_json()

    def test_different_seed_differs(self, key_store, seed7_report):
        other = ChaosRunner(seed=8, duration=5, key_store=key_store).run()
        assert other.to_json() != seed7_report.to_json()


class TestValidation:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(FaultError, match="duration"):
            ChaosRunner(seed=1, duration=0)
