"""FaultEvent / FaultPlan / seeded chaos generation."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultKind, FaultPlan, generate_chaos_plan

LINKS = (("ny-gw", "sd-gw"), ("ny-gw", "se-gw"))


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(FaultError, match="past"):
            FaultEvent(at=-1.0, kind=FaultKind.LINK_DOWN)

    def test_rejects_negative_duration(self):
        with pytest.raises(FaultError, match="duration"):
            FaultEvent(at=1.0, kind=FaultKind.LINK_DOWN, duration=-0.5)

    def test_ends_at(self):
        event = FaultEvent(at=2.0, kind=FaultKind.NODE_CRASH, duration=1.5)
        assert event.ends_at == 3.5

    def test_to_dict_sorts_params(self):
        event = FaultEvent(
            at=1.0, kind=FaultKind.LOSS_BURST,
            params={"rate": 0.3, "b": "y", "a": "x"},
        )
        assert list(event.to_dict()["params"]) == ["a", "b", "rate"]

    def test_fault_classes_cover_every_kind(self):
        assert {k.fault_class for k in FaultKind} == {
            "link", "partition", "node", "latency", "loss", "revocation",
        }


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan()
        plan.add(FaultEvent(at=5.0, kind=FaultKind.LINK_DOWN))
        plan.add(FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH))
        assert [e.at for e in plan] == [1.0, 5.0]

    def test_horizon_is_latest_heal(self):
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LINK_DOWN, duration=4.0),
            FaultEvent(at=3.0, kind=FaultKind.NODE_CRASH, duration=0.5),
        ])
        assert plan.horizon == 5.0

    def test_by_class_counts(self):
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LINK_DOWN),
            FaultEvent(at=2.0, kind=FaultKind.LINK_DOWN),
            FaultEvent(at=3.0, kind=FaultKind.REVOKE_STORM),
        ])
        assert plan.by_class() == {"link": 2, "revocation": 1}


class TestChaosGeneration:
    def test_rejects_bad_duration(self):
        with pytest.raises(FaultError, match="duration"):
            generate_chaos_plan(seed=1, duration=0, links=LINKS)

    def test_rejects_empty_links(self):
        with pytest.raises(FaultError, match="link"):
            generate_chaos_plan(seed=1, duration=5, links=())

    def test_same_seed_same_plan(self):
        kwargs = dict(
            seed=11, duration=20, links=LINKS,
            domains=("SD",), crash_nodes=("n1",), credential_ids=("1", "11"),
        )
        a = generate_chaos_plan(**kwargs)
        b = generate_chaos_plan(**kwargs)
        assert a.to_list() == b.to_list()

    def test_different_seeds_differ(self):
        a = generate_chaos_plan(seed=1, duration=20, links=LINKS)
        b = generate_chaos_plan(seed=2, duration=20, links=LINKS)
        assert a.to_list() != b.to_list()

    def test_every_requested_class_present(self):
        plan = generate_chaos_plan(
            seed=3, duration=10, links=LINKS,
            domains=("SD",), crash_nodes=("n1",), credential_ids=("1",),
        )
        assert set(plan.by_class()) == {
            "link", "partition", "node", "latency", "loss", "revocation",
        }

    def test_skipped_classes_absent(self):
        plan = generate_chaos_plan(seed=3, duration=10, links=LINKS)
        assert set(plan.by_class()) == {"link", "latency", "loss"}

    def test_faults_heal_within_duration(self):
        plan = generate_chaos_plan(
            seed=5, duration=30, links=LINKS,
            domains=("SD",), crash_nodes=("n1",), credential_ids=("1",),
        )
        for event in plan:
            assert event.ends_at <= 0.81 * 30

    def test_intensity_scales_rounds(self):
        calm = generate_chaos_plan(seed=7, duration=40, links=LINKS)
        wild = generate_chaos_plan(seed=7, duration=40, links=LINKS, intensity=3.0)
        assert len(wild) > len(calm)
