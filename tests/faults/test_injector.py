"""FaultInjector: validation, injection, healing, and side effects."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.net import EventScheduler, Network
from repro.psf.monitor import EnvironmentMonitor


@pytest.fixture()
def world():
    net = Network()
    net.add_node("a1", domain="A")
    net.add_node("a2", domain="A")
    net.add_node("b1", domain="B")
    net.add_link("a1", "a2", latency_s=0.001)
    net.add_link("a1", "b1", latency_s=0.05)
    net.add_link("a2", "b1", latency_s=0.05)
    scheduler = EventScheduler()
    monitor = EnvironmentMonitor(net)
    return net, scheduler, monitor


def _run(scheduler, until=100.0):
    scheduler.run_until(until)


class TestValidation:
    def test_unknown_link_rejected_before_run(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LINK_DOWN,
                       params={"a": "a1", "b": "ghost"}),
        ])
        with pytest.raises(Exception):
            injector.arm(plan)

    def test_empty_domain_rejected(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.PARTITION, params={"domain": "Z"}),
        ])
        with pytest.raises(FaultError, match="empty domain"):
            injector.arm(plan)

    def test_storm_requires_engine(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.REVOKE_STORM,
                       params={"credentials": ["1"]}),
        ])
        with pytest.raises(FaultError, match="engine"):
            injector.arm(plan)

    def test_unknown_credential_ids_rejected(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor, engine=object(), credentials={})
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.REVOKE_STORM,
                       params={"credentials": ["99"]}),
        ])
        with pytest.raises(FaultError, match="unknown credential"):
            injector.arm(plan)


class TestLinkFaults:
    def test_link_down_then_heals(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LINK_DOWN, duration=2.0,
                       params={"a": "a1", "b": "b1"}),
        ]))
        scheduler.run_until(1.5)
        assert not net.link("a1", "b1").up
        _run(scheduler)
        assert net.link("a1", "b1").up
        assert [e["phase"] for e in injector.log] == ["inject", "heal"]

    def test_latency_spike_restores_original(self, world):
        net, scheduler, monitor = world
        original = net.link("a1", "b1").latency_s
        injector = FaultInjector(scheduler, monitor)
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LATENCY_SPIKE, duration=1.0,
                       params={"a": "a1", "b": "b1", "factor": 4.0}),
        ]))
        scheduler.run_until(1.5)
        assert net.link("a1", "b1").latency_s == pytest.approx(original * 4)
        _run(scheduler)
        assert net.link("a1", "b1").latency_s == pytest.approx(original)

    def test_loss_burst_restores_rate(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LOSS_BURST, duration=1.0,
                       params={"a": "a1", "b": "b1", "rate": 0.4}),
        ]))
        scheduler.run_until(1.5)
        assert net.link("a1", "b1").loss_rate == 0.4
        _run(scheduler)
        assert net.link("a1", "b1").loss_rate == 0.0


class TestPartition:
    def test_partition_severs_only_boundary_links(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.PARTITION, duration=2.0,
                       params={"domain": "A"}),
        ]))
        scheduler.run_until(1.5)
        assert not net.link("a1", "b1").up
        assert not net.link("a2", "b1").up
        assert net.link("a1", "a2").up  # intra-domain untouched
        _run(scheduler)
        assert net.link("a1", "b1").up
        assert net.link("a2", "b1").up

    def test_heal_restores_exactly_what_was_severed(self, world):
        net, scheduler, monitor = world
        # Already-down boundary link must stay down after the heal.
        net.link("a2", "b1").up = False
        injector = FaultInjector(scheduler, monitor)
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.PARTITION, duration=1.0,
                       params={"domain": "A"}),
        ]))
        _run(scheduler)
        assert net.link("a1", "b1").up
        assert not net.link("a2", "b1").up


class TestNodeCrash:
    def test_crash_and_restart(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH, duration=2.0,
                       params={"node": "b1"}),
        ]))
        scheduler.run_until(1.5)
        assert not net.node("b1").up
        _run(scheduler)
        assert net.node("b1").up

    def test_crash_fails_mapped_shards(self, world):
        from repro.drbac.repository import DistributedRepository

        net, scheduler, monitor = world
        repo = DistributedRepository(replicated=True)
        injector = FaultInjector(
            scheduler, monitor, repository=repo, shard_map={"b1": ["Alice"]}
        )
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH, duration=2.0,
                       params={"node": "b1"}),
        ]))
        scheduler.run_until(1.5)
        assert repo.shard_is_down("Alice")
        _run(scheduler)
        assert not repo.shard_is_down("Alice")


class TestNodeCrashHonestHeal:
    def test_replicated_shard_rebuilds_from_replica(self, world, engine):
        from repro.drbac.repository import DistributedRepository

        net, scheduler, monitor = world
        repo = DistributedRepository(replicated=True)
        cred = engine.delegate("OrgA", "Alice", "OrgA.Reader", publish=False)
        repo.publish(cred)
        injector = FaultInjector(
            scheduler, monitor, repository=repo, shard_map={"b1": ["Alice"]}
        )
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH, duration=2.0,
                       params={"node": "b1"}),
        ]))
        _run(scheduler)
        assert not repo.shard_is_down("Alice")
        assert [d.credential_id for d in repo.find_by_subject(cred.subject)] == [
            cred.credential_id
        ]

    def test_unreplicated_shard_comes_back_empty(self, world, engine):
        from repro.drbac.repository import DistributedRepository

        net, scheduler, monitor = world
        repo = DistributedRepository(replicated=False)
        cred = engine.delegate("OrgA", "Alice", "OrgA.Reader", publish=False)
        repo.publish(cred)
        injector = FaultInjector(
            scheduler, monitor, repository=repo, shard_map={"b1": ["Alice"]}
        )
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH, duration=2.0,
                       params={"node": "b1"}),
        ]))
        _run(scheduler)
        # Honest data loss: no replica existed, so nothing survives.
        assert repo.find_by_subject(cred.subject) == []

    def test_lossless_legacy_mode_restores_volatile_state(self, world, engine):
        from repro.drbac.repository import DistributedRepository

        net, scheduler, monitor = world
        repo = DistributedRepository(replicated=False)
        cred = engine.delegate("OrgA", "Alice", "OrgA.Reader", publish=False)
        repo.publish(cred)
        injector = FaultInjector(
            scheduler, monitor, repository=repo,
            shard_map={"b1": ["Alice"]}, lossless=True,
        )
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH, duration=2.0,
                       params={"node": "b1"}),
        ]))
        _run(scheduler)
        assert [d.credential_id for d in repo.find_by_subject(cred.subject)] == [
            cred.credential_id
        ]


class TestNodeCrashRestart:
    def test_requires_registered_durable_node(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        plan = FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH_RESTART, duration=2.0,
                       params={"node": "b1"}),
        ])
        with pytest.raises(FaultError, match="no DurableNode"):
            injector.arm(plan)

    def test_crash_restart_runs_real_recovery(self, world, engine):
        from repro.durable import DurableNode, UpdateFeed

        net, scheduler, monitor = world
        feed = UpdateFeed()
        node = DurableNode(engine=engine, feed=feed)
        for name in ("Alice", "Bob"):
            feed.publish(
                engine.delegate("OrgA", name, "OrgA.Reader", publish=False)
            )
        injector = FaultInjector(
            scheduler, monitor, durable_nodes={"b1": node}
        )
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH_RESTART, duration=2.0,
                       params={"node": "b1", "torn_tail": 3}),
        ]))
        scheduler.run_until(1.5)
        assert not node.up and not net.node("b1").up
        digest_down = node.state_digest()
        _run(scheduler)
        assert node.up and net.node("b1").up
        assert node.recoveries == 1
        # The torn tail killed the last frame; catch-up re-pulled it, so
        # the recovered durable state matches the pre-crash one.
        assert node.state_digest() != digest_down  # mirror was wiped while down
        assert node.published_ids() and node.last_seqno == feed.seqno


class TestListeners:
    def test_listener_sees_inject_and_heal(self, world):
        net, scheduler, monitor = world
        injector = FaultInjector(scheduler, monitor)
        seen = []
        injector.on_event(lambda event, phase: seen.append((event.kind, phase)))
        injector.arm(FaultPlan([
            FaultEvent(at=1.0, kind=FaultKind.LINK_DOWN, duration=1.0,
                       params={"a": "a1", "b": "b1"}),
        ]))
        _run(scheduler)
        assert seen == [
            (FaultKind.LINK_DOWN, "inject"),
            (FaultKind.LINK_DOWN, "heal"),
        ]
