"""Chaos with frame batching on: coalesced delivery under fault injection.

The batching fast path must not weaken any recovery or invariant
guarantee: a batch that loses its link mid-flight fails (or reroutes) as
a unit, drop callbacks still fire per logical frame, and the end-of-run
invariant sweep — no hanging calls, sessions on live hosts, view/image
coherence — holds exactly as it does unbatched.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosRunner
from repro.obs import names as metric_names


@pytest.fixture(scope="module")
def batched_report(key_store):
    runner = ChaosRunner(seed=7, duration=5, key_store=key_store, batching=True)
    return runner.run()


class TestBatchedChaos:
    def test_invariants_hold_with_batching(self, batched_report):
        assert batched_report.violations == []
        assert batched_report.ok

    def test_probes_pass_with_batching(self, batched_report):
        assert all(p["ok"] for p in batched_report.probes)

    def test_batching_actually_engaged(self, batched_report):
        counters = batched_report.metrics["counters"]
        assert counters.get(metric_names.NET_BATCH_FLUSHES, 0) > 0

    def test_every_injected_class_recovers(self, batched_report):
        for fault_class, count in batched_report.recoveries.items():
            # Classes that were injected must have recovered; the chaos
            # plan for seed 7 injects link, partition, node, revocation.
            if fault_class in ("link", "partition", "node", "revocation"):
                assert count >= 1, fault_class

    def test_batched_chaos_is_deterministic(self, key_store, batched_report):
        again = ChaosRunner(
            seed=7, duration=5, key_store=key_store, batching=True
        ).run()
        assert again.to_json() == batched_report.to_json()

    def test_batching_changes_wire_not_outcomes(self, key_store, batched_report):
        plain = ChaosRunner(seed=7, duration=5, key_store=key_store).run()
        # Same fault plan, same probe verdicts — only the framing differs.
        assert plain.events == batched_report.events
        assert [p["ok"] for p in plain.probes] == [
            p["ok"] for p in batched_report.probes
        ]
        assert plain.violations == batched_report.violations == []
