"""Invariant suite and the prebuilt end-of-run checks."""

from __future__ import annotations

from types import SimpleNamespace

from repro.faults import InvariantSuite
from repro.faults.invariants import (
    channels_settled,
    pending_calls_settled,
    sessions_on_live_nodes,
    views_coherent,
)


def _call(done, call_id=1, method="m"):
    return SimpleNamespace(done=done, call_id=call_id, method=method)


class TestSuite:
    def test_empty_suite_holds(self):
        assert InvariantSuite().run() == []

    def test_recorded_violations_surface(self):
        suite = InvariantSuite()
        suite.record("revocation-enforced", "stale proof survived")
        violations = suite.run()
        assert len(violations) == 1
        assert violations[0].invariant == "revocation-enforced"
        assert violations[0].to_dict()["detail"] == "stale proof survived"

    def test_checks_merge_with_recorded(self):
        suite = InvariantSuite()
        suite.record("online", "seen live")
        suite.add_check("sweep", lambda: ["left behind"])
        assert [v.invariant for v in suite.run()] == ["online", "sweep"]


class TestPendingCalls:
    def test_settled_world_passes(self):
        endpoint = SimpleNamespace(node_name="n1", _pending={1: _call(done=True)})
        assert pending_calls_settled([endpoint])() == []

    def test_hanging_call_reported(self):
        endpoint = SimpleNamespace(
            node_name="n1", _pending={7: _call(done=False, call_id=7, method="fetch")}
        )
        details = pending_calls_settled([endpoint])()
        assert len(details) == 1
        assert "fetch" in details[0] and "n1" in details[0]


class TestChannels:
    def test_hanging_channel_call_reported(self):
        connection = SimpleNamespace(
            conn_id="c-1", _pending={3: _call(done=False, call_id=3)}
        )
        endpoint = SimpleNamespace(
            node_name="n2", connections=lambda: [connection]
        )
        details = channels_settled([endpoint])()
        assert len(details) == 1
        assert "c-1" in details[0]


class TestSessions:
    def _network(self, down=()):
        nodes = {}

        def node(name):
            if name not in nodes:
                nodes[name] = SimpleNamespace(name=name, up=name not in down)
            return nodes[name]

        return SimpleNamespace(node=node)

    def _session(self, placements, needs_redeploy=False):
        components = [
            SimpleNamespace(component=SimpleNamespace(name=c), node=n)
            for c, n in placements
        ]
        return SimpleNamespace(
            needs_redeploy=needs_redeploy,
            plan=SimpleNamespace(components=components),
        )

    def test_live_sessions_pass(self):
        check = sessions_on_live_nodes(
            self._network(), [self._session([("Enc", "n1")])]
        )
        assert check() == []

    def test_dead_host_reported(self):
        check = sessions_on_live_nodes(
            self._network(down={"n1"}), [self._session([("Enc", "n1")])]
        )
        details = check()
        assert len(details) == 1 and "n1" in details[0]

    def test_unredeployed_eviction_reported(self):
        check = sessions_on_live_nodes(
            self._network(), [self._session([], needs_redeploy=True)]
        )
        assert check() == ["session[0] evicted instances never redeployed"]


class TestViewCoherence:
    def test_agreement_passes(self):
        assert views_coherent("v", lambda: [1], lambda: [1])() == []

    def test_divergence_reported(self):
        details = views_coherent("v", lambda: [1], lambda: [2])()
        assert len(details) == 1 and details[0].startswith("v:")
