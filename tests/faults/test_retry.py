"""RetryPolicy / RetrySchedule: pacing, jitter determinism, deadlines."""

from __future__ import annotations

import pytest

from repro.faults import RetryPolicy


class TestPolicyValidation:
    def test_rejects_nonpositive_base_delay(self):
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=0)

    def test_rejects_sub_one_multiplier(self):
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_full_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestDelaySequences:
    def test_fixed_reproduces_legacy_shape(self):
        policy = RetryPolicy.fixed(1.0, 3)
        assert policy.delays() == [1.0, 1.0, 1.0]
        assert policy.max_attempts == 4

    def test_exponential_doubles_and_clamps(self):
        policy = RetryPolicy.exponential(
            base_delay=0.5, max_attempts=6, max_delay=3.0, jitter=0.0
        )
        assert policy.delays() == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_deadline_clamps_final_delay_to_remaining_budget(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_attempts=10, deadline=4.0
        )
        delays = policy.delays()
        # 1 + 2 = 3 fits; the next wait (4) clamps to the remaining 1s
        # instead of being refused with budget unspent.
        assert delays == [1.0, 2.0, 1.0]
        assert sum(delays) == 4.0

    def test_deadline_never_overshot(self):
        for deadline in (0.5, 1.0, 2.5, 7.0):
            policy = RetryPolicy(
                base_delay=0.3, multiplier=2.0, max_attempts=12, deadline=deadline
            )
            delays = policy.delays()
            assert sum(delays) <= deadline + 1e-12
            # The budget is spent, not abandoned: either attempts ran out
            # or the waits add up to the full deadline.
            if len(delays) < policy.max_attempts - 1:
                assert sum(delays) == pytest.approx(deadline)

    def test_single_attempt_policy_never_waits(self):
        assert RetryPolicy(max_attempts=1).delays() == []


class TestJitterDeterminism:
    def test_same_seed_same_delays(self):
        policy = RetryPolicy.exponential(jitter=0.3, seed=42)
        assert policy.delays() == policy.delays()

    def test_different_seeds_differ(self):
        a = RetryPolicy.exponential(jitter=0.3, seed=1).delays()
        b = RetryPolicy.exponential(jitter=0.3, seed=2).delays()
        assert a != b

    def test_jitter_stays_within_spread(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=1.0, max_delay=1.0,
            max_attempts=50, jitter=0.25, seed=3,
        )
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25


class TestSchedule:
    def test_attempt_accounting(self):
        schedule = RetryPolicy.fixed(0.5, 2).schedule()
        assert schedule.attempts_made == 1
        assert not schedule.exhausted
        assert schedule.next_delay() == 0.5
        assert schedule.next_delay() == 0.5
        assert schedule.exhausted
        assert schedule.next_delay() is None
        assert schedule.attempts_made == 3

    def test_schedules_are_independent(self):
        policy = RetryPolicy.exponential(jitter=0.2, seed=9)
        first = list(policy.schedule())
        second = list(policy.schedule())
        assert first == second


class TestDeadlineOverVirtualClock:
    def test_retry_loop_never_sleeps_past_the_deadline(self):
        """Regression: drive a deadline schedule through a real event
        scheduler and check the last wake-up lands exactly on the
        deadline instead of the schedule giving up with budget unspent
        (or, worse, sleeping beyond it)."""
        from repro.net.events import EventScheduler

        scheduler = EventScheduler()
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_attempts=10, deadline=4.0
        )
        schedule = policy.schedule()
        wakeups: list[float] = []

        def attempt() -> None:
            wakeups.append(scheduler.now())
            delay = schedule.next_delay()
            if delay is not None:
                scheduler.schedule(delay, attempt)

        attempt()
        scheduler.run()
        # Attempts at t=0, 1, 3, 4: the 4s backoff clamps to the 1s left.
        assert wakeups == [0.0, 1.0, 3.0, 4.0]
        assert wakeups[-1] == policy.deadline
        assert all(t <= policy.deadline for t in wakeups)
