"""Property-based tests for attribute attenuation (hypothesis).

``meet_attributes`` is the algebraic heart of chain attenuation: it must
behave as a meet-semilattice operation — commutative, associative, and
idempotent — and folding it along a delegation chain must only ever
*narrow* what a subject may do.

One subtlety drives the generation strategy: associativity only holds
when each attribute key keeps a single kind along the chain.  Mixing a
scalar with a range on the same key is order-dependent by construction
(``(1 ∧ 10) ∧ (5,15)`` is empty but ``1 ∧ (10 ∧ (5,15))`` is ``1``
because ``scalar ∧ scalar`` collapses to the min *before* the range
check), which mirrors real credentials: an attribute is declared with
one shape and every delegation attenuates it in that shape.  So the
strategies fix a kind per key and draw all values for that key from it.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import assume, given, settings, strategies as st  # noqa: E402

from repro.drbac.model import (  # noqa: E402
    AttrRange,
    AttrScalar,
    AttrSet,
    IncompatibleAttributes,
    meet_attributes,
)

KEYS = ("Secure", "Trust", "CPU", "Zone")
KINDS = ("set", "range", "scalar")

_set_elements = st.sampled_from([True, False, 1, 2, 3, "a", "b"])
_numbers = st.integers(min_value=-20, max_value=20).map(float)


def _value_of_kind(kind: str) -> st.SearchStrategy:
    if kind == "set":
        return st.frozensets(_set_elements, min_size=1, max_size=4).map(AttrSet)
    if kind == "range":
        return st.tuples(_numbers, _numbers).map(
            lambda pair: AttrRange(min(pair), max(pair))
        )
    return _numbers.map(AttrScalar)


@st.composite
def attribute_map_chains(draw, *, length: int):
    """``length`` attribute maps whose shared keys share one kind each."""
    kinds = {key: draw(st.sampled_from(KINDS)) for key in KEYS}
    chain = []
    for _ in range(length):
        keys = draw(st.lists(st.sampled_from(KEYS), unique=True, max_size=len(KEYS)))
        chain.append({key: draw(_value_of_kind(kinds[key])) for key in keys})
    return chain


def _meet_or_none(a, b):
    try:
        return meet_attributes(a, b)
    except IncompatibleAttributes:
        return None


@given(attribute_map_chains(length=2))
@settings(max_examples=200)
def test_meet_is_commutative(chain):
    a, b = chain
    assert _meet_or_none(a, b) == _meet_or_none(b, a)


@given(attribute_map_chains(length=3))
@settings(max_examples=200)
def test_meet_is_associative(chain):
    a, b, c = chain
    left = _meet_or_none(_meet_or_none(a, b) or {}, c) if _meet_or_none(a, b) is not None else None
    right = _meet_or_none(a, _meet_or_none(b, c) or {}) if _meet_or_none(b, c) is not None else None
    # An empty meet anywhere poisons the whole fold, in either grouping.
    if left is None or right is None:
        assert left is None and right is None
    else:
        assert left == right


@given(attribute_map_chains(length=1))
@settings(max_examples=200)
def test_meet_is_idempotent(chain):
    (a,) = chain
    assert meet_attributes(a, a) == a


@given(attribute_map_chains(length=4))
@settings(max_examples=200)
def test_attenuation_along_a_chain_never_widens(chain):
    folds = []
    acc: dict = {}
    try:
        for attrs in chain:
            acc = meet_attributes(acc, attrs)
            folds.append(acc)
    except IncompatibleAttributes:
        assume(False)  # chain dies entirely; nothing to compare
    final = folds[-1]
    for prefix in folds:
        for key, value in prefix.items():
            # Every key a prefix constrains stays at least as constrained
            # in the final map: prefix ⊇ final, i.e. the prefix value can
            # satisfy the final one as a requirement.
            assert key in final
            assert value.satisfies(final[key]), (
                f"chain widened {key}: prefix {value} -> final {final[key]}"
            )
