"""Wire-codec tests for identities and attributes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.drbac.model import AttrRange, AttrScalar, AttrSet
from repro.drbac.wire import (
    attribute_from_wire,
    attribute_to_wire,
    public_identity_from_wire,
    public_identity_to_wire,
    subject_from_wire,
    subject_to_wire,
)
from repro.drbac.model import EntityRef, Role
from repro.errors import CredentialError


class TestAttributeCodec:
    @pytest.mark.parametrize(
        "value",
        [
            AttrScalar(42),
            AttrRange(0, 10),
            AttrSet([True, False]),
            AttrSet(["Linux", "SuSe"]),
        ],
    )
    def test_roundtrip(self, value):
        assert attribute_from_wire(attribute_to_wire(value)) == value

    def test_unknown_kind(self):
        with pytest.raises(CredentialError):
            attribute_from_wire({"kind": "matrix"})

    @given(low=st.integers(-100, 100), span=st.integers(0, 100))
    def test_range_roundtrip_property(self, low, span):
        value = AttrRange(low, low + span)
        assert attribute_from_wire(attribute_to_wire(value)) == value


class TestSubjectCodec:
    def test_entity_roundtrip(self):
        assert subject_from_wire(subject_to_wire(EntityRef("Comp.SD"))) == EntityRef(
            "Comp.SD"
        )

    def test_role_roundtrip(self):
        role = Role("Comp.NY", "Member")
        assert subject_from_wire(subject_to_wire(role)) == role

    def test_unknown_kind(self):
        with pytest.raises(CredentialError):
            subject_from_wire({"kind": "ghost", "name": "x"})


class TestIdentityCodec:
    def test_roundtrip_preserves_verification(self, key_store):
        identity = key_store.identity("WireTest")
        signature = identity.sign(b"statement")
        restored = public_identity_from_wire(
            public_identity_to_wire(identity.public)
        )
        assert restored.name == "WireTest"
        assert restored.verify(b"statement", signature)
        assert not restored.verify(b"tampered", signature)

    def test_malformed_rejected(self):
        with pytest.raises(CredentialError):
            public_identity_from_wire({"name": "x", "n": "zz-not-hex", "e": 3})
        with pytest.raises(CredentialError):
            public_identity_from_wire({"name": "x"})
