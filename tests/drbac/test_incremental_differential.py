"""Differential check: incremental engine vs full search, op for op.

Seeded delegation/publish/revoke/expiry schedules — the same op shapes
:mod:`repro.check.gen` generates for the simulation tester — are
replayed in lockstep through two :class:`DrbacEngine`s that differ only
in the ``incremental`` flag.  At every authorize the verdicts must
match, and every grant's proof must be *valid*: a connected membership
chain of published, unrevoked, unexpired credentials.  Expiry-boundary
instants (``now == expires_at`` grants, strictly-after denies) are
probed exactly.

The last test demonstrates the harness catches a broken engine: with a
deliberately broken delta rule (``skip-expire-cone`` /
``skip-revoke-cone``) the replay reports divergences.
"""

from __future__ import annotations

import pytest

from repro.check.gen import generate_trace
from repro.clock import ManualClock
from repro.drbac import DrbacEngine
from repro.drbac.delegation import Delegation
from repro.drbac.model import subject_key
from repro.errors import AuthorizationError

DRBAC_KINDS = ("delegate", "publish", "revoke", "authorize", "advance")


def drbac_schedule(seed: int, steps: int) -> list:
    """The dRBAC slice of a simulation-tester trace (same op shapes)."""
    trace = generate_trace(seed=seed, steps=steps)
    return [op for op in trace.ops if op.kind in DRBAC_KINDS]


class _World:
    """One engine under replay, with its own credential table."""

    def __init__(self, key_store, *, incremental: bool, mutation: str | None = None):
        self.clock = ManualClock()
        self.engine = DrbacEngine(
            key_store=key_store, clock=self.clock, incremental=incremental
        )
        if mutation is not None:
            assert self.engine.incremental is not None
            self.engine.incremental.mutation = mutation
        self.creds: dict[str, Delegation] = {}
        self.published: set[str] = set()
        self.revoked: set[str] = set()

    def apply(self, op) -> bool | None:
        """Apply one op; authorize ops return the verdict."""
        args = op.args
        if op.kind == "delegate":
            expires_at = (
                self.clock.now() + args["ttl"] if args["ttl"] is not None else None
            )
            delegation = self.engine.delegate(
                args["issuer"],
                args["subject"],
                args["role"],
                expires_at=expires_at,
                publish=args["publish"],
            )
            self.creds[args["ref"]] = delegation
            if args["publish"]:
                self.published.add(args["ref"])
        elif op.kind == "publish":
            if args["ref"] not in self.published:
                self.engine.repository.publish(self.creds[args["ref"]])
                self.published.add(args["ref"])
        elif op.kind == "revoke":
            self.engine.revoke(self.creds[args["ref"]])
            self.revoked.add(args["ref"])
        elif op.kind == "advance":
            self.clock.advance(args["seconds"])
        elif op.kind == "authorize":
            return self.authorize(args["subject"], args["role"])
        return None

    def authorize(self, subject: str, role: str) -> bool:
        try:
            result = self.engine.authorize(subject, role)
        except AuthorizationError:
            return False
        self.check_proof(result, subject, role)
        result.close()
        return True

    def check_proof(self, result, subject: str, role: str) -> None:
        """A grant's chain must connect subject to role through live,
        published credentials — equivalence of proof *validity*, even
        where the two engines pick different chains."""
        now = self.clock.now()
        chain = result.proof.chain
        assert chain, "grant with an empty chain"
        assert subject_key(chain[0].subject) == subject
        assert str(chain[-1].role) == role
        for left, right in zip(chain, chain[1:]):
            assert str(left.role) == subject_key(right.subject)
        live_ids = {
            d.credential_id
            for ref, d in self.creds.items()
            if ref in self.published and ref not in self.revoked
        }
        for delegation in result.proof.all_delegations():
            assert delegation.credential_id in live_ids, "unpublished/revoked cred"
            assert not delegation.is_expired(now), "expired cred in proof"
        assert result.valid and result.monitor.check_expiry(now)


def replay(
    schedule, key_store, *, mutation: str | None = None
) -> list[tuple[int, bool, bool]]:
    """Run both worlds; return (index, full_verdict, incr_verdict)
    divergences.  ``mutation`` breaks the incremental world's delta
    handling; proof-validity checks stay on in the *full* world only so
    a broken incremental engine surfaces as divergence, not assertion."""
    full = _World(key_store, incremental=False)
    incr = _World(key_store, incremental=True, mutation=mutation)
    divergences = []
    for index, op in enumerate(schedule):
        expected = full.apply(op)
        if op.kind == "authorize" and mutation is not None:
            # A mutated engine may hand back a stale (invalid) proof on
            # purpose; record its verdict without validating the chain.
            try:
                result = incr.engine.authorize(op.args["subject"], op.args["role"])
                result.close()
                observed: bool | None = True
            except AuthorizationError:
                observed = False
        else:
            observed = incr.apply(op)
        if op.kind == "authorize" and expected != observed:
            divergences.append((index, expected, observed))
    return divergences


class TestDifferential:
    @pytest.mark.parametrize("seed", [1, 5, 9, 21])
    def test_seeded_schedules_agree(self, seed, key_store):
        schedule = drbac_schedule(seed, steps=400)
        assert any(op.kind == "revoke" for op in schedule)
        assert any(
            op.kind == "delegate" and op.args["ttl"] is not None for op in schedule
        )
        assert replay(schedule, key_store) == []

    def test_verdicts_flip_along_the_schedule(self, key_store):
        """Guard against a vacuous pass: the replayed mix must actually
        exercise both verdicts in both worlds."""
        schedule = drbac_schedule(7, steps=400)
        world = _World(key_store, incremental=True)
        verdicts = set()
        for op in schedule:
            observed = world.apply(op)
            if op.kind == "authorize":
                verdicts.add(observed)
        assert verdicts == {True, False}


class TestExpiryBoundary:
    def test_exact_boundary_grants_then_denies(self, key_store):
        """A credential is live *at* ``expires_at`` and dead strictly
        after — on both engines, at the exact instants."""
        for incremental in (False, True):
            clock = ManualClock()
            engine = DrbacEngine(
                key_store=key_store, clock=clock, incremental=incremental
            )
            engine.delegate("Org", "Alice", "Org.Member", expires_at=5.0)
            assert engine.prove("Alice", "Org.Member") is not None
            clock.advance(5.0)  # now == expires_at exactly
            assert engine.prove("Alice", "Org.Member") is not None, incremental
            clock.advance(1e-9)
            assert engine.prove("Alice", "Org.Member") is None, incremental

    def test_boundary_instants_from_seeded_ttls(self, key_store):
        """Walk a seeded schedule's TTL credentials and probe each arm at
        the exact expiry instant and just past it."""
        schedule = [
            op
            for op in drbac_schedule(11, steps=300)
            if op.kind == "delegate" and op.args["ttl"] is not None and op.args["publish"]
        ][:6]
        assert schedule, "seed 11 produced no published ttl delegations"
        full = _World(key_store, incremental=False)
        incr = _World(key_store, incremental=True)
        for op in schedule:
            for world in (full, incr):
                world.apply(op)
        probes = sorted(
            {op.args["ttl"] for op in schedule}
        )  # delegations all issued at t=0
        for instant in probes:
            for offset in (0.0, 1e-9):
                for world in (full, incr):
                    world.clock._now = 0.0  # rewind: probe each instant exactly
                    world.clock.advance(instant + offset)
                    world.engine.incremental and world.engine.incremental.refresh()
            for op in schedule:
                subject, role = op.args["subject"], op.args["role"]
                if "." in subject:
                    continue  # role-subject links are probed via chains
                assert full.authorize(subject, role) == incr.authorize(subject, role)


class TestBrokenDeltaRuleIsCaught:
    def test_skipping_expire_cone_diverges(self, key_store):
        """The acceptance drill: an engine that forgets to recompute the
        cone on expiry keeps granting from a stale chain, and the
        differential replay reports it."""
        trace = generate_trace(seed=2, steps=1)  # borrow Op shapes
        op_cls = type(trace.ops[0])
        schedule = [
            op_cls("delegate", {
                "ref": "d0", "issuer": "Org", "subject": "Alice",
                "role": "Org.Member", "ttl": 5.0, "publish": True,
            }),
            op_cls("authorize", {"subject": "Alice", "role": "Org.Member"}),
            op_cls("advance", {"seconds": 10.0}),
            op_cls("authorize", {"subject": "Alice", "role": "Org.Member"}),
        ]
        assert replay(schedule, key_store) == []
        diverged = replay(schedule, key_store, mutation="skip-expire-cone")
        assert diverged == [(3, False, True)]

    def test_skipping_revoke_cone_diverges(self, key_store):
        trace = generate_trace(seed=2, steps=1)
        op_cls = type(trace.ops[0])
        schedule = [
            op_cls("delegate", {
                "ref": "d0", "issuer": "Org", "subject": "Alice",
                "role": "Org.Member", "ttl": None, "publish": True,
            }),
            op_cls("authorize", {"subject": "Alice", "role": "Org.Member"}),
            op_cls("revoke", {"ref": "d0"}),
            op_cls("authorize", {"subject": "Alice", "role": "Org.Member"}),
        ]
        assert replay(schedule, key_store) == []
        diverged = replay(schedule, key_store, mutation="skip-revoke-cone")
        assert diverged == [(3, False, True)]

    @pytest.mark.parametrize("seed", [1, 5])
    def test_seeded_schedule_catches_the_mutant(self, seed, key_store):
        """Not just the hand-built drill: generated churn mixes also
        expose the broken expiry rule."""
        schedule = drbac_schedule(seed, steps=500)
        assert replay(schedule, key_store) == []
        assert replay(schedule, key_store, mutation="skip-expire-cone")
