"""Policy-translation service tests (§6 future work, implemented)."""

from __future__ import annotations

import pytest

from repro.drbac.model import Role
from repro.drbac.translate import (
    AclGroupPolicy,
    CapabilityPolicy,
    PolicyTranslator,
    TranslationRule,
)


@pytest.fixture()
def capability_world(engine):
    policy = CapabilityPolicy()
    translator = PolicyTranslator(
        engine,
        "Lab",
        policy,
        [
            TranslationRule("can-read", Role("Lab", "Reader")),
            TranslationRule("can-admin", Role("Lab", "Admin")),
        ],
    )
    return engine, policy, translator


class TestCapabilityTranslation:
    def test_grant_becomes_provable_role(self, capability_world):
        engine, policy, translator = capability_world
        policy.grant("dana", "can-read")
        report = translator.sync()
        assert len(report.issued) == 1
        assert engine.find_proof("dana", "Lab.Reader") is not None

    def test_unmapped_capability_ignored(self, capability_world):
        engine, policy, translator = capability_world
        policy.grant("dana", "can-fly")
        report = translator.sync()
        assert not report.issued
        assert translator.mirrored_count() == 0

    def test_sync_is_idempotent(self, capability_world):
        engine, policy, translator = capability_world
        policy.grant("dana", "can-read")
        translator.sync()
        report = translator.sync()
        assert not report.issued and not report.revoked

    def test_native_revocation_propagates(self, capability_world):
        engine, policy, translator = capability_world
        policy.grant("dana", "can-admin")
        translator.sync()
        assert engine.find_proof("dana", "Lab.Admin") is not None
        policy.revoke("dana", "can-admin")
        report = translator.sync()
        assert len(report.revoked) == 1
        assert engine.find_proof("dana", "Lab.Admin") is None

    def test_revocation_fires_live_monitors(self, capability_world):
        """Native-policy changes reach open channels via the monitors."""
        engine, policy, translator = capability_world
        policy.grant("dana", "can-read")
        translator.sync()
        result = engine.authorize("dana", "Lab.Reader")
        assert result.valid
        policy.revoke("dana", "can-read")
        translator.sync()
        assert not result.valid

    def test_translated_roles_chain_cross_domain(self, capability_world):
        """Mirrored credentials participate in normal dRBAC chains."""
        engine, policy, translator = capability_world
        policy.grant("dana", "can-read")
        translator.sync()
        engine.delegate("Comp.NY", "Lab.Reader", "Comp.NY.Guest")
        assert engine.find_proof("dana", "Comp.NY.Guest") is not None


class TestAclGroupTranslation:
    @pytest.fixture()
    def group_world(self, engine):
        policy = AclGroupPolicy()
        policy.add_member("staff", "erin")
        policy.add_member("staff", "frank")
        policy.allow("staff", "mail-access")
        translator = PolicyTranslator(
            engine,
            "Office",
            policy,
            [TranslationRule("mail-access", Role("Office", "MailUser"))],
        )
        return engine, policy, translator

    def test_flattened_grants_mirrored(self, group_world):
        engine, policy, translator = group_world
        report = translator.sync()
        assert len(report.issued) == 2
        assert engine.find_proof("erin", "Office.MailUser") is not None
        assert engine.find_proof("frank", "Office.MailUser") is not None

    def test_group_removal_revokes_member(self, group_world):
        engine, policy, translator = group_world
        translator.sync()
        policy.remove_member("staff", "frank")
        report = translator.sync()
        assert len(report.revoked) == 1
        assert engine.find_proof("frank", "Office.MailUser") is None
        assert engine.find_proof("erin", "Office.MailUser") is not None

    def test_permission_removal_revokes_everyone(self, group_world):
        engine, policy, translator = group_world
        translator.sync()
        policy.disallow("staff", "mail-access")
        report = translator.sync()
        assert len(report.revoked) == 2
        assert translator.mirrored_count() == 0

    def test_regrant_issues_fresh_credential(self, group_world):
        engine, policy, translator = group_world
        translator.sync()
        policy.remove_member("staff", "erin")
        translator.sync()
        policy.add_member("staff", "erin")
        report = translator.sync()
        assert len(report.issued) == 1
        assert engine.find_proof("erin", "Office.MailUser") is not None
