"""Proof-engine tests: chaining, issuer authority, attenuation, search
direction parity, and validity gating."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import KeyStore
from repro.drbac.delegation import issue
from repro.drbac.model import AttrRange, AttrScalar, AttrSet, EntityRef, Role
from repro.drbac.monitor import RevocationDirectory
from repro.drbac.proof import ProofEngine


@pytest.fixture(scope="module")
def store():
    return KeyStore(key_bits=512)


def identities(store, names):
    return {name: store.public(name) for name in names}


def make_engine(store, names, revocations=None, now=0.0):
    return ProofEngine(identities(store, names), revocations, now=now)


class TestDirectMembership:
    def test_single_hop(self, store):
        cred = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        engine = make_engine(store, ["A"])
        proof = engine.find_proof(EntityRef("u"), Role("A", "R"), [cred])
        assert proof is not None
        assert [d.credential_id for d in proof.chain] == [cred.credential_id]

    def test_missing_credential(self, store):
        engine = make_engine(store, ["A"])
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), []) is None

    def test_wrong_subject(self, store):
        cred = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        engine = make_engine(store, ["A"])
        assert engine.find_proof(EntityRef("v"), Role("A", "R"), [cred]) is None

    def test_unknown_issuer_unusable(self, store):
        cred = issue(store.identity("Rogue"), EntityRef("u"), Role("Rogue", "R"))
        engine = make_engine(store, ["A"])  # Rogue absent from the directory
        assert engine.find_proof(EntityRef("u"), Role("Rogue", "R"), [cred]) is None

    def test_forged_signature_unusable(self, store):
        cred = issue(store.identity("B"), EntityRef("u"), Role("A", "R"))
        # B signed a statement about A's role but the directory knows both;
        # it is a third-party delegation with no assignment evidence.
        engine = make_engine(store, ["A", "B"])
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), [cred]) is None


class TestChaining:
    def test_two_hop_role_mapping(self, store):
        c1 = issue(store.identity("SD"), EntityRef("Bob"), Role("SD", "Member"))
        c2 = issue(store.identity("NY"), Role("SD", "Member"), Role("NY", "Member"))
        engine = make_engine(store, ["SD", "NY"])
        proof = engine.find_proof(EntityRef("Bob"), Role("NY", "Member"), [c1, c2])
        assert proof is not None
        assert len(proof.chain) == 2

    def test_deep_chain(self, store):
        creds = [issue(store.identity("D0"), EntityRef("u"), Role("D0", "R"))]
        for i in range(1, 8):
            creds.append(
                issue(
                    store.identity(f"D{i}"),
                    Role(f"D{i-1}", "R"),
                    Role(f"D{i}", "R"),
                )
            )
        engine = make_engine(store, [f"D{i}" for i in range(8)])
        proof = engine.find_proof(EntityRef("u"), Role("D7", "R"), creds)
        assert proof is not None
        assert len(proof.chain) == 8

    def test_broken_chain(self, store):
        c1 = issue(store.identity("SD"), EntityRef("Bob"), Role("SD", "Member"))
        c3 = issue(store.identity("NY"), Role("XX", "Member"), Role("NY", "Member"))
        engine = make_engine(store, ["SD", "NY"])
        assert engine.find_proof(EntityRef("Bob"), Role("NY", "Member"), [c1, c3]) is None

    def test_cycle_terminates(self, store):
        a = issue(store.identity("A"), Role("B", "R"), Role("A", "R"))
        b = issue(store.identity("B"), Role("A", "R"), Role("B", "R"))
        engine = make_engine(store, ["A", "B"])
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), [a, b]) is None


class TestIssuerAuthority:
    """Third-party delegations need the issuer's right of assignment."""

    def test_third_party_without_assignment_rejected(self, store):
        c = issue(store.identity("SD"), EntityRef("u"), Role("NY", "Partner"))
        engine = make_engine(store, ["SD", "NY"])
        assert engine.find_proof(EntityRef("u"), Role("NY", "Partner"), [c]) is None

    def test_third_party_with_assignment_accepted(self, store):
        grant = issue(
            store.identity("NY"), EntityRef("SD"), Role("NY", "Partner"), assignment=True
        )
        c = issue(store.identity("SD"), EntityRef("u"), Role("NY", "Partner"))
        engine = make_engine(store, ["SD", "NY"])
        proof = engine.find_proof(EntityRef("u"), Role("NY", "Partner"), [grant, c])
        assert proof is not None
        assert grant.credential_id in {d.credential_id for d in proof.support}

    def test_assignment_via_role_membership(self, store):
        # NY grants assignment to holders of NY.Admins; SD is an Admin.
        admin = issue(store.identity("NY"), EntityRef("SD"), Role("NY", "Admins"))
        grant = issue(
            store.identity("NY"), Role("NY", "Admins"), Role("NY", "Partner"), assignment=True
        )
        c = issue(store.identity("SD"), EntityRef("u"), Role("NY", "Partner"))
        engine = make_engine(store, ["SD", "NY"])
        proof = engine.find_proof(
            EntityRef("u"), Role("NY", "Partner"), [admin, grant, c]
        )
        assert proof is not None

    def test_assignment_credential_does_not_convey_membership(self, store):
        grant = issue(
            store.identity("NY"), EntityRef("SD"), Role("NY", "Partner"), assignment=True
        )
        engine = make_engine(store, ["NY"])
        # Holding NY.Partner' does not make SD an NY.Partner.
        assert engine.find_proof(EntityRef("SD"), Role("NY", "Partner"), [grant]) is None

    def test_forged_assignment_rejected(self, store):
        # SD grants itself assignment rights over NY's role: invalid,
        # because SD doesn't own NY.Partner and has no chain from NY.
        fake_grant = issue(
            store.identity("SD"), EntityRef("SD"), Role("NY", "Partner"), assignment=True
        )
        c = issue(store.identity("SD"), EntityRef("u"), Role("NY", "Partner"))
        engine = make_engine(store, ["SD", "NY"])
        assert (
            engine.find_proof(EntityRef("u"), Role("NY", "Partner"), [fake_grant, c])
            is None
        )


class TestAttenuation:
    def test_cpu_min_along_chain(self, store):
        c1 = issue(
            store.identity("NY"),
            Role("Mail", "Enc"),
            Role("NY", "Exec"),
            attributes={"CPU": AttrScalar(100)},
        )
        c2 = issue(
            store.identity("SD"),
            Role("NY", "Exec"),
            Role("SD", "Exec"),
            attributes={"CPU": AttrScalar(80)},
        )
        engine = make_engine(store, ["NY", "SD"])
        proof = engine.find_proof(Role("Mail", "Enc"), Role("SD", "Exec"), [c1, c2])
        assert proof is not None
        assert proof.attributes["CPU"] == AttrScalar(80)

    def test_required_attributes_gate(self, store):
        c = issue(
            store.identity("Mail"),
            EntityRef("node1"),
            Role("Mail", "Node"),
            attributes={"Secure": AttrSet([False]), "Trust": AttrRange(0, 1)},
        )
        engine = make_engine(store, ["Mail"])
        assert (
            engine.find_proof(
                EntityRef("node1"),
                Role("Mail", "Node"),
                [c],
                required_attributes={"Secure": AttrSet([True])},
            )
            is None
        )

    def test_incompatible_chain_skipped_for_alternative(self, store):
        # Two chains to the same role; one's attributes conflict.
        bad1 = issue(
            store.identity("A"), EntityRef("u"), Role("A", "Mid"),
            attributes={"Secure": AttrSet([False])},
        )
        bad2 = issue(
            store.identity("B"), Role("A", "Mid"), Role("B", "R"),
            attributes={"Secure": AttrSet([True])},
        )
        good = issue(store.identity("B"), EntityRef("u"), Role("B", "R"))
        engine = make_engine(store, ["A", "B"])
        proof = engine.find_proof(EntityRef("u"), Role("B", "R"), [bad1, bad2, good])
        assert proof is not None
        assert len(proof.chain) == 1


class TestValidityGating:
    def test_expired_excluded(self, store):
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"), expires_at=5.0)
        engine = make_engine(store, ["A"], now=10.0)
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), [c]) is None

    def test_unexpired_included(self, store):
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"), expires_at=5.0)
        engine = make_engine(store, ["A"], now=1.0)
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), [c]) is not None

    def test_revoked_excluded(self, store):
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        revocations = RevocationDirectory()
        revocations.revoke(c)
        engine = make_engine(store, ["A"], revocations=revocations)
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), [c]) is None


class TestSearchDirections:
    def _world(self, store, depth=4, fanout=3):
        """A layered credential graph plus distractors."""
        creds = [issue(store.identity("L0"), EntityRef("u"), Role("L0", "R0"))]
        for layer in range(1, depth):
            for branch in range(fanout):
                creds.append(
                    issue(
                        store.identity(f"L{layer}"),
                        Role(f"L{layer-1}", f"R{layer-1}"),
                        Role(f"L{layer}", f"R{layer}b{branch}"),
                    )
                )
            # Canonical continuation uses branch 0's naming.
            creds.append(
                issue(
                    store.identity(f"L{layer}"),
                    Role(f"L{layer-1}", f"R{layer-1}"),
                    Role(f"L{layer}", f"R{layer}"),
                )
            )
        names = [f"L{i}" for i in range(depth)]
        return creds, names

    def test_regression_and_progression_agree_positive(self, store):
        creds, names = self._world(store)
        engine = make_engine(store, names)
        goal = Role("L3", "R3")
        regression = engine.find_proof(EntityRef("u"), goal, creds, direction="regression")
        progression = engine.find_proof(EntityRef("u"), goal, creds, direction="progression")
        assert regression is not None and progression is not None
        assert regression.chain[-1].role == progression.chain[-1].role == goal

    def test_regression_and_progression_agree_negative(self, store):
        creds, names = self._world(store)
        engine = make_engine(store, names)
        goal = Role("L9", "Nowhere")
        assert engine.find_proof(EntityRef("u"), goal, creds, direction="regression") is None
        assert engine.find_proof(EntityRef("u"), goal, creds, direction="progression") is None

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_direction_parity_on_random_graphs(self, store, data):
        """Both strategies must return the same yes/no decision."""
        n_roles = data.draw(st.integers(3, 8))
        n_creds = data.draw(st.integers(2, 14))
        roles = [Role(f"Dom{i}", "R") for i in range(n_roles)]
        creds = []
        for _ in range(n_creds):
            src = data.draw(st.integers(-1, n_roles - 1))
            dst = data.draw(st.integers(0, n_roles - 1))
            subject = EntityRef("u") if src == -1 else roles[src]
            role = roles[dst]
            creds.append(issue(store.identity(role.owner), subject, role))
        goal = roles[data.draw(st.integers(0, n_roles - 1))]
        engine = make_engine(store, [r.owner for r in roles])
        regression = engine.find_proof(EntityRef("u"), goal, creds, direction="regression")
        progression = engine.find_proof(EntityRef("u"), goal, creds, direction="progression")
        assert (regression is None) == (progression is None)

    def test_edge_counting(self, store):
        creds, names = self._world(store)
        engine = make_engine(store, names)
        proof = engine.find_proof(EntityRef("u"), Role("L3", "R3"), creds)
        assert proof is not None
        assert proof.edges_visited > 0


class TestProofObject:
    def test_all_delegations_dedupes(self, store):
        grant = issue(
            store.identity("NY"), EntityRef("SD"), Role("NY", "P"), assignment=True
        )
        c = issue(store.identity("SD"), EntityRef("u"), Role("NY", "P"))
        engine = make_engine(store, ["NY", "SD"])
        proof = engine.find_proof(EntityRef("u"), Role("NY", "P"), [grant, c])
        assert proof is not None
        ids = [d.credential_id for d in proof.all_delegations()]
        assert len(ids) == len(set(ids))

    def test_str_mentions_subject_and_goal(self, store):
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        engine = make_engine(store, ["A"])
        proof = engine.find_proof(EntityRef("u"), Role("A", "R"), [c])
        assert "u" in str(proof) and "A.R" in str(proof)


class TestAttributeConstrainedRetry:
    """The engine retries exhaustively when the first chain's attributes
    fall short of the requirement but another chain could satisfy it."""

    def test_alternative_chain_with_stronger_attributes(self, store):
        weak = issue(
            store.identity("A"), EntityRef("u"), Role("A", "R"),
            attributes={"CPU": AttrScalar(10)},
        )
        strong_leaf = issue(store.identity("B"), EntityRef("u"), Role("B", "Mid"))
        strong_link = issue(
            store.identity("A"), Role("B", "Mid"), Role("A", "R"),
            attributes={"CPU": AttrScalar(90)},
        )
        engine = make_engine(store, ["A", "B"])
        proof = engine.find_proof(
            EntityRef("u"), Role("A", "R"),
            [weak, strong_leaf, strong_link],
            required_attributes={"CPU": AttrScalar(50)},
        )
        assert proof is not None
        assert proof.attributes["CPU"] == AttrScalar(90)

    def test_no_chain_satisfies_requirement(self, store):
        weak = issue(
            store.identity("A"), EntityRef("u"), Role("A", "R"),
            attributes={"CPU": AttrScalar(10)},
        )
        engine = make_engine(store, ["A"])
        assert (
            engine.find_proof(
                EntityRef("u"), Role("A", "R"), [weak],
                required_attributes={"CPU": AttrScalar(50)},
            )
            is None
        )

    def test_unconstrained_search_ignores_attributes(self, store):
        weak = issue(
            store.identity("A"), EntityRef("u"), Role("A", "R"),
            attributes={"CPU": AttrScalar(10)},
        )
        engine = make_engine(store, ["A"])
        assert engine.find_proof(EntityRef("u"), Role("A", "R"), [weak]) is not None


class TestIncompatibleAttributeChains:
    """A chain whose attributes cannot combine must not crash the search."""

    def _world(self, store):
        # The only 2-hop chain has disjoint Secure sets (incompatible);
        # a separate direct credential exists as the valid answer.
        bad1 = issue(
            store.identity("A"), EntityRef("u"), Role("A", "Mid"),
            attributes={"Secure": AttrSet([False])},
        )
        bad2 = issue(
            store.identity("B"), Role("A", "Mid"), Role("B", "Goal"),
            attributes={"Secure": AttrSet([True])},
        )
        good = issue(store.identity("B"), EntityRef("u"), Role("B", "Goal"))
        return [bad1, bad2, good]

    def test_progression_falls_back_to_compatible_chain(self, store):
        creds = self._world(store)
        engine = make_engine(store, ["A", "B"])
        proof = engine.find_proof(
            EntityRef("u"), Role("B", "Goal"), creds, direction="progression"
        )
        assert proof is not None
        assert len(proof.chain) == 1  # the direct, compatible credential

    def test_only_incompatible_chains_means_no_proof(self, store):
        creds = self._world(store)[:2]  # drop the good credential
        engine = make_engine(store, ["A", "B"])
        for direction in ("regression", "progression"):
            assert (
                engine.find_proof(
                    EntityRef("u"), Role("B", "Goal"), creds, direction=direction
                )
                is None
            )
