"""Distributed repository tests: discovery tags and routed collection."""

from __future__ import annotations

import pytest

from repro.crypto import KeyStore
from repro.drbac.delegation import issue
from repro.drbac.model import EntityRef, Role
from repro.drbac.repository import (
    BOTH_TAGS,
    DiscoveryTag,
    DistributedRepository,
    subject_home,
)


@pytest.fixture(scope="module")
def store():
    return KeyStore(key_bits=512)


class TestSubjectHome:
    def test_entity_home_is_itself(self):
        assert subject_home(EntityRef("Bob")) == "Bob"

    def test_role_home_is_owner(self):
        assert subject_home(Role("Comp.SD", "Member")) == "Comp.SD"


class TestPublishAndFind:
    def test_find_by_subject_routed(self, store):
        repo = DistributedRepository()
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        repo.publish(c)
        assert [d.credential_id for d in repo.find_by_subject(EntityRef("u"))] == [
            c.credential_id
        ]

    def test_find_by_role_routed(self, store):
        repo = DistributedRepository()
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        repo.publish(c)
        assert [d.credential_id for d in repo.find_by_role(Role("A", "R"))] == [
            c.credential_id
        ]

    def test_subject_only_tag_hides_from_role_queries(self, store):
        repo = DistributedRepository()
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        repo.publish(c, tags={DiscoveryTag.SEARCHABLE_FROM_SUBJECT})
        assert repo.find_by_subject(EntityRef("u"))
        assert not repo.find_by_role(Role("A", "R"))

    def test_object_only_tag_hides_from_subject_queries(self, store):
        repo = DistributedRepository()
        c = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        repo.publish(c, tags={DiscoveryTag.SEARCHABLE_FROM_OBJECT})
        assert not repo.find_by_subject(EntityRef("u"))
        assert repo.find_by_role(Role("A", "R"))

    def test_query_count_increments(self, store):
        repo = DistributedRepository()
        before = repo.query_count
        repo.find_by_subject(EntityRef("nobody"))
        assert repo.query_count == before + 1

    def test_shards_per_home(self, store):
        repo = DistributedRepository()
        repo.publish(issue(store.identity("A"), EntityRef("u"), Role("A", "R")))
        repo.publish(issue(store.identity("B"), EntityRef("v"), Role("B", "R")))
        # Subject homes u,v plus role-owner homes A,B.
        assert repo.shard_count == 4

    def test_credential_count_dedupes_indexes(self, store):
        repo = DistributedRepository()
        repo.publish(issue(store.identity("A"), EntityRef("u"), Role("A", "R")), BOTH_TAGS)
        assert repo.credential_count == 1


class TestCollect:
    def test_collects_forward_chain(self, store):
        repo = DistributedRepository()
        c1 = issue(store.identity("SD"), EntityRef("Bob"), Role("SD", "Member"))
        c2 = issue(store.identity("NY"), Role("SD", "Member"), Role("NY", "Member"))
        repo.publish_all([c1, c2])
        harvested = {d.credential_id for d in repo.collect(EntityRef("Bob"), Role("NY", "Member"))}
        assert {c1.credential_id, c2.credential_id} <= harvested

    def test_collects_assignment_evidence_for_third_party(self, store):
        repo = DistributedRepository()
        grant = issue(
            store.identity("NY"), EntityRef("SD"), Role("NY", "Partner"), assignment=True
        )
        c1 = issue(store.identity("SE"), EntityRef("Ch"), Role("SE", "Member"))
        c2 = issue(store.identity("SD"), Role("SE", "Member"), Role("NY", "Partner"))
        repo.publish_all([grant, c1, c2])
        harvested = {
            d.credential_id for d in repo.collect(EntityRef("Ch"), Role("NY", "Partner"))
        }
        assert grant.credential_id in harvested

    def test_ignores_unrelated_credentials(self, store):
        repo = DistributedRepository()
        wanted = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        noise = issue(store.identity("Z"), EntityRef("w"), Role("Z", "Q"))
        repo.publish_all([wanted, noise])
        harvested = {d.credential_id for d in repo.collect(EntityRef("u"), Role("A", "R"))}
        assert noise.credential_id not in harvested

    def test_depth_bound(self, store):
        repo = DistributedRepository()
        creds = [issue(store.identity("D0"), EntityRef("u"), Role("D0", "R"))]
        for i in range(1, 6):
            creds.append(
                issue(store.identity(f"D{i}"), Role(f"D{i-1}", "R"), Role(f"D{i}", "R"))
            )
        repo.publish_all(creds)
        shallow = repo.collect(EntityRef("u"), Role("D5", "R"), max_depth=1)
        deep = repo.collect(EntityRef("u"), Role("D5", "R"), max_depth=10)
        assert len(shallow) < len(deep)

    def test_dotted_entity_subject_not_misparsed(self, store):
        # Entity names may contain dots (Comp.SD); collection must not
        # reinterpret them as roles.
        repo = DistributedRepository()
        c = issue(store.identity("NY"), EntityRef("Comp.SD"), Role("NY", "Partner"))
        repo.publish(c)
        harvested = repo.collect(EntityRef("Comp.SD"), Role("NY", "Partner"))
        assert [d.credential_id for d in harvested] == [c.credential_id]
