"""Differential test: regression vs progression proof search.

The module docstring of :mod:`repro.drbac.proof` promises that the two
search strategies "return identical authorization decisions".  This test
holds it to that over ~200 seeded-random credential graphs — mixes of
self-certifying, third-party, and assignment delegations, role-to-role
chaining, and occasional valued attributes (which exercise progression's
attribute-incompatibility fallback path).

Credentials are built as unsigned :class:`Delegation` values and searched
with ``verify_signatures=False`` — signature checking is orthogonal to
search strategy and RSA keygen for hundreds of graphs would dominate the
test's runtime.

Alongside the decisions themselves, the observability layer must agree:
running the same query set under each strategy in its own scoped metrics
registry must record the same number of successful proofs.
"""

from __future__ import annotations

import random

from repro import obs
from repro.drbac.delegation import Delegation, classify
from repro.drbac.model import AttrRange, AttrScalar, AttrSet, EntityRef, Role
from repro.drbac.proof import ProofEngine
from repro.obs import names as metric_names

N_GRAPHS = 200
QUERIES_PER_GRAPH = 4

ENTITIES = [f"E{i}" for i in range(6)]
OWNERS = ["OrgA", "OrgB", "OrgC"]
ROLE_NAMES = ["R0", "R1", "R2"]


def _random_attributes(rng: random.Random) -> dict:
    if rng.random() < 0.7:
        return {}
    kind = rng.choice(["set", "range", "scalar"])
    if kind == "set":
        value = AttrSet(rng.sample([True, False, 1, 2, 3], k=rng.randint(1, 3)))
    elif kind == "range":
        low = rng.randint(0, 10)
        value = AttrRange(low, low + rng.randint(0, 10))
    else:
        value = AttrScalar(rng.randint(1, 100))
    return {rng.choice(["Secure", "Trust", "CPU"]): value}


def _random_graph(rng: random.Random, graph_id: int) -> list[Delegation]:
    roles = [Role(owner, name) for owner in OWNERS for name in ROLE_NAMES]
    credentials: list[Delegation] = []
    n_creds = rng.randint(5, 18)
    for i in range(n_creds):
        role = rng.choice(roles)
        # Subjects: mostly entities, sometimes another role (chaining).
        if rng.random() < 0.35:
            subject = rng.choice([r for r in roles if r != role])
        else:
            subject = EntityRef(rng.choice(ENTITIES))
        assignment = rng.random() < 0.2
        # Issuers: usually the role owner (self-certifying), sometimes a
        # third party (usable only with assignment-right evidence).
        issuer = role.owner if rng.random() < 0.7 else rng.choice(ENTITIES + OWNERS)
        credentials.append(
            Delegation(
                subject=subject,
                role=role,
                issuer=issuer,
                delegation_type=classify(subject, role, issuer, assignment=assignment),
                attributes=_random_attributes(rng),
                credential_id=f"g{graph_id}-c{i}",
            )
        )
    return credentials


def _queries(rng: random.Random) -> list[tuple[EntityRef, Role]]:
    return [
        (
            EntityRef(rng.choice(ENTITIES)),
            Role(rng.choice(OWNERS), rng.choice(ROLE_NAMES)),
        )
        for _ in range(QUERIES_PER_GRAPH)
    ]


def test_regression_and_progression_agree_everywhere():
    rng = random.Random(20030623)  # HPDC 2003
    engine = ProofEngine(identities={}, verify_signatures=False)
    cases = [
        (_random_graph(rng, g), _queries(rng)) for g in range(N_GRAPHS)
    ]

    decisions: dict[str, list[bool]] = {}
    found_counts: dict[str, int] = {}
    for direction in ("regression", "progression"):
        outcomes: list[bool] = []
        with obs.scoped() as registry:
            for credentials, queries in cases:
                for subject, role in queries:
                    proof = engine.find_proof(
                        subject, role, credentials, direction=direction
                    )
                    outcomes.append(proof is not None)
            found_counts[direction] = registry.counter_value(metric_names.PROOF_FOUND)
            assert registry.counter_value(metric_names.PROOF_SEARCHES) == len(outcomes)
        decisions[direction] = outcomes

    disagreements = [
        i
        for i, (r, p) in enumerate(
            zip(decisions["regression"], decisions["progression"])
        )
        if r != p
    ]
    assert not disagreements, (
        f"strategies disagree on {len(disagreements)} of "
        f"{len(decisions['regression'])} queries (first at index {disagreements[0]})"
    )
    # Some graphs must actually grant and some must deny, or the test
    # proves nothing about either strategy.
    assert 0 < found_counts["regression"] < len(decisions["regression"])
    assert found_counts["regression"] == found_counts["progression"]


def test_proof_contents_agree_on_found_chains():
    """Where both strategies find a proof, both proofs must be valid
    chains from the subject to the goal role (they may differ in route)."""
    rng = random.Random(7)
    engine = ProofEngine(identities={}, verify_signatures=False)
    checked = 0
    for g in range(40):
        credentials = _random_graph(rng, g)
        for subject, role in _queries(rng):
            a = engine.find_proof(subject, role, credentials, direction="regression")
            b = engine.find_proof(subject, role, credentials, direction="progression")
            assert (a is None) == (b is None)
            for proof in (a, b):
                if proof is None:
                    continue
                assert str(proof.chain[0].subject) == str(subject)
                assert proof.chain[-1].role == role
                for prev, nxt in zip(proof.chain, proof.chain[1:]):
                    assert nxt.subject == prev.role
                checked += 1
    assert checked > 0
