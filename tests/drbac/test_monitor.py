"""Revocation and validity-monitor tests (the continuous-authorization
substrate Switchboard builds on)."""

from __future__ import annotations

import pytest

from repro.crypto import KeyStore
from repro.drbac.delegation import issue
from repro.drbac.model import EntityRef, Role
from repro.drbac.monitor import (
    ProofMonitor,
    RevocationAuthority,
    RevocationDirectory,
)


@pytest.fixture(scope="module")
def store():
    return KeyStore(key_bits=512)


def cred(store, issuer="A", subject="u", role="R", **kwargs):
    return issue(store.identity(issuer), EntityRef(subject), Role(issuer, role), **kwargs)


class TestRevocationAuthority:
    def test_revoke_and_query(self):
        auth = RevocationAuthority("A")
        auth.revoke("c-1")
        assert auth.is_revoked("c-1")
        assert not auth.is_revoked("c-2")

    def test_subscribers_notified(self):
        auth = RevocationAuthority("A")
        fired = []
        auth.subscribe("c-1", fired.append)
        auth.revoke("c-1")
        assert fired == ["c-1"]

    def test_late_subscriber_notified_immediately(self):
        auth = RevocationAuthority("A")
        auth.revoke("c-1")
        fired = []
        auth.subscribe("c-1", fired.append)
        assert fired == ["c-1"]

    def test_double_revoke_notifies_once(self):
        auth = RevocationAuthority("A")
        fired = []
        auth.subscribe("c-1", fired.append)
        auth.revoke("c-1")
        auth.revoke("c-1")
        assert fired == ["c-1"]

    def test_unsubscribe(self):
        auth = RevocationAuthority("A")
        fired = []
        cancel = auth.subscribe("c-1", fired.append)
        cancel()
        auth.revoke("c-1")
        assert fired == []


class TestRevocationDirectory:
    def test_routes_by_home(self, store):
        directory = RevocationDirectory()
        c = cred(store)
        directory.revoke(c)
        assert directory.is_revoked(c)

    def test_unrevoked_default(self, store):
        directory = RevocationDirectory()
        assert not directory.is_revoked(cred(store))

    def test_separate_homes_are_independent(self, store):
        directory = RevocationDirectory()
        c1 = cred(store, issuer="A")
        c2 = cred(store, issuer="B")
        directory.revoke(c1)
        assert directory.is_revoked(c1)
        assert not directory.is_revoked(c2)


class TestProofMonitor:
    def test_valid_until_revocation(self, store):
        directory = RevocationDirectory()
        c = cred(store)
        monitor = ProofMonitor([c], directory)
        assert monitor.valid
        directory.revoke(c)
        assert not monitor.valid
        assert monitor.invalidated_by == c.credential_id

    def test_callback_fires_once(self, store):
        directory = RevocationDirectory()
        c1, c2 = cred(store), cred(store)
        monitor = ProofMonitor([c1, c2], directory)
        fired = []
        monitor.on_invalidated(fired.append)
        directory.revoke(c1)
        directory.revoke(c2)
        assert fired == [c1.credential_id]

    def test_late_callback_gets_invalidation(self, store):
        directory = RevocationDirectory()
        c = cred(store)
        monitor = ProofMonitor([c], directory)
        directory.revoke(c)
        fired = []
        monitor.on_invalidated(fired.append)
        assert fired == [c.credential_id]

    def test_any_credential_in_proof_invalidates(self, store):
        directory = RevocationDirectory()
        creds = [cred(store, issuer=f"I{i}") for i in range(4)]
        monitor = ProofMonitor(creds, directory)
        directory.revoke(creds[2])
        assert not monitor.valid

    def test_expiry_check(self, store):
        directory = RevocationDirectory()
        c = cred(store, expires_at=10.0)
        monitor = ProofMonitor([c], directory)
        assert monitor.check_expiry(5.0)
        assert not monitor.check_expiry(11.0)
        assert not monitor.valid

    def test_closed_monitor_ignores_revocation(self, store):
        directory = RevocationDirectory()
        c = cred(store)
        monitor = ProofMonitor([c], directory)
        monitor.close()
        directory.revoke(c)
        assert monitor.valid  # detached before the event

    def test_watched_credentials(self, store):
        directory = RevocationDirectory()
        creds = [cred(store), cred(store)]
        monitor = ProofMonitor(creds, directory)
        assert monitor.watched_credentials == [c.credential_id for c in creds]
