"""Independent proof-verifier tests, including adversarial mutations and
the property that every engine-found proof verifies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import KeyStore
from repro.drbac.delegation import issue
from repro.drbac.model import AttrScalar, EntityRef, Role
from repro.drbac.monitor import RevocationDirectory
from repro.drbac.proof import Proof, ProofEngine
from repro.drbac.verify import ProofVerifier
from repro.errors import AuthorizationError


@pytest.fixture(scope="module")
def store():
    return KeyStore(key_bits=512)


def _identities(store, names):
    return {name: store.public(name) for name in names}


def _chain_world(store):
    c1 = issue(store.identity("SD"), EntityRef("Bob"), Role("SD", "Member"),
               attributes={"CPU": AttrScalar(100)})
    c2 = issue(store.identity("NY"), Role("SD", "Member"), Role("NY", "Member"),
               attributes={"CPU": AttrScalar(80)})
    grant = issue(store.identity("NY"), EntityRef("SD"), Role("NY", "Partner"),
                  assignment=True)
    c3 = issue(store.identity("SD"), Role("NY", "Member"), Role("NY", "Partner"))
    return [c1, c2, grant, c3], ["SD", "NY"]


@pytest.fixture(scope="module")
def world(store):
    creds, names = _chain_world(store)
    engine = ProofEngine(_identities(store, names))
    verifier = ProofVerifier(_identities(store, names))
    return creds, engine, verifier


class TestValidProofs:
    def test_single_hop_verifies(self, world):
        creds, engine, verifier = world
        proof = engine.find_proof(EntityRef("Bob"), Role("SD", "Member"), creds)
        assert verifier.verify(proof).ok

    def test_chain_verifies(self, world):
        creds, engine, verifier = world
        proof = engine.find_proof(EntityRef("Bob"), Role("NY", "Member"), creds)
        assert verifier.verify(proof).ok

    def test_third_party_with_support_verifies(self, world):
        creds, engine, verifier = world
        proof = engine.find_proof(EntityRef("Bob"), Role("NY", "Partner"), creds)
        assert proof is not None
        result = verifier.verify(proof)
        assert result.ok, result.errors

    def test_progression_proofs_verify_too(self, world):
        creds, engine, verifier = world
        proof = engine.find_proof(
            EntityRef("Bob"), Role("NY", "Member"), creds, direction="progression"
        )
        assert verifier.verify(proof).ok

    def test_require_valid_passes(self, world):
        creds, engine, verifier = world
        proof = engine.find_proof(EntityRef("Bob"), Role("SD", "Member"), creds)
        verifier.require_valid(proof)


class TestAdversarialMutations:
    def _proof(self, world):
        creds, engine, verifier = world
        return engine.find_proof(EntityRef("Bob"), Role("NY", "Partner"), creds)

    def test_wrong_subject_rejected(self, world):
        creds, engine, verifier = world
        proof = self._proof(world)
        forged = Proof(
            subject=EntityRef("Mallory"), role=proof.role,
            chain=proof.chain, support=proof.support, attributes=proof.attributes,
        )
        result = verifier.verify(forged)
        assert not result.ok
        assert any("claimed subject" in e for e in result.errors)

    def test_wrong_goal_rejected(self, world):
        proof = self._proof(world)
        forged = Proof(
            subject=proof.subject, role=Role("NY", "Admin"),
            chain=proof.chain, support=proof.support, attributes=proof.attributes,
        )
        _, _, verifier = world
        assert not verifier.verify(forged).ok

    def test_broken_chain_rejected(self, world):
        proof = self._proof(world)
        forged = Proof(
            subject=proof.subject, role=proof.role,
            chain=[proof.chain[0], proof.chain[-1]] if len(proof.chain) > 2 else list(reversed(proof.chain)),
            support=proof.support, attributes=proof.attributes,
        )
        _, _, verifier = world
        assert not verifier.verify(forged).ok

    def test_stripped_support_rejected(self, world):
        proof = self._proof(world)
        forged = Proof(
            subject=proof.subject, role=proof.role,
            chain=proof.chain, support=[], attributes=proof.attributes,
        )
        _, _, verifier = world
        result = verifier.verify(forged)
        assert not result.ok
        assert any("assignment-right" in e for e in result.errors)

    def test_inflated_attributes_rejected(self, world, store):
        creds, engine, verifier = world
        proof = engine.find_proof(EntityRef("Bob"), Role("NY", "Member"), creds)
        forged = Proof(
            subject=proof.subject, role=proof.role, chain=proof.chain,
            support=proof.support, attributes={"CPU": AttrScalar(100)},  # real: 80
        )
        result = verifier.verify(forged)
        assert not result.ok
        assert any("attribute" in e for e in result.errors)

    def test_empty_chain_rejected(self, world):
        _, _, verifier = world
        forged = Proof(subject=EntityRef("x"), role=Role("A", "R"), chain=[])
        assert not verifier.verify(forged).ok

    def test_expired_credential_rejected(self, world, store):
        cred = issue(store.identity("A"), EntityRef("u"), Role("A", "R"), expires_at=1.0)
        proof = Proof(subject=EntityRef("u"), role=Role("A", "R"), chain=[cred])
        verifier = ProofVerifier({"A": store.public("A")}, now=5.0)
        result = verifier.verify(proof)
        assert any("expired" in e for e in result.errors)

    def test_revoked_credential_rejected(self, world, store):
        cred = issue(store.identity("A"), EntityRef("u"), Role("A", "R"))
        revocations = RevocationDirectory()
        revocations.revoke(cred)
        proof = Proof(subject=EntityRef("u"), role=Role("A", "R"), chain=[cred])
        verifier = ProofVerifier({"A": store.public("A")}, revocations)
        result = verifier.verify(proof)
        assert any("revoked" in e for e in result.errors)

    def test_unknown_issuer_rejected(self, world, store):
        cred = issue(store.identity("Ghost"), EntityRef("u"), Role("Ghost", "R"))
        proof = Proof(subject=EntityRef("u"), role=Role("Ghost", "R"), chain=[cred])
        verifier = ProofVerifier({})
        result = verifier.verify(proof)
        assert any("unknown issuer" in e for e in result.errors)

    def test_require_valid_raises(self, world):
        _, _, verifier = world
        forged = Proof(subject=EntityRef("x"), role=Role("A", "R"), chain=[])
        with pytest.raises(AuthorizationError):
            verifier.require_valid(forged)


class TestEngineVerifierAgreement:
    """Property: every proof any search direction returns must verify."""

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_found_proofs_always_verify(self, store, data):
        n_roles = data.draw(st.integers(3, 7))
        n_creds = data.draw(st.integers(2, 12))
        roles = [Role(f"Dom{i}", "R") for i in range(n_roles)]
        creds = []
        for _ in range(n_creds):
            src = data.draw(st.integers(-1, n_roles - 1))
            dst = data.draw(st.integers(0, n_roles - 1))
            subject = EntityRef("u") if src == -1 else roles[src]
            creds.append(issue(store.identity(roles[dst].owner), subject, roles[dst]))
        identities = _identities(store, [r.owner for r in roles])
        engine = ProofEngine(identities)
        verifier = ProofVerifier(identities)
        goal = roles[data.draw(st.integers(0, n_roles - 1))]
        for direction in ("regression", "progression"):
            proof = engine.find_proof(EntityRef("u"), goal, creds, direction=direction)
            if proof is not None:
                result = verifier.verify(proof)
                assert result.ok, result.errors
