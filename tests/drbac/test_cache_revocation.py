"""Regression tests: revocation must invalidate CachedAuthorizer entries.

The cache's soundness claim is that serving a memoized proof never
extends access beyond what a fresh search would grant.  These tests pin
that down against :meth:`DrbacEngine.revoke` — for the direct credential,
for a mid-chain link, and for clock-driven expiry — and check the cache
reports what happened through both its stats and the obs metrics.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.drbac.cache import CachedAuthorizer
from repro.errors import AuthorizationError
from repro.obs import names as metric_names


@pytest.fixture()
def cache(engine):
    return CachedAuthorizer(engine)


class TestRevocationInvalidatesCache:
    def test_direct_credential_revoked(self, engine, cache):
        cred = engine.delegate("Org", "Alice", "Org.Member")
        result = cache.authorize("Alice", "Org.Member")
        assert cache.authorize("Alice", "Org.Member") is result  # served hot
        engine.revoke(cred)
        assert not result.valid
        with pytest.raises(AuthorizationError):
            cache.authorize("Alice", "Org.Member")
        assert cache.stats.invalidated == 1
        # The stale grant is gone; what remains is the negatively cached
        # denial from the fresh (failed) search.
        assert len(cache) == 1
        with pytest.raises(AuthorizationError):
            cache.authorize("Alice", "Org.Member")
        assert cache.stats.negative_hits == 1

    def test_mid_chain_link_revoked(self, engine, cache):
        # Bob -> Dept.Staff -> Org.Member: revoking the *middle* link must
        # kill the cached proof even though Bob's own credential is fine.
        engine.delegate("Org", "Dept.Staff", "Org.Member")
        middle = engine.delegate("Dept", "Bob", "Dept.Staff")
        result = cache.authorize("Bob", "Org.Member")
        assert len(result.proof.chain) == 2
        engine.revoke(middle)
        assert not result.valid
        with pytest.raises(AuthorizationError):
            cache.authorize("Bob", "Org.Member")
        assert cache.stats.invalidated == 1

    def test_unrelated_revocation_keeps_entry_live(self, engine, cache):
        engine.delegate("Org", "Alice", "Org.Member")
        bystander = engine.delegate("Org", "Carol", "Org.Member")
        result = cache.authorize("Alice", "Org.Member")
        engine.revoke(bystander)
        assert result.valid
        assert cache.authorize("Alice", "Org.Member") is result
        assert cache.stats.invalidated == 0
        assert cache.stats.hits == 1

    def test_expired_credential_invalidated_on_lookup(self, engine, cache, clock):
        engine.delegate("Org", "Alice", "Org.Member", expires_at=10.0)
        result = cache.authorize("Alice", "Org.Member")
        clock.advance(20.0)
        assert result.monitor.check_expiry(clock.now()) is False
        with pytest.raises(AuthorizationError):
            cache.authorize("Alice", "Org.Member")
        assert cache.stats.invalidated == 1

    def test_regrant_after_revocation_caches_fresh_proof(self, engine, cache):
        old = engine.delegate("Org", "Alice", "Org.Member")
        stale = cache.authorize("Alice", "Org.Member")
        engine.revoke(old)
        fresh_cred = engine.delegate("Org", "Alice", "Org.Member")
        fresh = cache.authorize("Alice", "Org.Member")
        assert fresh is not stale
        assert fresh.valid
        assert fresh_cred.credential_id in fresh.monitor.watched_credentials
        assert cache.stats.misses == 2
        assert cache.stats.invalidated == 1


class TestObsAccounting:
    def test_invalidation_counts_and_gauge_stays_honest(self, engine):
        with obs.scoped() as registry:
            # negative=False keeps the point sharp: the gauge must drop to
            # zero on pure invalidation, with no new insert to mask drift.
            cache = CachedAuthorizer(engine, negative=False)
            cred = engine.delegate("Org", "Alice", "Org.Member")
            cache.authorize("Alice", "Org.Member")
            cache.authorize("Alice", "Org.Member")
            assert registry.counter_value(metric_names.CACHE_MISSES) == 1
            assert registry.counter_value(metric_names.CACHE_HITS) == 1
            assert registry.gauge(metric_names.CACHE_ENTRIES).value == 1
            engine.revoke(cred)
            with pytest.raises(AuthorizationError):
                cache.authorize("Alice", "Org.Member")
            assert registry.counter_value(metric_names.CACHE_INVALIDATED) == 1
            # The stale entry is gone and the gauge reflects it even though
            # the fresh search raised before any new insert happened.
            assert registry.gauge(metric_names.CACHE_ENTRIES).value == 0
