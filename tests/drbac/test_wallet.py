"""Wallet tests."""

from __future__ import annotations

from repro.drbac import Wallet


class TestWallet:
    def test_grant_and_iterate(self, engine):
        d = engine.delegate("A", "u", "A.R", publish=False)
        wallet = Wallet(owner="u")
        wallet.grant(d)
        assert list(wallet) == [d]
        assert len(wallet) == 1

    def test_grant_idempotent(self, engine):
        d = engine.delegate("A", "u", "A.R", publish=False)
        wallet = Wallet(owner="u")
        wallet.grant(d)
        wallet.grant(d)
        assert len(wallet) == 1

    def test_remove(self, engine):
        d = engine.delegate("A", "u", "A.R", publish=False)
        wallet = Wallet(owner="u")
        wallet.grant(d)
        assert wallet.remove(d.credential_id)
        assert not wallet.remove(d.credential_id)
        assert len(wallet) == 0

    def test_contains(self, engine):
        d = engine.delegate("A", "u", "A.R", publish=False)
        wallet = Wallet(owner="u")
        wallet.grant(d)
        assert d.credential_id in wallet

    def test_credentials_preserve_order(self, engine):
        wallet = Wallet(owner="u")
        creds = [engine.delegate("A", "u", f"A.R{i}", publish=False) for i in range(3)]
        wallet.grant_all(creds)
        assert wallet.credentials() == creds
