"""Property tests: the cached authorizer agrees with the bare engine.

Hypothesis drives random interleavings of delegate / revoke /
clock-advance / authorize over a small universe of subjects and roles,
holding one :class:`CachedAuthorizer` — with eviction pressure and
negative caching both on — against the uncached engine it wraps.  Two
invariants survive every interleaving:

* **Agreement** — at every authorize step the cached decision
  (grant or deny) matches what a fresh, uncached proof search returns
  at that same instant.
* **No stale grants** — every result served from the cache is still
  live: its monitor is valid and none of its credentials has expired.

Together these subsume the soundness claims the unit tests pin one at a
time: a revocation can never be masked by a cached proof, and a publish
can never be masked by a cached denial.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import ManualClock
from repro.drbac import DrbacEngine
from repro.drbac.cache import CachedAuthorizer
from repro.errors import AuthorizationError

SUBJECTS = ["Alice", "Bob", "Carol"]
ROLES = ["Org.Member", "Org.Admin"]

_delegate = st.tuples(
    st.just("delegate"),
    st.sampled_from(SUBJECTS),
    st.sampled_from(ROLES),
    st.one_of(st.none(), st.floats(min_value=1.0, max_value=50.0)),
)
_revoke = st.tuples(st.just("revoke"), st.integers(min_value=0, max_value=63))
_advance = st.tuples(st.just("advance"), st.floats(min_value=0.5, max_value=20.0))
_authorize = st.tuples(
    st.just("authorize"), st.sampled_from(SUBJECTS), st.sampled_from(ROLES)
)

op_sequences = st.lists(
    st.one_of(_delegate, _revoke, _advance, _authorize), max_size=24
)


def _uncached_outcome(engine, subject, role):
    try:
        result = engine.authorize(subject, role)
    except AuthorizationError:
        return False
    result.close()
    return True


@settings(max_examples=30, deadline=None)
@given(ops=op_sequences)
def test_cache_agrees_with_uncached_engine(key_store, ops):
    clock = ManualClock()
    engine = DrbacEngine(key_store=key_store, clock=clock)
    # Tiny capacity + few shards so eviction churns during the run.
    cache = CachedAuthorizer(engine, max_entries=3, shards=2)
    issued = []
    revoked = set()
    for op in ops:
        if op[0] == "delegate":
            _, subject, role, lifetime = op
            expires = None if lifetime is None else clock.now() + lifetime
            issued.append(engine.delegate("Org", subject, role, expires_at=expires))
        elif op[0] == "revoke":
            if issued:
                cred = issued[op[1] % len(issued)]
                if cred.credential_id not in revoked:
                    revoked.add(cred.credential_id)
                    engine.revoke(cred)
        elif op[0] == "advance":
            clock.advance(op[1])
        else:
            _, subject, role = op
            try:
                result = cache.authorize(subject, role)
                cached_grant = True
            except AuthorizationError:
                cached_grant = False
            if cached_grant:
                # A served grant must itself still be live.
                assert result.valid
                assert result.monitor.check_expiry(clock.now())
                assert not (set(result.monitor.watched_credentials) & revoked)
            assert cached_grant == _uncached_outcome(engine, subject, role), (
                f"cache and engine disagree on {subject} -> {role}"
            )
        # Capacity is a hard bound at every step, not just at the end.
        assert len(cache) <= 3
    cache.clear()


@settings(max_examples=15, deadline=None)
@given(ops=op_sequences)
def test_shard_placement_is_deterministic(key_store, ops):
    """Replaying one interleaving lands every key on the same shard."""
    clock = ManualClock()
    engine = DrbacEngine(key_store=key_store, clock=clock)
    sizes = []
    for _ in range(2):
        cache = CachedAuthorizer(engine, max_entries=8, shards=4)
        for op in ops:
            if op[0] == "authorize":
                cache.is_authorized(op[1], op[2])
        sizes.append(cache.shard_sizes())
        cache.clear()
    assert sizes[0] == sizes[1]


# -- model-based state machine -------------------------------------------
#
# The simulation checker's naive dRBAC oracle (repro.check.oracles) is an
# independent executable model of role membership.  Here Hypothesis
# drives the cached authorizer and the oracle through one interleaving of
# delegate / publish / revoke / advance and demands they agree at every
# authorization, including across cross-namespace role chains
# (Alice -> OrgA.Reader -> OrgB.Member) that the list-based strategies
# above never build.

from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.check.oracles import DrbacOracle
from repro.crypto import KeyStore
from repro.drbac.model import subject_key

_MACHINE_ROLES = ["OrgA.Reader", "OrgB.Member"]
_MACHINE_KEYS = KeyStore(key_bits=512)


class CacheVsOracleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = ManualClock()
        self.engine = DrbacEngine(key_store=_MACHINE_KEYS, clock=self.clock)
        self.cache = CachedAuthorizer(self.engine, max_entries=4, shards=2)
        self.oracle = DrbacOracle()
        self.creds = {}
        self.published = set()
        self.revoked = set()

    @rule(
        subject=st.sampled_from(SUBJECTS + _MACHINE_ROLES),
        role=st.sampled_from(_MACHINE_ROLES),
        ttl=st.one_of(st.none(), st.floats(min_value=1.0, max_value=40.0)),
        publish=st.booleans(),
    )
    def delegate(self, subject, role, ttl, publish):
        if subject == role:
            return  # self-edges prove nothing
        ref = f"m{len(self.creds)}"
        expires = None if ttl is None else self.clock.now() + ttl
        cred = self.engine.delegate(
            role.split(".")[0], subject, role, expires_at=expires, publish=publish
        )
        self.creds[ref] = cred
        if publish:
            self.published.add(ref)
        self.oracle.delegate(
            ref, subject, role, expires_at=expires, published=publish
        )

    @rule(pick=st.integers(min_value=0, max_value=63))
    def publish(self, pick):
        if not self.creds:
            return
        ref = sorted(self.creds)[pick % len(self.creds)]
        if ref in self.published:
            return  # re-publishing duplicates repository entries
        self.published.add(ref)
        self.engine.repository.publish(self.creds[ref])
        self.oracle.publish(ref)

    @rule(pick=st.integers(min_value=0, max_value=63))
    def revoke(self, pick):
        if not self.creds:
            return
        ref = sorted(self.creds)[pick % len(self.creds)]
        self.engine.revoke(self.creds[ref])
        self.oracle.revoke(ref)
        self.revoked.add(ref)

    @rule(seconds=st.floats(min_value=0.5, max_value=25.0))
    def advance(self, seconds):
        self.clock.advance(seconds)

    @rule()
    def expire(self):
        """Step the clock just past the *earliest* pending expiry — a
        targeted expiry event, not merely random time passing."""
        pending = [
            cred.expires_at
            for cred in self.creds.values()
            if cred.expires_at is not None and cred.expires_at > self.clock.now()
        ]
        if not pending:
            return
        self.clock.advance(min(pending) - self.clock.now() + 0.25)

    @rule(pick=st.integers(min_value=0, max_value=63))
    def republish(self, pick):
        """Re-grant a dead (revoked or expired) edge with a *fresh*
        credential: the deny -> grant transition that delta-keyed
        negative entries must honor."""
        now = self.clock.now()
        dead = sorted(
            ref
            for ref, cred in self.creds.items()
            if ref in self.revoked or cred.is_expired(now)
        )
        if not dead:
            return
        old = self.creds[dead[pick % len(dead)]]
        ref = f"m{len(self.creds)}"
        cred = self.engine.delegate(
            str(old.role).split(".")[0], subject_key(old.subject), str(old.role)
        )
        self.creds[ref] = cred
        self.published.add(ref)
        self.oracle.delegate(ref, subject_key(old.subject), str(old.role))

    @rule(
        subject=st.sampled_from(SUBJECTS + ["mallory"]),
        role=st.sampled_from(_MACHINE_ROLES),
    )
    def authorize(self, subject, role):
        observed = self.cache.is_authorized(subject, role)
        expected = self.oracle.holds(subject, role, self.clock.now())
        assert observed == expected, (
            f"cache says {observed}, oracle says {expected} "
            f"for {subject} -> {role} at t={self.clock.now()}"
        )

    @invariant()
    def capacity(self):
        assert len(self.cache) <= 4

    @invariant()
    def watch_table_is_precise(self):
        """The per-credential dependents index never retains ids for
        evicted entries, and never drops ids for live ones: watches and
        shard contents mirror each other exactly, in both directions."""
        for cred_id, watch in self.cache._watches.items():
            assert watch.entries, f"empty watch retained for {cred_id}"
            for key, (shard, entry) in watch.entries.items():
                assert shard.entries.get(key) is entry, (
                    f"watch on {cred_id} references an evicted entry {key}"
                )
                assert cred_id in entry.cred_ids
        for shard in self.cache._shards:
            for key, entry in shard.entries.items():
                for cred_id in entry.cred_ids:
                    watch = self.cache._watches.get(cred_id)
                    assert watch is not None, f"live entry {key} unwatched"
                    assert watch.entries.get(key, (None, None))[1] is entry

    def teardown(self):
        self.cache.clear()


CacheVsOracleMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestCacheVsOracle = CacheVsOracleMachine.TestCase
