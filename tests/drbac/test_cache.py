"""Monitored proof-cache tests: hits, sound invalidation, eviction."""

from __future__ import annotations

import pytest

from repro import obs
from repro.drbac.cache import CachedAuthorizer
from repro.errors import AuthorizationError
from repro.obs import names as metric_names


class TestCaching:
    def test_second_lookup_hits(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        first = cache.authorize("Alice", "Comp.NY.Member")
        second = cache.authorize("Alice", "Comp.NY.Member")
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_goals_distinct_entries(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Partner")
        cache = CachedAuthorizer(engine)
        cache.authorize("Alice", "Comp.NY.Member")
        cache.authorize("Alice", "Comp.NY.Partner")
        assert len(cache) == 2

    def test_denial_served_from_negative_cache(self, engine):
        cache = CachedAuthorizer(engine)
        with pytest.raises(AuthorizationError):
            cache.authorize("Nobody", "Comp.NY.Member")
        assert len(cache) == 1
        with pytest.raises(AuthorizationError):
            cache.authorize("Nobody", "Comp.NY.Member")
        assert cache.stats.negative_hits == 1
        assert cache.stats.misses == 1

    def test_negative_entry_dropped_on_publish(self, engine):
        cache = CachedAuthorizer(engine)
        assert not cache.is_authorized("Late", "Comp.NY.Member")
        # A new credential can upgrade a denial: the cached denial must
        # not outlive the publish that makes the subject authorized.
        engine.delegate("Comp.NY", "Late", "Comp.NY.Member")
        assert cache.is_authorized("Late", "Comp.NY.Member")
        assert cache.stats.invalidated == 1

    def test_negative_caching_can_be_disabled(self, engine):
        cache = CachedAuthorizer(engine, negative=False)
        with pytest.raises(AuthorizationError):
            cache.authorize("Nobody", "Comp.NY.Member")
        assert len(cache) == 0

    def test_explicit_credentials_bypass_cache(self, engine):
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member", publish=False)
        cache = CachedAuthorizer(engine)
        result = cache.authorize("Alice", "Comp.NY.Member", [cred])
        assert result.valid
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_attribute_requirements_distinguish_entries(self, engine):
        from repro.drbac.model import AttrSet

        engine.delegate(
            "Mail", "node1", "Mail.Node", attributes={"Secure": AttrSet([True])}
        )
        cache = CachedAuthorizer(engine)
        cache.authorize("node1", "Mail.Node")
        cache.authorize(
            "node1", "Mail.Node", required_attributes={"Secure": AttrSet([True])}
        )
        assert cache.stats.misses == 2


class TestSoundInvalidation:
    def test_revocation_forces_fresh_search(self, engine):
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        backup = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        cache.authorize("Alice", "Comp.NY.Member")
        engine.revoke(cred)
        # The backup credential still authorizes, but through a new proof.
        result = cache.authorize("Alice", "Comp.NY.Member")
        assert result.valid
        assert cache.stats.invalidated == 1
        assert cred.credential_id not in {
            d.credential_id for d in result.proof.all_delegations()
        }

    def test_revocation_without_backup_denies(self, engine):
        cred = engine.delegate("Comp.NY", "Bobby", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        cache.authorize("Bobby", "Comp.NY.Member")
        engine.revoke(cred)
        with pytest.raises(AuthorizationError):
            cache.authorize("Bobby", "Comp.NY.Member")

    def test_expiry_forces_fresh_search(self, engine, clock):
        engine.delegate("Comp.NY", "Cleo", "Comp.NY.Member", expires_at=10.0)
        cache = CachedAuthorizer(engine)
        cache.authorize("Cleo", "Comp.NY.Member")
        clock.advance(20.0)
        with pytest.raises(AuthorizationError):
            cache.authorize("Cleo", "Comp.NY.Member")
        assert cache.stats.invalidated == 1


class TestEviction:
    def test_bounded_size(self, engine):
        for i in range(6):
            engine.delegate("Comp.NY", f"user{i}", "Comp.NY.Member")
        cache = CachedAuthorizer(engine, max_entries=4)
        for i in range(6):
            cache.authorize(f"user{i}", "Comp.NY.Member")
        assert len(cache) <= 4

    def test_clear(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        cache.authorize("Alice", "Comp.NY.Member")
        cache.clear()
        assert len(cache) == 0

    def test_is_authorized_bool_form(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        assert cache.is_authorized("Alice", "Comp.NY.Member")
        assert not cache.is_authorized("Nobody", "Comp.NY.Member")


class TestEvictionAtomicity:
    """Eviction must remove-close-count in one step.

    An evicted entry's monitor callback stays subscribed until the proof
    is garbage collected, so a later revocation fires it against a cache
    that no longer holds the entry — or holds a *different* entry under
    the same key.  The identity check in ``_remove`` is what keeps the
    stats counters and the entries gauge from drifting here; these tests
    pin that regression.
    """

    def test_revoking_evicted_entry_does_not_double_count(self, engine):
        creds = [engine.delegate("Org", f"u{i}", "Org.Member") for i in range(3)]
        with obs.scoped() as registry:
            cache = CachedAuthorizer(engine, max_entries=2, shards=1)
            for i in range(3):
                cache.authorize(f"u{i}", "Org.Member")  # u0's entry evicted
            assert cache.stats.evicted == 1
            assert len(cache) == 2
            # The evicted proof's monitor callback is still registered;
            # revoking its credential now targets an entry already gone.
            engine.revoke(creds[0])
            assert cache.stats.invalidated == 0
            assert cache.stats.evicted == 1
            assert len(cache) == 2
            assert registry.gauge(metric_names.CACHE_ENTRIES).value == len(cache)

    def test_stale_callback_cannot_remove_key_reusing_entry(self, engine):
        old = engine.delegate("Org", "Alice", "Org.Member")
        cache = CachedAuthorizer(engine, max_entries=1, shards=1)
        stale = cache.authorize("Alice", "Org.Member")
        engine.delegate("Org", "Bob", "Org.Member")
        cache.authorize("Bob", "Org.Member")  # evicts Alice's entry
        fresh = cache.authorize("Alice", "Org.Member")  # reuses Alice's key
        assert fresh is not stale
        assert cache.stats.evicted == 2
        # Both proofs watch `old`, so revoking it fires the stale entry's
        # callback as well as the live one's.  Only the live entry may be
        # removed, and the removal must be counted exactly once.
        engine.revoke(old)
        assert cache.stats.invalidated == 1
        assert len(cache) == 0


class TestWatchDedup:
    """Regression for O(entries) callback accumulation: before the
    MonitorHub, every cached entry (and every proof monitor) whose chain
    crossed one hot credential registered its *own* callback at that
    credential's home RevocationAuthority, so the subscriber list grew
    with the cache.  The hub holds exactly one authority subscription per
    credential id, however many dependents share it."""

    def test_hot_credential_registers_one_authority_callback(self, engine):
        hot = engine.delegate("Org", "Org.Mid", "Org.Goal")
        for i in range(10):
            engine.delegate("Org", f"u{i}", "Org.Mid")
        cache = CachedAuthorizer(engine, max_entries=64, shards=1)
        for i in range(10):
            assert cache.is_authorized(f"u{i}", "Org.Goal")
        # Ten entries (plus their proof monitors) all depend on `hot`,
        # but the authority sees exactly one subscription for it.
        authority = engine.revocations.authority("Org")
        assert len(authority._subscribers[hot.credential_id]) == 1
        # The hub fans that one subscription out to every local listener:
        # 10 proof monitors, the cache's single per-credential watch, and
        # the incremental engine's index maintenance.
        assert engine.monitor_hub.listener_count(hot.credential_id) == 12

    def test_one_revocation_evicts_every_dependent_entry(self, engine):
        hot = engine.delegate("Org", "Org.Mid", "Org.Goal")
        for i in range(10):
            engine.delegate("Org", f"u{i}", "Org.Mid")
        cache = CachedAuthorizer(engine, max_entries=64, shards=4)
        for i in range(10):
            assert cache.is_authorized(f"u{i}", "Org.Goal")
        assert len(cache) == 10
        engine.revoke(hot)
        assert cache.stats.invalidated == 10
        assert len(cache) == 0
        # All dependents gone: the hub subscription was torn down too.
        assert engine.monitor_hub.listener_count(hot.credential_id) == 0
        authority = engine.revocations.authority("Org")
        assert len(authority._subscribers[hot.credential_id]) == 0
