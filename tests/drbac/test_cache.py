"""Monitored proof-cache tests: hits, sound invalidation, eviction."""

from __future__ import annotations

import pytest

from repro.drbac.cache import CachedAuthorizer
from repro.errors import AuthorizationError


class TestCaching:
    def test_second_lookup_hits(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        first = cache.authorize("Alice", "Comp.NY.Member")
        second = cache.authorize("Alice", "Comp.NY.Member")
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_goals_distinct_entries(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Partner")
        cache = CachedAuthorizer(engine)
        cache.authorize("Alice", "Comp.NY.Member")
        cache.authorize("Alice", "Comp.NY.Partner")
        assert len(cache) == 2

    def test_failure_not_cached(self, engine):
        cache = CachedAuthorizer(engine)
        with pytest.raises(AuthorizationError):
            cache.authorize("Nobody", "Comp.NY.Member")
        assert len(cache) == 0

    def test_attribute_requirements_distinguish_entries(self, engine):
        from repro.drbac.model import AttrSet

        engine.delegate(
            "Mail", "node1", "Mail.Node", attributes={"Secure": AttrSet([True])}
        )
        cache = CachedAuthorizer(engine)
        cache.authorize("node1", "Mail.Node")
        cache.authorize(
            "node1", "Mail.Node", required_attributes={"Secure": AttrSet([True])}
        )
        assert cache.stats.misses == 2


class TestSoundInvalidation:
    def test_revocation_forces_fresh_search(self, engine):
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        backup = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        cache.authorize("Alice", "Comp.NY.Member")
        engine.revoke(cred)
        # The backup credential still authorizes, but through a new proof.
        result = cache.authorize("Alice", "Comp.NY.Member")
        assert result.valid
        assert cache.stats.invalidated == 1
        assert cred.credential_id not in {
            d.credential_id for d in result.proof.all_delegations()
        }

    def test_revocation_without_backup_denies(self, engine):
        cred = engine.delegate("Comp.NY", "Bobby", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        cache.authorize("Bobby", "Comp.NY.Member")
        engine.revoke(cred)
        with pytest.raises(AuthorizationError):
            cache.authorize("Bobby", "Comp.NY.Member")

    def test_expiry_forces_fresh_search(self, engine, clock):
        engine.delegate("Comp.NY", "Cleo", "Comp.NY.Member", expires_at=10.0)
        cache = CachedAuthorizer(engine)
        cache.authorize("Cleo", "Comp.NY.Member")
        clock.advance(20.0)
        with pytest.raises(AuthorizationError):
            cache.authorize("Cleo", "Comp.NY.Member")
        assert cache.stats.invalidated == 1


class TestEviction:
    def test_bounded_size(self, engine):
        for i in range(6):
            engine.delegate("Comp.NY", f"user{i}", "Comp.NY.Member")
        cache = CachedAuthorizer(engine, max_entries=4)
        for i in range(6):
            cache.authorize(f"user{i}", "Comp.NY.Member")
        assert len(cache) <= 4

    def test_clear(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        cache.authorize("Alice", "Comp.NY.Member")
        cache.clear()
        assert len(cache) == 0

    def test_is_authorized_bool_form(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        cache = CachedAuthorizer(engine)
        assert cache.is_authorized("Alice", "Comp.NY.Member")
        assert not cache.is_authorized("Nobody", "Comp.NY.Member")
