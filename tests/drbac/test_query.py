"""Constraint parsing and evaluation tests."""

from __future__ import annotations

import pytest

from repro.drbac.model import AttrRange, AttrScalar, AttrSet, Role
from repro.drbac.query import Constraint


class TestConstraintParse:
    def test_bare_role(self):
        c = Constraint.parse("Mail.Node")
        assert c.role == Role("Mail", "Node")
        assert c.required_attributes == {}

    def test_with_set_attribute(self):
        c = Constraint.parse("Mail.Node with Secure={true}")
        assert c.required_attributes["Secure"] == AttrSet([True])

    def test_with_multiple_attributes(self):
        c = Constraint.parse("Mail.Node with Secure={true} Trust=(5,10)")
        assert c.required_attributes["Trust"] == AttrRange(5, 10)

    def test_with_scalar(self):
        c = Constraint.parse("Comp.SD.Executable with CPU=40")
        assert c.required_attributes["CPU"] == AttrScalar(40)

    def test_malformed_attribute(self):
        with pytest.raises(ValueError):
            Constraint.parse("Mail.Node with Secure")

    def test_str_roundtrip(self):
        text = "Mail.Node with Secure={true} Trust=(5,10)"
        assert str(Constraint.parse(text)) == text


class TestEvaluation:
    def test_satisfies_all(self, engine):
        engine.delegate(
            "Mail", "node9", "Mail.Node",
            attributes={"Secure": AttrSet([True]), "Trust": AttrRange(0, 10)},
        )
        evaluator = engine.evaluator()
        creds = engine.repository.collect(
            __import__("repro.drbac.model", fromlist=["EntityRef"]).EntityRef("node9"),
            Role("Mail", "Node"),
        )
        constraints = [
            Constraint.parse("Mail.Node with Secure={true}"),
            Constraint.parse("Mail.Node with Trust=(2,8)"),
        ]
        assert evaluator.satisfies_all(
            __import__("repro.drbac.model", fromlist=["EntityRef"]).EntityRef("node9"),
            constraints,
            creds,
        )
