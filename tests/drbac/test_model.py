"""dRBAC model tests: roles, subjects, and attribute attenuation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.drbac.model import (
    AttrRange,
    AttrScalar,
    AttrSet,
    EntityRef,
    IncompatibleAttributes,
    Role,
    attributes_satisfy,
    meet_attributes,
    parse_attribute,
    parse_subject,
    subject_key,
)


class TestRole:
    def test_parse_splits_on_last_dot(self):
        role = Role.parse("Comp.NY.Member")
        assert role.owner == "Comp.NY"
        assert role.name == "Member"

    def test_str_roundtrip(self):
        assert str(Role.parse("Inc.SE.Executable")) == "Inc.SE.Executable"

    def test_simple_owner(self):
        role = Role.parse("Mail.Node")
        assert role.owner == "Mail"

    @pytest.mark.parametrize("bad", ["NoDots", ".leading", "trailing.", ""])
    def test_unparseable(self, bad):
        with pytest.raises(ValueError):
            Role.parse(bad)

    def test_role_name_may_not_contain_dot(self):
        with pytest.raises(ValueError):
            Role(owner="A", name="B.C")


class TestSubjects:
    def test_entity_ref_str(self):
        assert subject_key(EntityRef("Bob")) == "Bob"

    def test_parse_subject_plain_name_is_entity(self):
        assert isinstance(parse_subject("Bob"), EntityRef)

    def test_parse_subject_dotted_is_role(self):
        subject = parse_subject("Comp.SD.Member")
        assert isinstance(subject, Role)

    def test_parse_subject_known_entity_wins(self):
        subject = parse_subject("Comp.SD", known_entities={"Comp.SD"})
        assert isinstance(subject, EntityRef)

    @pytest.mark.parametrize("bad", ["", ".x", "x."])
    def test_entity_validation(self, bad):
        with pytest.raises(ValueError):
            EntityRef(bad)


class TestAttrSet:
    def test_meet_intersects(self):
        result = AttrSet([True, False]).meet(AttrSet([True]))
        assert result.values == frozenset([True])

    def test_meet_disjoint_raises(self):
        with pytest.raises(IncompatibleAttributes):
            AttrSet([True]).meet(AttrSet([False]))

    def test_empty_set_rejected(self):
        with pytest.raises(IncompatibleAttributes):
            AttrSet([])

    def test_satisfies_superset(self):
        assert AttrSet([True, False]).satisfies(AttrSet([True]))
        assert not AttrSet([False]).satisfies(AttrSet([True]))

    def test_meet_with_range_rejected(self):
        with pytest.raises(IncompatibleAttributes):
            AttrSet([1]).meet(AttrRange(0, 1))

    def test_str_sorted(self):
        assert str(AttrSet(["b", "a"])) == "{a,b}"


class TestAttrRange:
    def test_meet_overlap(self):
        result = AttrRange(0, 10).meet(AttrRange(5, 20))
        assert (result.low, result.high) == (5, 10)

    def test_meet_disjoint_raises(self):
        with pytest.raises(IncompatibleAttributes):
            AttrRange(0, 3).meet(AttrRange(5, 9))

    def test_inverted_range_rejected(self):
        with pytest.raises(IncompatibleAttributes):
            AttrRange(9, 3)

    def test_satisfies_subrange(self):
        assert AttrRange(0, 10).satisfies(AttrRange(2, 7))
        assert not AttrRange(0, 5).satisfies(AttrRange(2, 7))

    def test_satisfies_scalar_inside(self):
        assert AttrRange(0, 10).satisfies(AttrScalar(5))
        assert not AttrRange(0, 10).satisfies(AttrScalar(15))

    def test_meet_scalar_inside(self):
        assert AttrRange(0, 10).meet(AttrScalar(5)) == AttrScalar(5)

    def test_meet_scalar_outside_raises(self):
        with pytest.raises(IncompatibleAttributes):
            AttrRange(0, 10).meet(AttrScalar(15))

    @given(
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)).map(sorted),
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)).map(sorted),
    )
    def test_meet_is_intersection(self, ab, cd):
        a, b = ab
        c, d = cd
        try:
            result = AttrRange(a, b).meet(AttrRange(c, d))
        except IncompatibleAttributes:
            assert max(a, c) > min(b, d)
        else:
            assert result.low == max(a, c) and result.high == min(b, d)


class TestAttrScalar:
    def test_meet_takes_min(self):
        # Table 2's CPU chain: 100 attenuated by 80 -> 80.
        assert AttrScalar(100).meet(AttrScalar(80)) == AttrScalar(80)

    def test_satisfies_at_most(self):
        assert AttrScalar(80).satisfies(AttrScalar(30))
        assert not AttrScalar(80).satisfies(AttrScalar(90))

    def test_str_integral(self):
        assert str(AttrScalar(100)) == "100"


class TestAttributeMaps:
    def test_meet_maps_pass_through_missing_keys(self):
        merged = meet_attributes(
            {"CPU": AttrScalar(100)}, {"Trust": AttrRange(0, 5)}
        )
        assert set(merged) == {"CPU", "Trust"}

    def test_meet_maps_attenuates_shared_keys(self):
        merged = meet_attributes(
            {"CPU": AttrScalar(100)}, {"CPU": AttrScalar(40)}
        )
        assert merged["CPU"] == AttrScalar(40)

    def test_satisfy_requires_all_keys(self):
        available = {"Secure": AttrSet([True, False])}
        assert attributes_satisfy(available, {"Secure": AttrSet([True])})
        assert not attributes_satisfy(available, {"Trust": AttrRange(0, 1)})

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=6))
    def test_scalar_attenuation_is_min_of_chain(self, values):
        acc = {}
        for v in values:
            acc = meet_attributes(acc, {"CPU": AttrScalar(v)})
        assert acc["CPU"] == AttrScalar(min(values))


class TestParseAttribute:
    def test_set_of_bools(self):
        value = parse_attribute("{true,false}")
        assert value == AttrSet([True, False])

    def test_range(self):
        assert parse_attribute("(0,10)") == AttrRange(0, 10)

    def test_scalar(self):
        assert parse_attribute("100") == AttrScalar(100)

    def test_bare_word_becomes_singleton_set(self):
        assert parse_attribute("Linux") == AttrSet(["Linux"])

    def test_malformed_range(self):
        with pytest.raises(ValueError):
            parse_attribute("(1,2,3)")
