"""Delegation tests: Table 1 types, signing, tamper-proofing, wire codec."""

from __future__ import annotations

import pytest

from repro.crypto import KeyStore
from repro.drbac.delegation import (
    Delegation,
    DelegationType,
    classify,
    issue,
    require_authentic,
)
from repro.drbac.model import AttrScalar, AttrSet, EntityRef, Role
from repro.drbac.wire import delegation_from_wire, delegation_to_wire
from repro.errors import CredentialError


@pytest.fixture(scope="module")
def store():
    return KeyStore(key_bits=512)


class TestClassification:
    """Table 1: the three delegation types derive from shape."""

    def test_self_certifying(self):
        kind = classify(
            EntityRef("Alice"), Role("Comp.NY", "Member"), "Comp.NY", assignment=False
        )
        assert kind is DelegationType.SELF_CERTIFYING

    def test_third_party(self):
        kind = classify(
            Role("Inc.SE", "Member"), Role("Comp.NY", "Partner"), "Comp.SD", assignment=False
        )
        assert kind is DelegationType.THIRD_PARTY

    def test_assignment(self):
        kind = classify(
            EntityRef("Comp.SD"), Role("Comp.NY", "Partner"), "Comp.NY", assignment=True
        )
        assert kind is DelegationType.ASSIGNMENT


class TestIssueAndVerify:
    def test_signature_verifies(self, store):
        d = issue(store.identity("Comp.NY"), EntityRef("Alice"), Role("Comp.NY", "Member"))
        assert d.verify_signature(store.public("Comp.NY"))

    def test_wrong_issuer_identity_rejected(self, store):
        d = issue(store.identity("Comp.NY"), EntityRef("Alice"), Role("Comp.NY", "Member"))
        assert not d.verify_signature(store.public("Comp.SD"))

    def test_tampered_subject_invalidates(self, store):
        d = issue(store.identity("Comp.NY"), EntityRef("Alice"), Role("Comp.NY", "Member"))
        forged = Delegation(
            subject=EntityRef("Mallory"),
            role=d.role,
            issuer=d.issuer,
            delegation_type=d.delegation_type,
            attributes=d.attributes,
            expires_at=d.expires_at,
            requires_monitoring=d.requires_monitoring,
            home=d.home,
            credential_id=d.credential_id,
            signature=d.signature,
        )
        assert not forged.verify_signature(store.public("Comp.NY"))

    def test_tampered_attributes_invalidate(self, store):
        d = issue(
            store.identity("Comp.SD"),
            Role("Comp.NY", "Executable"),
            Role("Comp.SD", "Executable"),
            attributes={"CPU": AttrScalar(80)},
        )
        forged = Delegation(
            subject=d.subject,
            role=d.role,
            issuer=d.issuer,
            delegation_type=d.delegation_type,
            attributes={"CPU": AttrScalar(100)},  # escalation attempt
            expires_at=d.expires_at,
            requires_monitoring=d.requires_monitoring,
            home=d.home,
            credential_id=d.credential_id,
            signature=d.signature,
        )
        assert not forged.verify_signature(store.public("Comp.SD"))

    def test_unique_credential_ids(self, store):
        a = issue(store.identity("X"), EntityRef("u"), Role("X", "R"))
        b = issue(store.identity("X"), EntityRef("u"), Role("X", "R"))
        assert a.credential_id != b.credential_id

    def test_expiry(self, store):
        d = issue(
            store.identity("X"), EntityRef("u"), Role("X", "R"), expires_at=10.0
        )
        assert not d.is_expired(5.0)
        assert d.is_expired(10.5)

    def test_require_authentic_raises_on_expired(self, store):
        d = issue(store.identity("X"), EntityRef("u"), Role("X", "R"), expires_at=1.0)
        with pytest.raises(CredentialError):
            require_authentic(d, store.public("X"), now=2.0)

    def test_require_authentic_raises_on_bad_signature(self, store):
        d = issue(store.identity("X"), EntityRef("u"), Role("X", "R"))
        with pytest.raises(CredentialError):
            require_authentic(d, store.public("Y"))

    def test_home_defaults_to_issuer(self, store):
        d = issue(store.identity("X"), EntityRef("u"), Role("X", "R"))
        assert d.home_entity == "X"

    def test_explicit_home(self, store):
        d = issue(store.identity("X"), EntityRef("u"), Role("X", "R"), home="HomeSvc")
        assert d.home_entity == "HomeSvc"


class TestDisplay:
    """String form mirrors the paper's bracket notation."""

    def test_plain(self, store):
        d = issue(store.identity("Comp.NY"), EntityRef("Alice"), Role("Comp.NY", "Member"))
        assert str(d) == "[ Alice -> Comp.NY.Member ] Comp.NY"

    def test_assignment_prime_mark(self, store):
        d = issue(
            store.identity("Comp.NY"),
            EntityRef("Comp.SD"),
            Role("Comp.NY", "Partner"),
            assignment=True,
        )
        assert str(d) == "[ Comp.SD -> Comp.NY.Partner' ] Comp.NY"

    def test_attributes_shown(self, store):
        d = issue(
            store.identity("Mail"),
            Role("Dell", "Linux"),
            Role("Mail", "Node"),
            attributes={"Trust": __import__("repro.drbac.model", fromlist=["AttrRange"]).AttrRange(0, 10)},
        )
        assert "with Trust=(0,10)" in str(d)


class TestWireCodec:
    def test_roundtrip_preserves_signature_validity(self, store):
        d = issue(
            store.identity("Comp.SD"),
            Role("Inc.SE", "Member"),
            Role("Comp.NY", "Partner"),
            attributes={"Secure": AttrSet([True]), "CPU": AttrScalar(40)},
            expires_at=99.0,
            requires_monitoring=True,
        )
        restored = delegation_from_wire(delegation_to_wire(d))
        assert restored.verify_signature(store.public("Comp.SD"))
        assert restored.credential_id == d.credential_id
        assert restored.delegation_type is d.delegation_type
        assert restored.attributes == d.attributes
        assert restored.expires_at == 99.0
        assert restored.requires_monitoring is True

    def test_malformed_wire_rejected(self):
        with pytest.raises(CredentialError):
            delegation_from_wire({"bogus": True})

    def test_roundtrip_entity_subject(self, store):
        d = issue(store.identity("X"), EntityRef("u"), Role("X", "R"))
        restored = delegation_from_wire(delegation_to_wire(d))
        assert restored.subject == EntityRef("u")
