"""DrbacEngine façade tests: delegate / authorize / monitor / queries."""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.drbac.model import AttrSet, EntityRef, Role
from repro.errors import AuthorizationError


class TestDelegate:
    def test_publishes_to_repository(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        assert engine.repository.credential_count >= 1

    def test_unpublished_stays_private(self, engine):
        d = engine.delegate("Comp.NY", "Eve", "Comp.NY.Secret", publish=False)
        assert engine.find_proof("Eve", "Comp.NY.Secret") is None
        assert engine.find_proof("Eve", "Comp.NY.Secret", [d]) is not None

    def test_string_subject_known_entity(self, engine):
        engine.identity("Comp.SD")
        d = engine.delegate("Comp.NY", "Comp.SD", "Comp.NY.Partner", assignment=True)
        assert isinstance(d.subject, EntityRef)

    def test_string_subject_role(self, engine):
        d = engine.delegate("Comp.NY", "Comp.XX.Member", "Comp.NY.Member")
        assert isinstance(d.subject, Role)


class TestAuthorize:
    def test_success_returns_monitored_result(self, engine):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        result = engine.authorize("Alice", "Comp.NY.Member")
        assert result.valid
        assert result.proof.role == Role("Comp.NY", "Member")

    def test_failure_raises(self, engine):
        with pytest.raises(AuthorizationError):
            engine.authorize("Mallory", "Comp.NY.Member")

    def test_revocation_invalidates_live_result(self, engine):
        d = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        result = engine.authorize("Alice", "Comp.NY.Member")
        engine.revoke(d)
        assert not result.valid

    def test_revocation_blocks_future_proofs(self, engine):
        d = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        engine.revoke(d)
        assert engine.find_proof("Alice", "Comp.NY.Member") is None

    def test_expired_credentials_rejected(self, engine, clock):
        engine.delegate("Comp.NY", "Alice", "Comp.NY.Member", expires_at=5.0)
        clock.advance(10.0)
        assert engine.find_proof("Alice", "Comp.NY.Member") is None


class TestQueries:
    def test_is_a_with_attributes(self, engine):
        engine.delegate(
            "Mail",
            "node1",
            "Mail.Node",
            attributes={"Secure": AttrSet([True, False])},
        )
        assert engine.is_a("node1", "Mail.Node with Secure={true}") is not None
        assert engine.is_a("node1", "Mail.Node with Secure={maybe}") is None

    def test_is_a_unknown_subject(self, engine):
        assert engine.is_a("ghost", "Mail.Node") is None

    def test_direction_parameter(self, engine):
        engine.delegate("A", "u", "A.R")
        assert engine.find_proof("u", "A.R", direction="progression") is not None
