"""Exception-hierarchy tests: one base type at the framework boundary."""

from __future__ import annotations

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    AuthorizationError,
    ChannelClosedError,
    CredentialError,
    DrbacError,
    HandshakeError,
    ReproError,
    SignatureError,
    SwitchboardError,
    ViewGenerationError,
    ViewError,
)

ALL_ERRORS = [
    obj
    for _, obj in inspect.getmembers(errors_module, inspect.isclass)
    if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
]


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in ALL_ERRORS:
            assert issubclass(cls, ReproError), cls

    def test_specific_families(self):
        assert issubclass(SignatureError, ReproError)
        assert issubclass(CredentialError, DrbacError)
        assert issubclass(AuthorizationError, DrbacError)
        assert issubclass(HandshakeError, SwitchboardError)
        assert issubclass(ChannelClosedError, SwitchboardError)
        assert issubclass(ViewGenerationError, ViewError)

    def test_catchable_at_boundary(self):
        with pytest.raises(ReproError):
            raise ViewGenerationError("boom")

    def test_every_error_documented(self):
        for cls in ALL_ERRORS:
            assert cls.__doc__, f"{cls.__name__} needs a docstring"

    def test_hierarchy_is_wide(self):
        # The library promises a rich, specific failure vocabulary.
        assert len(ALL_ERRORS) >= 18
