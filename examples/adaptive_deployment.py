"""QoS-aware adaptive deployment (§2.2).

Shows the planner answering three environments with three configurations:

1. Alice on the NY LAN       -> direct link, nothing deployed;
2. Bob behind a 10 Mbps WAN demanding 50 Mbps -> a ViewMailServer cache
   deployed on his own machine, synchronizing over Switchboard;
3. Bob demanding privacy on a bulk (plaintext-RPC) channel, with views
   disabled -> an encryptor/decryptor pair bracketing the insecure WAN —
   verified by an eavesdropper who sees only ciphertext.

Run:  python examples/adaptive_deployment.py
"""

from __future__ import annotations

from repro.mail import build_scenario
from repro.psf import EdgeRequirement, ServiceRequest


def show(title: str, plan) -> None:
    print(f"\n--- {title} ---")
    if plan.components:
        for planned in plan.components:
            print(f"  deploy {planned.component.name} on {planned.node}")
    else:
        print("  nothing to deploy (direct link)")
    for link in plan.links:
        print(f"  link {link.consumer} --{link.interface}/{link.mode}--> {link.provider}")


def main() -> None:
    scenario = build_scenario(key_bits=512)
    psf = scenario.psf

    # 1. Friendly environment: nothing to adapt.
    plan = psf.planner().plan(
        ServiceRequest(client="Alice", client_node="ny-pc1", interface="MailI")
    )
    show("Alice on the NY LAN", plan)

    # 2. Low bandwidth: cache close to the client.
    plan = psf.planner().plan(
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(min_bandwidth_bps=50e6),
        )
    )
    show("Bob demands 50 Mbps over a 10 Mbps WAN", plan)
    deployment = psf.deployer.deploy(plan)
    cache = deployment.client_access()
    scenario.server.sendMail(
        {"sender": "Alice", "recipient": "Bob", "subject": "hi", "body": "cache me"}
    )
    print("  Bob reads through the local cache:", cache.fetchMail("Bob")[0]["body"])

    # 3. Privacy on a bulk channel: encryptor/decryptor pair.
    request = ServiceRequest(
        client="Bob", client_node="sd-pc2", interface="MailI",
        qos=EdgeRequirement(privacy=True, channel="rmi"),
    )
    plan = psf.planner(use_views=False).plan(request)
    show("Bob demands privacy on a bulk channel (views disabled)", plan)

    snoops: list[bytes] = []
    psf.transport.observe_link("ny-gw", "sd-gw", lambda p, s, d: snoops.append(p))
    deployment = psf.deployer.deploy(plan)
    access = deployment.client_access()
    access.sendMail(
        {"sender": "Bob", "recipient": "Alice", "subject": "q", "body": "TOP-SECRET"}
    )
    print("  delivered to server:", scenario.server.fetchMail("Alice")[-1]["body"])
    leaked = [p for p in snoops if b"TOP-SECRET" in p]
    print(f"  WAN eavesdropper captured {len(snoops)} frames; plaintext leaks: {len(leaked)}")

    # 4. The same privacy demand *with* views: the planner prefers the
    #    cheaper cache-with-secure-sync configuration.
    plan = psf.planner().plan(request)
    show("Same demand with views enabled", plan)

    # 5. Environment change: the monitor degrades a link and we re-plan.
    print("\n--- Environment change: NY LAN link compromised ---")
    psf.monitor.set_link_security("ny-pc1", "ny-server", False)
    psf.monitor.set_link_security("ny-pc1", "ny-gw", False)
    plan = psf.planner().plan(
        ServiceRequest(
            client="Alice", client_node="ny-pc1", interface="MailI",
            qos=EdgeRequirement(privacy=True, channel="rmi"),
        )
    )
    show("Alice re-planned after link compromise", plan)


if __name__ == "__main__":
    main()
