"""The paper's §6 future work, implemented and demonstrated.

1. **Policy translation** — "allow each domain to freely choose the policy
   implementation (e.g. roles, capabilities)": a domain running a native
   capability system mirrors its grants into dRBAC through a
   PolicyTranslator; open Switchboard channels react when the *native*
   policy changes.
2. **Automatic view creation** — "fully automate the process of creating
   views based on a few hints from the programmer": infer_view_spec turns
   a method allow-list into a complete view spec, which VIG compiles.

Run:  python examples/future_work.py
"""

from __future__ import annotations

from repro.drbac import (
    CapabilityPolicy,
    DrbacEngine,
    PolicyTranslator,
    Role,
    TranslationRule,
)
from repro.mail.client import MAIL_CLIENT_INTERFACES, MailClient
from repro.views import (
    InterfaceRegistry,
    ViewHint,
    ViewRuntime,
    Vig,
    infer_view_spec,
)


def demo_policy_translation() -> None:
    print("=== 1. Translating a native capability policy into dRBAC ===")
    engine = DrbacEngine(key_bits=512)

    # The Lab domain does NOT use dRBAC natively; it hands out capabilities.
    lab_policy = CapabilityPolicy()
    lab_policy.grant("dana", "instrument-access")

    translator = PolicyTranslator(
        engine,
        "Lab",
        lab_policy,
        [TranslationRule("instrument-access", Role("Lab", "Operator"))],
    )
    report = translator.sync()
    print(f"mirrored {len(report.issued)} native grant(s) into dRBAC:")
    for delegation in report.issued:
        print("  ", delegation)

    # The mirrored credential chains like any dRBAC credential.
    engine.delegate("Comp.NY", "Lab.Operator", "Comp.NY.Guest")
    print("dana -> Comp.NY.Guest:", engine.find_proof("dana", "Comp.NY.Guest"))

    # A live authorization reacts when the NATIVE policy changes.
    result = engine.authorize("dana", "Lab.Operator")
    print("live authorization valid:", result.valid)
    lab_policy.revoke("dana", "instrument-access")
    translator.sync()
    print("after native revocation + sync, still valid?", result.valid)


def demo_automatic_views() -> None:
    print("\n=== 2. Automatic view creation from programmer hints ===")
    registry = InterfaceRegistry()
    for iface in MAIL_CLIENT_INTERFACES:
        registry.register(iface)

    # The whole "XML file" is this one hint:
    hint = ViewHint(allow=["getEmail", "sendMessage", "receiveMessages"])
    spec = infer_view_spec("KioskView", MailClient, registry, hint)
    print("inferred specification:")
    print(spec.to_xml())

    view_cls = Vig(registry).generate(spec, MailClient)
    original = MailClient(
        accounts={"alice": {"name": "alice", "phone": "212", "email": "alice@comp"}}
    )
    view = view_cls(ViewRuntime(local_objects={"MailClient": original}))
    print("getEmail:", view.getEmail("alice"))
    print("sendMessage:", view.sendMessage({"recipient": "alice", "body": "hello"}))
    try:
        view.getPhone("alice")
    except PermissionError as exc:
        print("getPhone denied per-method:", exc)
    print("NotesI absent entirely:", not hasattr(view, "addNote"))

    # The conservative placement policy: state-writing interfaces stay on
    # the original object when clients run on untrusted machines.
    spec2 = infer_view_spec(
        "UntrustedTerminalView",
        MailClient,
        registry,
        ViewHint(allow=["addNote", "addMeeting", "getEmail", "getPhone"]),
        prefer_remote_writes=True,
    )
    modes = {r.name: r.mode.value for r in spec2.interfaces}
    print("inferred placement for an untrusted terminal:", modes)


if __name__ == "__main__":
    demo_policy_translation()
    demo_automatic_views()
