"""The paper's three-site mail scenario, end to end (§2.2, §3.3, Table 2).

Builds the New York / San Diego / Seattle world, prints the Table 2
credential set, walks every authorization the paper narrates, then serves
each client the view Table 4 assigns — including Charlie's cross-domain
partner view with its RMI and Switchboard interfaces crossing the
insecure WAN.

Run:  python examples/mail_scenario.py
"""

from __future__ import annotations

from repro.mail import MailClient, build_scenario
from repro.switchboard import AuthorizationSuite, RoleAuthorizer, ServiceAddress
from repro.views import IMAGE_BINDING_PREFIX, ViewRuntime
from repro.views.coherence import ImageService


def main() -> None:
    print("building the three-site world (this generates real RSA keys)...")
    scenario = build_scenario(key_bits=512)
    engine = scenario.engine

    print("\n--- Table 2: credentials issued by the Guards ---")
    for number, delegation in sorted(scenario.credentials.items()):
        print(f"  ({number:2d}) {delegation}")

    print("\n--- Client authorization (§3.3) ---")
    for client, role in [
        ("Alice", "Comp.NY.Member"),
        ("Bob", "Comp.NY.Member"),
        ("Charlie", "Comp.NY.Partner"),
    ]:
        proof = engine.find_proof(client, role)
        print(f"  {client} -> {role}:")
        for d in proof.chain:
            print(f"      {d}")
        for d in proof.support:
            print(f"      (assignment support) {d}")

    print("\n--- Node authorization: hardware facts -> Mail.Node ---")
    for node, constraint in [
        ("ny-pc1", "Mail.Node with Secure={true} Trust=(0,10)"),
        ("sd-pc1", "Mail.Node with Secure={true} Trust=(0,5)"),
        ("se-pc1", "Mail.Node with Secure={true}"),
    ]:
        proof = engine.is_a(node, constraint)
        print(f"  is {node} a {constraint}?  {'yes' if proof else 'NO'}")

    print("\n--- Component authorization: attenuated CPU budgets ---")
    from repro.drbac.model import Role

    for role, guard, site in [
        ("Mail.MailClient", scenario.ny_guard, "New York"),
        ("Mail.Encryptor", scenario.sd_guard, "San Diego"),
        ("Mail.Decryptor", scenario.se_guard, "Seattle"),
    ]:
        print(f"  {role} in {site}: CPU <= {guard.component_cpu_budget(Role.parse(role))}")

    # ---------------------------------------------------------------------
    print("\n--- Table 4: serving each client the right view ---")
    shared_client = MailClient(
        owner="shared",
        accounts={"alice": {"name": "alice", "phone": "212-555", "email": "alice@comp"}},
    )
    policy = scenario.psf.registrar.policy("MailClient")

    for client in ("Alice", "Bob", "Charlie", "Mallory"):
        credentials = (
            scenario.wallets[client].credentials() if client in scenario.wallets else None
        )
        decision = policy.resolve(client, engine, credentials)
        basis = "anonymous default" if decision.proof is None else "dRBAC proof"
        print(f"  {client:8s} -> {decision.view_name}  ({basis})")

    # ---------------------------------------------------------------------
    print("\n--- Charlie's partner view across the insecure WAN ---")
    host = "ny-pc1"
    runtime = scenario.psf.deployer.node_runtime(host)
    runtime.rpc.exporter.export("mailclient", shared_client)
    runtime.switchboard.export("mailclient", shared_client)
    runtime.switchboard.listen(
        "mailclient",
        AuthorizationSuite(
            identity=engine.identity("MailClientSvc"),
            authorizer=RoleAuthorizer(engine, "Comp.NY.Partner"),
        ),
    )
    image = ImageService(shared_client)
    runtime.rpc.exporter.export("mailclient#image", image)
    runtime.switchboard.export("mailclient#image", image)

    spec = scenario.psf.registrar.view_spec("ViewMailClient_Partner")
    view_cls = scenario.psf.vig.generate(spec, MailClient)
    se_runtime = scenario.psf.deployer.node_runtime("se-pc1")
    view_runtime = ViewRuntime(
        rpc=se_runtime.rpc,
        switchboard=se_runtime.switchboard,
        suite=AuthorizationSuite(
            identity=engine.identity("Charlie"),
            credentials=scenario.wallets["Charlie"].credentials(),
        ),
    )
    address = ServiceAddress(node=host, service="mailclient", target="mailclient")
    view_runtime.naming.bind("NotesI", address)
    view_runtime.naming.bind("AddressI", address)
    view_runtime.naming.bind(
        IMAGE_BINDING_PREFIX + "MailClient",
        ServiceAddress(node=host, service="mailclient", target="mailclient#image"),
    )
    view = view_cls(view_runtime)

    view.sendMessage({"recipient": "alice", "body": "greetings from Seattle"})
    print("  sendMessage (local + coherence):", shared_client.outbox[-1]["body"])
    view.addNote("renew partner contract")
    print("  addNote (RMI to NY):", shared_client.notes)
    print("  getPhone (Switchboard to NY):", view.getPhone("alice"))
    print("  addMeeting (customized):", view.addMeeting("quarterly sync"))
    print("  meetings actually scheduled on the original:", shared_client.meetings)

    print("\n--- Revoking Charlie's partner chain mid-session ---")
    connection = view._swb_AddressI.connection
    engine.revoke(scenario.credentials[12])
    scenario.psf.scheduler.run()
    print(f"  channel state after revoking credential (12): {connection.state.value}")
    try:
        view.getPhone("alice")
    except Exception as exc:
        print(f"  further switchboard access blocked: {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
