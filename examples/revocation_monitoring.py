"""Continuous authorization on long-lived channels (§4.3).

Switchboard's distinguishing property over SSL/TLS: connections stay
*continuously authorized and monitored*.  This example opens a channel,
streams heartbeats (liveness + RTT), revokes a credential mid-session,
watches both ends flip to REVOKED, and then revalidates with fresh
credentials — the full lifecycle the paper describes.

Run:  python examples/revocation_monitoring.py
"""

from __future__ import annotations

from repro.drbac import DrbacEngine
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    RoleAuthorizer,
    SwitchboardEndpoint,
)


class PayrollService:
    def current_run(self):
        return {"period": "2026-07", "status": "open"}

    def approve(self, period):
        return f"approved:{period}"


def main() -> None:
    engine = DrbacEngine(key_bits=512)
    network = Network()
    network.add_node("laptop")
    network.add_node("datacenter")
    network.add_link("laptop", "datacenter", latency_s=0.015, secure=False)
    scheduler = EventScheduler()
    transport = Transport(network, scheduler)

    # Trust setup: HR's Guard admits holders of HR.Approver.
    credential = engine.delegate("HR", "Dana", "HR.Approver")
    print("issued:", credential)

    client_ep = SwitchboardEndpoint(transport, "laptop")
    server_ep = SwitchboardEndpoint(transport, "datacenter")
    server_ep.export("payroll", PayrollService())
    server_ep.listen(
        "payroll",
        AuthorizationSuite(
            identity=engine.identity("PayrollSvc"),
            authorizer=RoleAuthorizer(engine, "HR.Approver"),
        ),
    )

    suite = AuthorizationSuite(identity=engine.identity("Dana"), credentials=[credential])
    connection = client_ep.connect("datacenter", "payroll", suite).wait()
    print("channel open; peer:", connection.peer_identity.name)
    connection.on_trust_change(lambda cid: print(f"  !! trust changed (credential {cid})"))

    connection.start_heartbeats(1.0)
    scheduler.run_until(4.0)
    print(f"after 4s: rtt={connection.last_rtt*1000:.1f} ms, "
          f"heartbeats answered={connection.stats.heartbeats_answered}")

    print("call:", connection.call_sync("payroll", "current_run"))

    # --- mid-session revocation -------------------------------------------
    print("\nHR revokes Dana's approver credential...")
    engine.revoke(credential)
    scheduler.run()
    print("channel state:", connection.state.value)
    try:
        connection.call_sync("payroll", "approve", ["2026-07"])
    except Exception as exc:
        print(f"call blocked: {type(exc).__name__}: {exc}")

    # --- revalidation -------------------------------------------------------
    print("\nDana obtains a fresh credential and revalidates...")
    fresh = engine.delegate("HR", "Dana", "HR.Approver")
    result = connection.revalidate([fresh]).wait()
    print("revalidated:", result, "| channel state:", connection.state.value)
    print("call:", connection.call_sync("payroll", "approve", ["2026-07"]))


if __name__ == "__main__":
    main()
