"""Quickstart: dRBAC credentials + an object view in ~60 lines.

Builds a two-domain trust world, proves a cross-domain role, defines a
view with the paper's XML rule language, generates it with VIG, and shows
fine-grained restriction + cache coherence in action.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.drbac import DrbacEngine
from repro.views import InterfaceRegistry, Vig, ViewRuntime, interface_from_class


# --- 1. A reusable component (the "original object") -----------------------

class Ledger:
    """A toy component with a sensitive and a public interface."""

    def __init__(self):
        self.entries = []
        self.audit_log = []

    def add_entry(self, amount):
        self.entries.append(amount)
        self._audit(f"add {amount}")
        return sum(self.entries)

    def balance(self):
        return sum(self.entries)

    def read_audit_log(self):
        return list(self.audit_log)

    def _audit(self, line):
        self.audit_log.append(line)


class PublicI:
    def balance(self): ...
    def add_entry(self, amount): ...


class AuditI:
    def read_audit_log(self): ...


def main() -> None:
    # --- 2. Decentralized trust: two domains, one cross-domain mapping ----
    engine = DrbacEngine(key_bits=512)
    engine.delegate("Bank", "Carol", "Bank.Teller")                # local role
    engine.delegate("HQ", "Bank.Teller", "HQ.Accountant")          # role mapping
    proof = engine.find_proof("Carol", "HQ.Accountant")
    print("cross-domain proof:", proof)

    # --- 3. Define a view with the Table 3(b) XML rule language ------------
    registry = InterfaceRegistry()
    registry.register_class(PublicI)
    registry.register_class(AuditI)
    vig = Vig(registry)

    teller_view_xml = """
    <View name="TellerLedgerView">
      <Represents name="Ledger"/>
      <Restricts>
        <Interface name="PublicI" type="local"/>
      </Restricts>
      <Customizes_Methods>
        <MSign>add_entry(amount)</MSign>
        <MBody>
if amount &gt; 1000:
    raise PermissionError("tellers may not post entries above 1000")
self.entries.append(amount)
self._audit("teller add " + str(amount))
return sum(self.entries)
        </MBody>
      </Customizes_Methods>
    </View>
    """
    view_cls = vig.generate_from_xml(teller_view_xml, Ledger)

    # --- 4. Use the view: restriction + coherence --------------------------
    original = Ledger()
    view = view_cls(ViewRuntime(local_objects={"Ledger": original}))

    print("balance via view:", view.balance())
    print("posting 250 via view:", view.add_entry(250))
    print("original sees the entry:", original.entries, original.audit_log)

    print("audit interface hidden from tellers:", not hasattr(view, "read_audit_log"))
    try:
        view.add_entry(5000)
    except PermissionError as exc:
        print("customized policy enforced:", exc)


if __name__ == "__main__":
    main()
