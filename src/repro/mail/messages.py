"""Mail application data model.

Plain JSON-compatible records: messages and accounts cross simulated
network links inside RPC frames, so everything here (de)serializes to
dicts losslessly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(slots=True)
class Message:
    """One mail message."""

    sender: str
    recipient: str
    subject: str
    body: str

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "Message":
        return Message(
            sender=data["sender"],
            recipient=data["recipient"],
            subject=data["subject"],
            body=data["body"],
        )


@dataclass(slots=True)
class Account:
    """A directory entry: the AddressI data (Table 3a's Account)."""

    name: str
    phone: str = ""
    email: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "Account":
        return Account(name=data["name"], phone=data["phone"], email=data["email"])


def make_directory(accounts: list[Account]) -> dict[str, dict]:
    """Directory keyed by account name, in wire form."""
    return {account.name: account.to_dict() for account in accounts}
