"""The three-site mail scenario (§2.2, §3.3, Table 2).

"The mail service is used by a company (*Comp*) to provide e-mail
facilities to its members, across three sites: the main office in New
York, a branch office in San Diego, and a partner organization (*Inc*) in
Seattle.  The three sites compare to LANs, with fast and reliable links,
connected to each other by high latency and insecure WAN links."

:func:`build_scenario` constructs the whole world: network topology,
Guards, the seventeen Table 2 credentials (numbered identically),
node/client leaf credentials, component registrations, the Table 4 view
policy, and the running central MailServer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..drbac.delegation import Delegation
from ..drbac.model import AttrRange, AttrScalar, AttrSet, EntityRef, Role
from ..drbac.query import Constraint
from ..drbac.wallet import Wallet
from ..psf.component import ComponentType, Port
from ..psf.framework import PSF
from ..psf.guard import Guard
from .client import MAIL_CLIENT_INTERFACES, MailClient
from .crypto_components import Decryptor, Encryptor, SecMailI
from .server import MailServer, MailI, VIEW_MAIL_SERVER_SPEC
from .views_specs import MAIL_CLIENT_VIEW_SPECS, mail_client_policy

# Site topology constants.
LAN_LATENCY = 0.001
LAN_BANDWIDTH = 1e9
WAN_LATENCY = 0.050
WAN_BANDWIDTH = 10e6

NY_NODES = ("ny-server", "ny-pc1", "ny-pc2")
SD_NODES = ("sd-pc1", "sd-pc2")
SE_NODES = ("se-pc1",)
GATEWAYS = ("ny-gw", "sd-gw", "se-gw")


@dataclass
class MailScenario:
    """Everything the examples, tests, and benchmarks need."""

    psf: PSF
    ny_guard: Guard
    sd_guard: Guard
    se_guard: Guard
    mail_guard: Guard
    credentials: dict[int, Delegation] = field(default_factory=dict)
    wallets: dict[str, Wallet] = field(default_factory=dict)
    server: MailServer | None = None

    @property
    def engine(self):
        return self.psf.engine

    def client_wallet(self, name: str) -> Wallet:
        return self.wallets[name]


def build_network(psf: PSF) -> None:
    """Three LAN sites joined by insecure, slow WAN links via gateways."""
    for name in NY_NODES:
        psf.network.add_node(name, domain="NY", properties={"vendor": "Dell", "os": "Linux"})
    for name in SD_NODES:
        psf.network.add_node(name, domain="SD", properties={"vendor": "Dell", "os": "SuSe"})
    for name in SE_NODES:
        psf.network.add_node(name, domain="SE", properties={"vendor": "IBM", "os": "Windows"})
    psf.network.add_node("ny-gw", domain="NY", properties={"role": "gateway"})
    psf.network.add_node("sd-gw", domain="SD", properties={"role": "gateway"})
    psf.network.add_node("se-gw", domain="SE", properties={"role": "gateway"})

    for site_nodes, gateway in ((NY_NODES, "ny-gw"), (SD_NODES, "sd-gw"), (SE_NODES, "se-gw")):
        for name in site_nodes:
            psf.network.add_link(
                name, gateway, latency_s=LAN_LATENCY, bandwidth_bps=LAN_BANDWIDTH, secure=True
            )
    # Full LAN mesh inside each site keeps intra-site paths one hop.
    for site_nodes in (NY_NODES, SD_NODES):
        for i, a in enumerate(site_nodes):
            for b in site_nodes[i + 1 :]:
                psf.network.add_link(
                    a, b, latency_s=LAN_LATENCY, bandwidth_bps=LAN_BANDWIDTH, secure=True
                )
    # Insecure WAN links between sites.
    psf.network.add_link(
        "ny-gw", "sd-gw", latency_s=WAN_LATENCY, bandwidth_bps=WAN_BANDWIDTH, secure=False
    )
    psf.network.add_link(
        "ny-gw", "se-gw", latency_s=WAN_LATENCY, bandwidth_bps=WAN_BANDWIDTH, secure=False
    )
    psf.network.add_link(
        "sd-gw", "se-gw", latency_s=2 * WAN_LATENCY, bandwidth_bps=WAN_BANDWIDTH, secure=False
    )


def issue_table2_credentials(scenario: MailScenario) -> None:
    """The seventeen credentials of Table 2, numbered as in the paper."""
    engine = scenario.engine
    creds = scenario.credentials
    # Vendor signing identities exist a priori.
    engine.identity("Dell")
    engine.identity("IBM")

    ny, sd, se, mail = (
        scenario.ny_guard,
        scenario.sd_guard,
        scenario.se_guard,
        scenario.mail_guard,
    )

    # --- New York -----------------------------------------------------------
    creds[1] = ny.certify_member("Alice")
    creds[2] = ny.map_role(Role("Comp.SD", "Member"), "Member")
    creds[3] = ny.grant_assignment(EntityRef("Comp.SD"), "Partner")
    creds[4] = mail.certify(
        Role("Dell", "Linux"),
        mail.role("Node"),
        attributes={"Secure": AttrSet([True, False]), "Trust": AttrRange(0, 10)},
    )
    creds[5] = mail.certify(
        Role("Dell", "SuSe"),
        mail.role("Node"),
        attributes={"Secure": AttrSet([True, False]), "Trust": AttrRange(0, 7)},
    )
    creds[6] = mail.certify(
        Role("IBM", "Windows"),
        mail.role("Node"),
        attributes={"Secure": AttrSet([False]), "Trust": AttrRange(0, 1)},
    )
    creds[7] = engine.delegate("Dell", Role("Comp.NY", "PC"), Role("Dell", "Linux"))
    creds[8] = ny.certify(
        Role("Mail", "MailClient"), ny.executable_role, attributes={"CPU": AttrScalar(100)}
    )
    creds[9] = ny.certify(
        Role("Mail", "Encryptor"), ny.executable_role, attributes={"CPU": AttrScalar(100)}
    )
    creds[10] = ny.certify(
        Role("Mail", "Decryptor"), ny.executable_role, attributes={"CPU": AttrScalar(100)}
    )

    # --- San Diego -------------------------------------------------------------
    creds[11] = sd.certify_member("Bob")
    creds[12] = sd.certify(Role("Inc.SE", "Member"), Role("Comp.NY", "Partner"))
    creds[13] = engine.delegate("Dell", Role("Comp.SD", "PC"), Role("Dell", "SuSe"))
    creds[14] = sd.accept_executables(Role("Comp.NY", "Executable"), cpu=80)

    # --- Seattle -------------------------------------------------------------------
    creds[15] = se.certify_member("Charlie")
    creds[16] = engine.delegate("IBM", Role("Inc.SE", "PC"), Role("IBM", "Windows"))
    creds[17] = se.accept_executables(Role("Comp.NY", "Executable"), cpu=40)

    # --- scenario extensions (not in Table 2, needed to run the app) -----------
    # Server-side component roles so caches deploy under the same regime.
    ny.certify(
        Role("Mail", "MailServer"), ny.executable_role, attributes={"CPU": AttrScalar(100)}
    )
    ny.certify(
        Role("Mail", "ViewMailServer"),
        ny.executable_role,
        attributes={"CPU": AttrScalar(100)},
    )
    # NY accepts its own executables trivially via role ownership (creds
    # 8-10 already target Comp.NY.Executable).

    # Node leaf credentials: each PC proves its site's PC role.
    for node in NY_NODES:
        ny.certify(EntityRef(node), ny.role("PC"))
    for node in SD_NODES:
        sd.certify(EntityRef(node), sd.role("PC"))
    for node in SE_NODES:
        se.certify(EntityRef(node), se.role("PC"))


def register_components(psf: PSF) -> None:
    """Register interfaces, component types, views, and the Table 4 policy."""
    for interface in MAIL_CLIENT_INTERFACES:
        psf.registrar.register_interface(interface)
    psf.registrar.register_interface(MailI)
    psf.registrar.register_interface(SecMailI)

    node_any = Constraint.parse("Mail.Node")
    node_secure = Constraint(
        role=Role("Mail", "Node"),
        required_attributes={"Secure": AttrSet([True]), "Trust": AttrRange(0, 5)},
    )

    psf.registrar.register_component(
        ComponentType(
            name="MailServer",
            implements=(Port("MailI"),),
            component_role=Role("Mail", "MailServer"),
            node_constraints=(node_secure,),
            cpu_demand=50,
            deployable=False,  # stateful singleton: link, never respawn
            factory=lambda ctx: MailServer(),
        ),
        cls=MailServer,
    )
    psf.registrar.register_view(
        "MailServer",
        VIEW_MAIL_SERVER_SPEC,
        cpu_demand=20,
        component_role=Role("Mail", "ViewMailServer"),
    )
    psf.registrar.register_component(
        ComponentType(
            name="Encryptor",
            implements=(Port("SecMailI", {"encrypted": True}),),
            requires=(
                Port("MailI", {"privacy": True, "channel": "rmi"}),
            ),
            component_role=Role("Mail", "Encryptor"),
            node_constraints=(node_any,),
            cpu_demand=30,
            properties={"bandwidth_transparent": True},
            factory=lambda ctx: Encryptor(ctx.require("MailI")),
        ),
        cls=Encryptor,
    )
    psf.registrar.register_component(
        ComponentType(
            name="Decryptor",
            implements=(Port("MailI"),),
            requires=(Port("SecMailI", {"privacy": True, "channel": "rmi"}),),
            component_role=Role("Mail", "Decryptor"),
            node_constraints=(node_any,),
            cpu_demand=30,
            properties={"bandwidth_transparent": True},
            factory=lambda ctx: Decryptor(ctx.require("SecMailI")),
        ),
        cls=Decryptor,
    )
    psf.registrar.register_component(
        ComponentType(
            name="MailClient",
            implements=(
                Port("MessageI"),
                Port("AddressI"),
                Port("NotesI"),
            ),
            component_role=Role("Mail", "MailClient"),
            node_constraints=(node_any,),
            cpu_demand=10,
            factory=lambda ctx: MailClient(),
        ),
        cls=MailClient,
    )
    for spec in MAIL_CLIENT_VIEW_SPECS:
        psf.registrar.register_view("MailClient", spec, cpu_demand=5)
    psf.registrar.set_policy("MailClient", mail_client_policy())


def build_scenario(
    *,
    key_bits: int | None = None,
    key_store=None,
    with_server: bool = True,
) -> MailScenario:
    """Construct the complete three-site world of §2.2."""
    psf = PSF(key_bits=key_bits, key_store=key_store)
    build_network(psf)

    ny = psf.add_guard("NY", "Comp.NY")
    sd = psf.add_guard("SD", "Comp.SD")
    se = psf.add_guard("SE", "Inc.SE")
    mail = Guard(psf.engine, "Mail")
    psf.set_app_guard(mail)

    scenario = MailScenario(
        psf=psf, ny_guard=ny, sd_guard=sd, se_guard=se, mail_guard=mail
    )
    issue_table2_credentials(scenario)
    register_components(psf)

    # Client wallets hold only the leaf credentials their own Guard issued
    # (cross-domain mapping credentials live in the repository).
    for client, number in (("Alice", 1), ("Bob", 11), ("Charlie", 15)):
        wallet = Wallet(owner=client)
        wallet.grant(scenario.credentials[number])
        scenario.wallets[client] = wallet
        psf.engine.identity(client)  # materialize the client's keypair

    if with_server:
        server = MailServer()
        for user, phone in (("Alice", "212-555-0001"), ("Bob", "619-555-0002"), ("Charlie", "206-555-0003")):
            server.create_account(user, phone=phone, email=f"{user.lower()}@comp.example")
        psf.host_existing("MailServer", "ny-server", server, "MailServer")
        scenario.server = server

    return scenario
