"""The mail application as a declarative PSF document (§2.1 element #1).

The same registration that :func:`repro.mail.scenario.register_components`
performs programmatically, expressed in the XML application-specification
language — demonstrating that the whole Table 2 / Table 3b / Table 4
application is registrable declaratively.  ``register_components_declaratively``
loads it, binding the factories and classes XML cannot carry.
"""

from __future__ import annotations

from ..psf.appspec import LoadReport, load_application
from ..psf.framework import PSF
from .client import MailClient
from .crypto_components import Decryptor, Encryptor
from .server import MailServer
from .views_specs import VIEW_MAIL_CLIENT_PARTNER_XML

# The partner view is spliced in verbatim from Table 3(b); the other view
# documents inline their (shorter) definitions.
MAIL_APP_XML = f"""
<Application name="mail">
  <Interfaces>
    <Interface name="MailI">
      <Method>fetchMail(user)</Method>
      <Method>sendMail(mes)</Method>
      <Method>listAccounts()</Method>
    </Interface>
    <Interface name="SecMailI">
      <Method>fetchMailEnc(user)</Method>
      <Method>sendMailEnc(blob)</Method>
      <Method>listAccountsEnc()</Method>
    </Interface>
    <Interface name="MessageI">
      <Method>sendMessage(mes)</Method>
      <Method>receiveMessages()</Method>
    </Interface>
    <Interface name="AddressI">
      <Method>getPhone(name)</Method>
      <Method>getEmail(name)</Method>
    </Interface>
    <Interface name="NotesI">
      <Method>addNote(note)</Method>
      <Method>addMeeting(name)</Method>
    </Interface>
  </Interfaces>
  <Components>
    <Component name="MailServer" role="Mail.MailServer" cpu="50" deployable="false">
      <Implements interface="MailI"/>
      <NodeConstraint>Mail.Node with Secure={{true}} Trust=(0,5)</NodeConstraint>
    </Component>
    <Component name="Encryptor" role="Mail.Encryptor" cpu="30">
      <Property name="bandwidth_transparent" value="true"/>
      <Implements interface="SecMailI">
        <Property name="encrypted" value="true"/>
      </Implements>
      <Requires interface="MailI">
        <Property name="privacy" value="true"/>
        <Property name="channel" value="rmi"/>
      </Requires>
      <NodeConstraint>Mail.Node</NodeConstraint>
    </Component>
    <Component name="Decryptor" role="Mail.Decryptor" cpu="30">
      <Property name="bandwidth_transparent" value="true"/>
      <Implements interface="MailI"/>
      <Requires interface="SecMailI">
        <Property name="privacy" value="true"/>
        <Property name="channel" value="rmi"/>
      </Requires>
      <NodeConstraint>Mail.Node</NodeConstraint>
    </Component>
    <Component name="MailClient" role="Mail.MailClient" cpu="10">
      <Implements interface="MessageI"/>
      <Implements interface="AddressI"/>
      <Implements interface="NotesI"/>
      <NodeConstraint>Mail.Node</NodeConstraint>
    </Component>
  </Components>
  <Views>
    <View name="ViewMailServer" component="MailServer" cpu="20" role="Mail.ViewMailServer">
      <Represents name="MailServer"/>
      <Restricts>
        <Interface name="MailI" type="local"/>
      </Restricts>
      <Replicates_Fields>
        <Field name="mailboxes"/>
        <Field name="directory"/>
        <Field name="delivered"/>
      </Replicates_Fields>
    </View>
    <View name="ViewMailClient_Member" component="MailClient" cpu="5">
      <Represents name="MailClient"/>
      <Restricts>
        <Interface name="MessageI" type="local"/>
        <Interface name="AddressI" type="local"/>
        <Interface name="NotesI" type="local"/>
      </Restricts>
    </View>
    {VIEW_MAIL_CLIENT_PARTNER_XML.strip().replace('<View name="ViewMailClient_Partner">',
        '<View name="ViewMailClient_Partner" component="MailClient" cpu="5">')}
    <View name="ViewMailClient_Anonymous" component="MailClient" cpu="5">
      <Represents name="MailClient"/>
      <Restricts>
        <Interface name="AddressI" type="switchboard" binding="AddressI"/>
      </Restricts>
      <Customizes_Methods>
        <MSign>getPhone(name)</MSign>
        <MBody>raise PermissionError('anonymous clients may only browse the email directory')</MBody>
      </Customizes_Methods>
    </View>
  </Views>
  <Policies>
    <Policy component="MailClient">
      <Allow role="Comp.NY.Member" view="ViewMailClient_Member"/>
      <Allow role="Comp.NY.Partner" view="ViewMailClient_Partner"/>
      <Allow role="others" view="ViewMailClient_Anonymous"/>
    </Policy>
  </Policies>
</Application>
"""


def register_components_declaratively(psf: PSF) -> LoadReport:
    """Load the mail application from its XML document."""
    return load_application(
        psf.registrar,
        MAIL_APP_XML,
        factories={
            "MailServer": lambda ctx: MailServer(),
            "Encryptor": lambda ctx: Encryptor(ctx.require("MailI")),
            "Decryptor": lambda ctx: Decryptor(ctx.require("SecMailI")),
            "MailClient": lambda ctx: MailClient(),
        },
        classes={
            "MailServer": MailServer,
            "Encryptor": Encryptor,
            "Decryptor": Decryptor,
            "MailClient": MailClient,
        },
    )
