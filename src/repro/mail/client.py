"""The MailClient component: the paper's running example (Table 3a).

Three interfaces:

* ``MessageI`` — send and receive messages;
* ``AddressI`` — query the phone / e-mail directory;
* ``NotesI``   — personal notes and meeting scheduling.

``findAccount`` is the private helper of Table 3a; views that copy
``getPhone``/``getEmail`` locally pull it in automatically (VIG's helper
copying), exactly as the Java original must copy it into view bytecode.
"""

from __future__ import annotations

from ..views.interfaces import InterfaceDef, MethodSig

# -- interface declarations (Table 3a) --------------------------------------

MessageI = InterfaceDef(
    name="MessageI",
    methods=(
        MethodSig("sendMessage", ("mes",)),
        MethodSig("receiveMessages", ()),
    ),
)

AddressI = InterfaceDef(
    name="AddressI",
    methods=(
        MethodSig("getPhone", ("name",)),
        MethodSig("getEmail", ("name",)),
    ),
)

NotesI = InterfaceDef(
    name="NotesI",
    methods=(
        MethodSig("addNote", ("note",)),
        MethodSig("addMeeting", ("name",)),
    ),
)

MAIL_CLIENT_INTERFACES = (MessageI, AddressI, NotesI)


class MailClient:
    """The original (represented) object of Table 3a."""

    def __init__(self, owner: str = "", accounts: dict[str, dict] | None = None) -> None:
        self.owner = owner
        self.accounts: dict[str, dict] = dict(accounts or {})
        self.inbox: list[dict] = []
        self.outbox: list[dict] = []
        self.notes: list[str] = []
        self.meetings: list[str] = []

    # -- MessageI ----------------------------------------------------------

    def sendMessage(self, mes: dict) -> bool:
        """Queue a message for delivery."""
        self.outbox.append(dict(mes))
        return True

    def receiveMessages(self) -> list[dict]:
        """Drain and return the inbox (the paper's ``Set`` return)."""
        messages = list(self.inbox)
        self.inbox = []
        return messages

    # -- AddressI ------------------------------------------------------------

    def getPhone(self, name: str) -> str:
        return self.findAccount(name)["phone"]

    def getEmail(self, name: str) -> str:
        return self.findAccount(name)["email"]

    # -- NotesI ----------------------------------------------------------------

    def addNote(self, note: str) -> None:
        self.notes.append(note)

    def addMeeting(self, name: str) -> bool:
        """Full members may schedule meetings directly."""
        self.meetings.append(name)
        return True

    # -- private helper (Table 3a's findAccount) ----------------------------------

    def findAccount(self, name: str) -> dict:
        try:
            return self.accounts[name]
        except KeyError:
            raise KeyError(f"no account named {name!r}") from None
