"""The component-based mail application (§2.2) and its three-site scenario."""

from .client import (
    AddressI,
    MAIL_CLIENT_INTERFACES,
    MailClient,
    MessageI,
    NotesI,
)
from .crypto_components import Decryptor, Encryptor, SecMailI, derive_pair_key
from .messages import Account, Message, make_directory
from .scenario import (
    GATEWAYS,
    LAN_BANDWIDTH,
    LAN_LATENCY,
    MailScenario,
    NY_NODES,
    SD_NODES,
    SE_NODES,
    WAN_BANDWIDTH,
    WAN_LATENCY,
    build_network,
    build_scenario,
    issue_table2_credentials,
    register_components,
)
from .server import MailI, MailServer, VIEW_MAIL_SERVER_SPEC
from .views_specs import (
    MAIL_CLIENT_VIEW_SPECS,
    VIEW_MAIL_CLIENT_ANONYMOUS,
    VIEW_MAIL_CLIENT_MEMBER,
    VIEW_MAIL_CLIENT_PARTNER,
    VIEW_MAIL_CLIENT_PARTNER_XML,
    mail_client_policy,
)

__all__ = [
    "Account",
    "AddressI",
    "Decryptor",
    "Encryptor",
    "GATEWAYS",
    "LAN_BANDWIDTH",
    "LAN_LATENCY",
    "MAIL_CLIENT_INTERFACES",
    "MAIL_CLIENT_VIEW_SPECS",
    "MailClient",
    "MailI",
    "MailScenario",
    "MailServer",
    "Message",
    "MessageI",
    "NY_NODES",
    "NotesI",
    "SD_NODES",
    "SE_NODES",
    "SecMailI",
    "VIEW_MAIL_CLIENT_ANONYMOUS",
    "VIEW_MAIL_CLIENT_MEMBER",
    "VIEW_MAIL_CLIENT_PARTNER",
    "VIEW_MAIL_CLIENT_PARTNER_XML",
    "VIEW_MAIL_SERVER_SPEC",
    "WAN_BANDWIDTH",
    "WAN_LATENCY",
    "build_network",
    "build_scenario",
    "derive_pair_key",
    "issue_table2_credentials",
    "make_directory",
    "mail_client_policy",
    "register_components",
]
