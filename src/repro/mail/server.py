"""The MailServer component and its cache view (§2.2).

"The main components of this application are: mail clients ..., a *mail
server* that manages the mail accounts for all users, *view mail server*
components that can be replicated as a cache close to the client, and
encryption/decryption components."

``MailServer`` implements ``MailI``; ``VIEW_MAIL_SERVER_SPEC`` defines the
cache as a genuine *view* of the server: the ``mailboxes`` and
``directory`` state is replicated into the view, and the coherence
machinery keeps it synchronized with the origin ("PSF adapts to low
available bandwidth by placing a *view mail server* close to the
client").
"""

from __future__ import annotations

from ..views.interfaces import InterfaceDef, MethodSig
from ..views.spec import InterfaceRestriction, InterfaceMode, ViewSpec

MailI = InterfaceDef(
    name="MailI",
    methods=(
        MethodSig("fetchMail", ("user",)),
        MethodSig("sendMail", ("mes",)),
        MethodSig("listAccounts", ()),
    ),
)


class MailServer:
    """Central store of every user's mailbox and the shared directory."""

    def __init__(self, directory: dict[str, dict] | None = None) -> None:
        self.mailboxes: dict[str, list[dict]] = {}
        self.directory: dict[str, dict] = dict(directory or {})
        self.delivered = 0

    # -- MailI -----------------------------------------------------------

    def fetchMail(self, user: str) -> list[dict]:
        """Return (without draining) the user's mailbox."""
        return list(self.mailboxes.get(user, ()))

    def sendMail(self, mes: dict) -> bool:
        """Deliver a message into the recipient's mailbox."""
        recipient = mes.get("recipient", "")
        if not recipient:
            return False
        self.mailboxes.setdefault(recipient, []).append(dict(mes))
        self.delivered += 1
        return True

    def listAccounts(self) -> list[str]:
        return sorted(self.directory)

    # -- administration ------------------------------------------------------

    def create_account(self, name: str, phone: str = "", email: str = "") -> None:
        self.mailboxes.setdefault(name, [])
        self.directory[name] = {"name": name, "phone": phone, "email": email}


# The cache: a hybrid object/data view of MailServer.  MailI is exposed
# locally (the cached methods run against replicated state); the
# ``delivered`` counter stays on the origin.  Coherence: on-demand policy
# pulls/pushes the mailboxes + directory image around every call.
VIEW_MAIL_SERVER_SPEC = ViewSpec(
    name="ViewMailServer",
    represents="MailServer",
    interfaces=(
        InterfaceRestriction(name="MailI", mode=InterfaceMode.LOCAL),
    ),
    replicated_fields=("mailboxes", "directory", "delivered"),
)
