"""View specifications for the mail client (Tables 3b and 4).

Three views of ``MailClient``, one per access tier:

* ``ViewMailClient_Member`` — company members: full functionality, all
  interfaces local.
* ``ViewMailClient_Partner`` — partners (the Table 3b example): messages
  local, notes via RMI, address book via Switchboard, and ``addMeeting``
  "reduced to only requesting the right to set up a meeting".
* ``ViewMailClient_Anonymous`` — everyone else: "only the right to browse
  the email directory"; the phone directory is refused per-method,
  demonstrating access control "down to the level of individual methods".
"""

from __future__ import annotations

from ..drbac.model import Role
from ..views.acl import ViewAccessPolicy
from ..views.spec import (
    FieldSpec,
    InterfaceMode,
    InterfaceRestriction,
    MethodSpec,
    ViewSpec,
)

VIEW_MAIL_CLIENT_MEMBER = ViewSpec(
    name="ViewMailClient_Member",
    represents="MailClient",
    interfaces=(
        InterfaceRestriction(name="MessageI", mode=InterfaceMode.LOCAL),
        InterfaceRestriction(name="AddressI", mode=InterfaceMode.LOCAL),
        InterfaceRestriction(name="NotesI", mode=InterfaceMode.LOCAL),
    ),
)

# Table 3(b): the partner view.  Bodies are Python (the reproduction's
# method-body language); structure matches the paper's XML.
VIEW_MAIL_CLIENT_PARTNER_XML = """
<View name="ViewMailClient_Partner">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="MessageI" type="local"/>
    <Interface name="NotesI" type="rmi" binding="NotesI"/>
    <Interface name="AddressI" type="switchboard" binding="AddressI"/>
  </Restricts>
  <Adds_Fields>
    <Field name="accountCopy" type="Account"/>
  </Adds_Fields>
  <Customizes_Methods>
    <MSign>boolean addMeeting(String name)</MSign>
    <MBody>return "meeting-requested:" + name</MBody>
  </Customizes_Methods>
</View>
"""

VIEW_MAIL_CLIENT_PARTNER = ViewSpec.from_xml(VIEW_MAIL_CLIENT_PARTNER_XML)

VIEW_MAIL_CLIENT_ANONYMOUS = ViewSpec(
    name="ViewMailClient_Anonymous",
    represents="MailClient",
    interfaces=(
        InterfaceRestriction(
            name="AddressI", mode=InterfaceMode.SWITCHBOARD, binding="AddressI"
        ),
    ),
    customized_methods=(
        MethodSpec(
            name="getPhone",
            params=("name",),
            body=(
                "raise PermissionError("
                "'anonymous clients may only browse the email directory')"
            ),
        ),
    ),
)

MAIL_CLIENT_VIEW_SPECS = (
    VIEW_MAIL_CLIENT_MEMBER,
    VIEW_MAIL_CLIENT_PARTNER,
    VIEW_MAIL_CLIENT_ANONYMOUS,
)


def mail_client_policy() -> ViewAccessPolicy:
    """Table 4's rules, verbatim."""
    return (
        ViewAccessPolicy("MailClient")
        .allow(Role("Comp.NY", "Member"), "ViewMailClient_Member")
        .allow(Role("Comp.NY", "Partner"), "ViewMailClient_Partner")
        .allow("others", "ViewMailClient_Anonymous")
    )
