"""Encryptor / Decryptor components (§2.2).

"Security-aware applications can deploy an encryptor/decryptor pair to
protect sensitive data crossing insecure links."

The pair translates between ``MailI`` (plaintext) and ``SecMailI``
(ciphertext blobs).  The Encryptor sits near the mail server (reaching it
over secure LAN links) and exposes ``SecMailI``, whose payloads may cross
insecure WAN links; the Decryptor sits near the client and turns the
blobs back into ``MailI``.  Both ends derive their pairwise key from a
secret the application Guard provisions at deployment time.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..crypto.cipher import AuthenticatedCipher
from ..views.interfaces import InterfaceDef, MethodSig

SecMailI = InterfaceDef(
    name="SecMailI",
    methods=(
        MethodSig("fetchMailEnc", ("user",)),
        MethodSig("sendMailEnc", ("blob",)),
        MethodSig("listAccountsEnc", ()),
    ),
)


def derive_pair_key(secret: str) -> bytes:
    """Both halves of a deployed pair derive the same session key."""
    return hashlib.sha256(b"mail-pair|" + secret.encode()).digest()


class Encryptor:
    """Server-side half: wraps a MailI provider behind SecMailI."""

    def __init__(self, upstream: Any, pair_secret: str = "default") -> None:
        self._upstream = upstream
        self._cipher = AuthenticatedCipher(derive_pair_key(pair_secret))

    # -- SecMailI ----------------------------------------------------------

    def fetchMailEnc(self, user: str) -> str:
        messages = self._upstream.fetchMail(user)
        return self._seal(messages)

    def sendMailEnc(self, blob: str) -> bool:
        mes = self._open(blob)
        return bool(self._upstream.sendMail(mes))

    def listAccountsEnc(self) -> str:
        return self._seal(self._upstream.listAccounts())

    # -- framing --------------------------------------------------------------

    def _seal(self, value: Any) -> str:
        plaintext = json.dumps(value, separators=(",", ":")).encode()
        return self._cipher.encrypt(plaintext).hex()

    def _open(self, blob: str) -> Any:
        return json.loads(self._cipher.decrypt(bytes.fromhex(blob)).decode())


class Decryptor:
    """Client-side half: re-exposes MailI from a SecMailI provider."""

    def __init__(self, upstream: Any, pair_secret: str = "default") -> None:
        self._upstream = upstream
        self._cipher = AuthenticatedCipher(derive_pair_key(pair_secret))

    # -- MailI -------------------------------------------------------------

    def fetchMail(self, user: str) -> list[dict]:
        return self._open(self._upstream.fetchMailEnc(user))

    def sendMail(self, mes: dict) -> bool:
        return bool(self._upstream.sendMailEnc(self._seal(mes)))

    def listAccounts(self) -> list[str]:
        return self._open(self._upstream.listAccountsEnc())

    # -- framing ---------------------------------------------------------------

    def _seal(self, value: Any) -> str:
        plaintext = json.dumps(value, separators=(",", ":")).encode()
        return self._cipher.encrypt(plaintext).hex()

    def _open(self, blob: str) -> Any:
        return json.loads(self._cipher.decrypt(bytes.fromhex(blob)).decode())
