"""The Partitionable Services Framework façade (§2.1).

Bundles the four PSF elements — declarative specification (registrar),
monitoring, planning, and deployment — with the per-domain Guards and the
dRBAC engine, exposing the two client-facing flows of the paper:

* :meth:`PSF.request_service` — "a client request for a service interface
  ... is passed on to the planning module, along with any client
  credentials"; the run-time system then instantiates, downloads, and
  connects the components (§4.3).
* :meth:`PSF.serve_client_view` — the fine-grained, single-sign-on access
  control path (§4.2): the client's provable role selects a view per the
  component's Table 4 policy, VIG generates it, and the client receives
  the view instance; no further access checks apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..clock import Clock
from ..crypto.keys import KeyStore
from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..errors import AuthorizationError, PsfError
from ..net.events import EventScheduler
from ..net.simnet import Network
from ..net.transport import Transport
from ..switchboard.authorizer import AuthorizationSuite
from ..views.acl import AccessDecision
from ..views.proxies import ViewRuntime
from ..views.vig import Vig
from .deployment import Deployer, Deployment
from .guard import Guard
from .monitor import EnvironmentMonitor
from .planner import (
    DeploymentPlan,
    ExistingInstance,
    Planner,
    ServiceRequest,
)
from .registrar import Registrar


@dataclass
class ServiceSession:
    """A granted service request: the plan, the live deployment, and the
    client-side access handle."""

    request: ServiceRequest
    plan: DeploymentPlan
    deployment: Deployment
    access: Any


class PSF:
    """One framework instance spanning every simulated domain."""

    def __init__(
        self,
        *,
        key_bits: int | None = None,
        key_store: KeyStore | None = None,
        verify_signatures: bool = True,
    ) -> None:
        self.scheduler = EventScheduler()
        if key_store is None:
            key_store = KeyStore(key_bits=key_bits) if key_bits else KeyStore()
        self.engine = DrbacEngine(
            key_store=key_store,
            clock=self.scheduler,
            verify_signatures=verify_signatures,
        )
        self.network = Network()
        self.transport = Transport(self.network, self.scheduler)
        self.registrar = Registrar()
        self.vig = Vig(self.registrar.interfaces)
        self.monitor = EnvironmentMonitor(self.network)
        self.guards: dict[str, Guard] = {}
        self.app_guard: Optional[Guard] = None
        self.existing: list[ExistingInstance] = []
        self._deployer: Optional[Deployer] = None

    # -- setup -----------------------------------------------------------------

    def add_guard(self, domain: str, entity: str) -> Guard:
        """Install the Guard for a network domain (keyed by node.domain)."""
        guard = Guard(self.engine, entity)
        self.guards[domain] = guard
        return guard

    def set_app_guard(self, guard: Guard) -> None:
        """The Guard speaking for the application itself (signs instance
        credentials at deployment time)."""
        self.app_guard = guard

    @property
    def deployer(self) -> Deployer:
        if self._deployer is None:
            if self.app_guard is None:
                raise PsfError("set_app_guard() before deploying")
            self._deployer = Deployer(
                self.transport,
                self.engine,
                self.vig,
                self.app_guard,
                registrar=self.registrar,
            )
        return self._deployer

    def host_existing(self, name: str, node: str, obj: Any, component_name: str) -> None:
        """Register an already-running service instance (e.g. the central
        mail server) so plans can link against it."""
        component = self.registrar.component(component_name)
        self.existing.append(ExistingInstance(name=name, node=node, component=component))
        self.deployer.register_existing(name, node, obj)

    # -- planning & deployment ----------------------------------------------------

    def planner(self, *, use_views: bool = True, max_depth: int = 6) -> Planner:
        return Planner(
            self.registrar,
            self.network,
            self.guards,
            existing=self.existing,
            use_views=use_views,
            max_depth=max_depth,
        )

    def request_service(
        self,
        request: ServiceRequest,
        *,
        use_views: bool = True,
        client_suite: AuthorizationSuite | None = None,
    ) -> ServiceSession:
        """Plan, deploy, and hand the client its access handle."""
        plan = self.planner(use_views=use_views).plan(request)
        deployment = self.deployer.deploy(plan)
        access = deployment.client_access(client_suite)
        return ServiceSession(
            request=request, plan=plan, deployment=deployment, access=access
        )

    # -- fine-grained access control (Table 4) ---------------------------------------

    def serve_client_view(
        self,
        component_name: str,
        client: str,
        *,
        original: Any,
        credentials: list[Delegation] | None = None,
        runtime: ViewRuntime | None = None,
    ) -> tuple[Any, AccessDecision]:
        """Resolve the client's view per policy and instantiate it.

        "Views permit single sign-on usage, because authentication and
        authorization decisions can be completed when the view is first
        instantiated.  After that clients are free to access the view they
        receive, without additional access control."
        """
        policy = self.registrar.policy(component_name)
        if policy is None:
            raise PsfError(f"component {component_name!r} has no view access policy")
        decision = policy.resolve(client, self.engine, credentials)
        if decision is None:
            raise AuthorizationError(
                f"client {client!r} holds no role admitted by {component_name!r}"
            )
        spec = self.registrar.view_spec(decision.view_name)
        base_cls = self.registrar.component_class(component_name)
        if base_cls is None:
            base_cls = type(original)
        view_cls = self.vig.generate(spec, base_cls)
        view_runtime = runtime or ViewRuntime()
        view_runtime.local_objects.setdefault(spec.represents, original)
        view = view_cls(view_runtime)
        return view, decision
