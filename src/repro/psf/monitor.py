"""Environment monitoring (§2.1).

"The planning module ... factor[s] in application and network-level
constraints, updates to which are tracked by the *monitoring* module."

The monitor snapshots node/link state for the planner and notifies
listeners when conditions change (degraded bandwidth, links losing their
security property, nodes going away) so the framework can re-plan — the
adaptation loop of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..net.simnet import Network, SimLink


@dataclass(frozen=True, slots=True)
class LinkReport:
    a: str
    b: str
    latency_s: float
    bandwidth_bps: float
    secure: bool
    up: bool


@dataclass(frozen=True, slots=True)
class NodeReport:
    name: str
    domain: str
    properties: tuple[tuple[str, object], ...]


@dataclass(frozen=True, slots=True)
class EnvironmentSnapshot:
    nodes: tuple[NodeReport, ...]
    links: tuple[LinkReport, ...]


ChangeListener = Callable[[str, LinkReport], None]
"""Called with (change kind, new link state)."""


class EnvironmentMonitor:
    """Watches the simulated network on behalf of the planner."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._listeners: list[ChangeListener] = []
        self.changes_observed = 0

    def snapshot(self) -> EnvironmentSnapshot:
        nodes = tuple(
            NodeReport(
                name=n.name,
                domain=n.domain,
                properties=tuple(sorted(n.properties.items())),
            )
            for n in self.network.nodes()
        )
        links = tuple(_report(l) for l in self.network.links())
        return EnvironmentSnapshot(nodes=nodes, links=links)

    def on_change(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    # -- mutation entry points (the "measurement" side) ----------------------

    def set_link_bandwidth(self, a: str, b: str, bandwidth_bps: float) -> None:
        link = self.network.link(a, b)
        link.bandwidth_bps = bandwidth_bps
        self._notify("bandwidth", link)

    def set_link_latency(self, a: str, b: str, latency_s: float) -> None:
        link = self.network.link(a, b)
        link.latency_s = latency_s
        self._notify("latency", link)

    def set_link_security(self, a: str, b: str, secure: bool) -> None:
        link = self.network.link(a, b)
        link.secure = secure
        self._notify("security", link)

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        link = self.network.link(a, b)
        link.up = up
        self._notify("up" if up else "down", link)

    def _notify(self, kind: str, link: SimLink) -> None:
        self.changes_observed += 1
        report = _report(link)
        for listener in list(self._listeners):
            listener(kind, report)


def _report(link: SimLink) -> LinkReport:
    return LinkReport(
        a=link.a,
        b=link.b,
        latency_s=link.latency_s,
        bandwidth_bps=link.bandwidth_bps,
        secure=link.secure,
        up=link.up,
    )
