"""Environment monitoring (§2.1).

"The planning module ... factor[s] in application and network-level
constraints, updates to which are tracked by the *monitoring* module."

The monitor snapshots node/link state for the planner and notifies
listeners when conditions change (degraded bandwidth, links losing their
security property, nodes going away) so the framework can re-plan — the
adaptation loop of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..net.simnet import Network, SimLink, SimNode


@dataclass(frozen=True, slots=True)
class LinkReport:
    a: str
    b: str
    latency_s: float
    bandwidth_bps: float
    secure: bool
    up: bool
    loss_rate: float = 0.0


@dataclass(frozen=True, slots=True)
class NodeReport:
    name: str
    domain: str
    properties: tuple[tuple[str, object], ...]
    up: bool = True


@dataclass(frozen=True, slots=True)
class EnvironmentSnapshot:
    nodes: tuple[NodeReport, ...]
    links: tuple[LinkReport, ...]


ChangeListener = Callable[[str, LinkReport], None]
"""Called with (change kind, new link state)."""

NodeChangeListener = Callable[[str, NodeReport], None]
"""Called with (change kind: "node-down" | "node-up", new node state)."""


class EnvironmentMonitor:
    """Watches the simulated network on behalf of the planner."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._listeners: list[ChangeListener] = []
        self._node_listeners: list[NodeChangeListener] = []
        self.changes_observed = 0

    def snapshot(self) -> EnvironmentSnapshot:
        nodes = tuple(_node_report(n) for n in self.network.nodes())
        links = tuple(_report(l) for l in self.network.links())
        return EnvironmentSnapshot(nodes=nodes, links=links)

    def on_change(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def on_node_change(self, listener: NodeChangeListener) -> None:
        self._node_listeners.append(listener)

    # -- mutation entry points (the "measurement" side) ----------------------

    def set_link_bandwidth(self, a: str, b: str, bandwidth_bps: float) -> None:
        link = self.network.link(a, b)
        link.bandwidth_bps = bandwidth_bps
        self._notify("bandwidth", link)

    def set_link_latency(self, a: str, b: str, latency_s: float) -> None:
        link = self.network.link(a, b)
        link.latency_s = latency_s
        self._notify("latency", link)

    def set_link_security(self, a: str, b: str, secure: bool) -> None:
        link = self.network.link(a, b)
        link.secure = secure
        self._notify("security", link)

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        link = self.network.link(a, b)
        link.up = up
        self._notify("up" if up else "down", link)

    def set_link_loss(self, a: str, b: str, loss_rate: float) -> None:
        link = self.network.link(a, b)
        link.loss_rate = loss_rate
        self._notify("loss", link)

    def set_node_up(self, name: str, up: bool) -> None:
        """Record a host crash-stop or restart and notify planners.

        Crash faults flow through here (not by poking ``SimNode.up``
        directly) so the adaptation layer hears about them — the same
        contract the link mutators follow.
        """
        node = self.network.node(name)
        if node.up == up:
            return
        node.up = up
        self.changes_observed += 1
        report = _node_report(node)
        kind = "node-up" if up else "node-down"
        for listener in list(self._node_listeners):
            listener(kind, report)

    def _notify(self, kind: str, link: SimLink) -> None:
        self.changes_observed += 1
        report = _report(link)
        for listener in list(self._listeners):
            listener(kind, report)


def _report(link: SimLink) -> LinkReport:
    return LinkReport(
        a=link.a,
        b=link.b,
        latency_s=link.latency_s,
        bandwidth_bps=link.bandwidth_bps,
        secure=link.secure,
        up=link.up,
        loss_rate=link.loss_rate,
    )


def _node_report(node: SimNode) -> NodeReport:
    return NodeReport(
        name=node.name,
        domain=node.domain,
        properties=tuple(sorted(node.properties.items())),
        up=node.up,
    )
