"""Per-domain Guard modules (Section 3.3).

"Beside the main modules — registrar, monitor, planner, deployer — the
framework has a security module (*Guard*) that manages the site security
by generating certificates, defining roles, creating access control
lists, authenticating, and authorizing."

Each Guard owns one domain entity name (e.g. ``Comp.NY``) and issues the
credentials of Table 2 on its behalf: user-auth delegations for clients,
node-auth delegations mapping hardware facts onto local roles, and
component-auth delegations (the ``<domain>.Executable`` roles with CPU
budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..drbac.model import AttrScalar, Attributes, EntityRef, Role, Subject
from ..drbac.query import Constraint


class Guard:
    """Security authority for one administrative domain."""

    def __init__(
        self,
        engine: DrbacEngine,
        domain: str,
        *,
        executable_cpu_limit: float | None = None,
    ) -> None:
        self.engine = engine
        self.domain = domain
        self.issued: list[Delegation] = []
        self._executable_cpu_limit = executable_cpu_limit
        self._challenges: dict[str, bytes] = {}
        # Materialize the domain's signing identity up front.
        engine.identity(domain)

    # -- roles ---------------------------------------------------------------

    def role(self, name: str) -> Role:
        """A role in this Guard's namespace (``<domain>.<name>``)."""
        return Role(owner=self.domain, name=name)

    @property
    def executable_role(self) -> Role:
        """The role components must prove to run in this domain (§3.3)."""
        return self.role("Executable")

    # -- certificate generation ------------------------------------------------

    def certify(
        self,
        subject: Subject | str,
        role: Role | str,
        *,
        assignment: bool = False,
        attributes: Attributes | None = None,
        expires_at: float | None = None,
        requires_monitoring: bool = False,
    ) -> Delegation:
        """Issue a delegation signed by this domain."""
        delegation = self.engine.delegate(
            self.domain,
            subject,
            role,
            assignment=assignment,
            attributes=attributes,
            expires_at=expires_at,
            requires_monitoring=requires_monitoring,
        )
        self.issued.append(delegation)
        return delegation

    def certify_member(self, client: str, *, role_name: str = "Member") -> Delegation:
        """User auth: [client -> domain.role] domain (Table 2 rows 1/11/15)."""
        return self.certify(EntityRef(client), self.role(role_name))

    def map_role(
        self,
        foreign: Role | str,
        local_role_name: str,
        *,
        attributes: Attributes | None = None,
    ) -> Delegation:
        """Cross-domain mapping: [foreign -> domain.local] domain (row 2)."""
        return self.certify(foreign, self.role(local_role_name), attributes=attributes)

    def grant_assignment(self, subject: Subject | str, role_name: str) -> Delegation:
        """Right-of-assignment: [subject -> domain.role'] domain (row 3)."""
        return self.certify(subject, self.role(role_name), assignment=True)

    def accept_executables(
        self,
        foreign_executable: Role | str,
        *,
        cpu: float,
    ) -> Delegation:
        """Component auth: map a foreign Executable role onto the local one
        with an attenuated CPU budget (Table 2 rows 14/17)."""
        return self.certify(
            foreign_executable,
            self.executable_role,
            attributes={"CPU": AttrScalar(cpu)},
        )

    # -- authentication (§3.3: Guards "authenticat[e]") --------------------------

    def challenge(self, principal: str) -> bytes:
        """Issue a fresh authentication challenge for ``principal``."""
        import secrets

        nonce = secrets.token_bytes(16)
        self._challenges[principal] = nonce
        return b"guard-auth|" + self.domain.encode() + b"|" + nonce

    def verify_response(self, principal: str, signature: bytes) -> bool:
        """Check the principal signed our outstanding challenge.

        One-shot: the challenge is consumed whether or not verification
        succeeds, so a captured signature cannot be replayed later.
        """
        nonce = self._challenges.pop(principal, None)
        if nonce is None:
            return False
        challenge = b"guard-auth|" + self.domain.encode() + b"|" + nonce
        if principal not in self.engine.key_store:
            return False
        return self.engine.public_identity(principal).verify(challenge, signature)

    def authenticate(self, principal: str, sign) -> bool:
        """Full round trip given the principal's signing function."""
        challenge = self.challenge(principal)
        return self.verify_response(principal, sign(challenge))

    # -- authorization ------------------------------------------------------------

    def authorize_client(
        self,
        client: str,
        role: Role | str,
        credentials: list[Delegation] | None = None,
    ):
        """Authenticate+authorize a client for a local role; returns a
        monitored :class:`~repro.drbac.engine.AuthorizationResult`."""
        return self.engine.authorize(EntityRef(client), role, credentials)

    def node_satisfies(
        self, node_entity: str, constraint: Constraint | str
    ) -> bool:
        """The node-authorization query of §3.3: map node properties onto
        application properties via a credential chain."""
        return self.engine.is_a(node_entity, constraint) is not None

    def component_cpu_budget(
        self, component_role: Role | str
    ) -> Optional[float]:
        """CPU budget a component holding ``component_role`` gets here.

        Returns the attenuated CPU attribute from the proof chain to this
        domain's Executable role, or ``None`` when the component is not
        authorized at all.
        """
        if isinstance(component_role, str):
            component_role = Role.parse(component_role)
        proof = self.engine.find_proof(component_role, self.executable_role)
        if proof is None:
            return None
        cpu = proof.attributes.get("CPU")
        if isinstance(cpu, AttrScalar):
            return cpu.value
        return float("inf")
