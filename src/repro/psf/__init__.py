"""The Partitionable Services Framework (PSF).

Declarative component specification, environment monitoring, Sekitei-style
deployment planning, deployment infrastructure, and per-domain Guards —
the substrate in which dRBAC and views operate (Sections 2-4).
"""

from .adaptation import (
    AdaptationEvent,
    AdaptationManager,
    ManagedSession,
    plan_signature,
)
from .appspec import LoadReport, load_application
from .component import ComponentType, Port, view_component
from .deployment import (
    DeployedInstance,
    Deployer,
    Deployment,
    DeploymentContext,
    NodeRuntime,
)
from .framework import PSF, ServiceSession
from .guard import Guard
from .monitor import (
    EnvironmentMonitor,
    EnvironmentSnapshot,
    LinkReport,
    NodeReport,
)
from .planner import (
    DeploymentPlan,
    EdgeRequirement,
    ExistingInstance,
    PlannedComponent,
    PlannedLink,
    Planner,
    ServiceRequest,
)
from .qos import QosPolicy, QosRule, ServiceLevel
from .registrar import Registrar

__all__ = [
    "AdaptationEvent",
    "AdaptationManager",
    "ComponentType",
    "LoadReport",
    "load_application",
    "ManagedSession",
    "plan_signature",
    "DeployedInstance",
    "Deployer",
    "Deployment",
    "DeploymentContext",
    "DeploymentPlan",
    "EdgeRequirement",
    "EnvironmentMonitor",
    "EnvironmentSnapshot",
    "ExistingInstance",
    "Guard",
    "LinkReport",
    "NodeReport",
    "NodeRuntime",
    "PSF",
    "PlannedComponent",
    "PlannedLink",
    "Planner",
    "QosPolicy",
    "QosRule",
    "ServiceLevel",
    "Port",
    "Registrar",
    "ServiceRequest",
    "ServiceSession",
    "view_component",
]
