"""Deployment infrastructure (§2.1, §4.3).

"Once the planning module finds a valid plan ... the run-time system is
responsible for instantiating, downloading, and securely connecting the
views."  Concretely, the deployer:

1. instantiates every planned component, providers before consumers —
   view-typed components are generated on the spot by VIG (generation
   deferred to first deployment);
2. issues each instance its own credential chain, signed by the
   application Guard ("the deployment infrastructure issues to the
   generated view its own set of credentials");
3. exports instances on their node's RPC and Switchboard endpoints, plus
   an :class:`~repro.views.coherence.ImageService` so remote views can
   synchronize their images;
4. wires the planned links: local references, plaintext RMI stubs, or
   Switchboard secure channels, per the planner's chosen mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .. import obs
from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..drbac.model import EntityRef
from ..errors import DeploymentError
from ..obs import names as metric_names
from ..net.simnet import Network
from ..net.transport import Transport
from ..switchboard.authorizer import AcceptAllAuthorizer, AuthorizationSuite
from ..switchboard.channel import SwitchboardEndpoint
from ..switchboard.registry import NamingRegistry, ServiceAddress
from ..switchboard.rpc import PlainRpcEndpoint
from ..views.coherence import ImageService
from ..views.proxies import IMAGE_BINDING_PREFIX, RmiStub, SwitchboardStub, ViewRuntime
from ..views.vig import Vig
from .component import ComponentType
from .guard import Guard
from .planner import DeploymentPlan, PlannedComponent, PlannedLink
from .registrar import Registrar


class NodeRuntime:
    """Per-node communication endpoints, created lazily and shared."""

    def __init__(
        self,
        transport: Transport,
        node_name: str,
        engine: DrbacEngine,
    ) -> None:
        self.node_name = node_name
        self.rpc = PlainRpcEndpoint(transport, node_name)
        self.switchboard = SwitchboardEndpoint(
            transport,
            node_name,
            directory=lambda name: (
                engine.public_identity(name) if name in engine.key_store else None
            ),
        )


@dataclass
class DeployedInstance:
    """A live component instance produced by the deployer."""

    instance_id: str
    component: ComponentType
    node: str
    obj: Any
    credentials: list[Delegation] = field(default_factory=list)

    def __str__(self) -> str:
        return f"{self.instance_id}({self.component.name})@{self.node}"


class DeploymentContext:
    """What a component factory sees while being instantiated."""

    def __init__(
        self,
        instance_id: str,
        node: str,
        deployment: "Deployment",
        links: list[PlannedLink],
    ) -> None:
        self.instance_id = instance_id
        self.node = node
        self._deployment = deployment
        self._links = links

    def require(self, interface: str) -> Any:
        """Resolve the provider wired to this instance's required port."""
        for link in self._links:
            if link.consumer == self.instance_id and link.interface == interface:
                return self._deployment.access_provider(link, from_node=self.node)
        raise DeploymentError(
            f"{self.instance_id} has no planned link for interface {interface!r}"
        )


class Deployment:
    """A realized plan: live instances, exports, and channel wiring."""

    def __init__(
        self,
        plan: DeploymentPlan,
        deployer: "Deployer",
    ) -> None:
        self.plan = plan
        self.deployer = deployer
        self.naming = NamingRegistry()
        self.instances: dict[str, DeployedInstance] = {}

    # -- provider resolution ------------------------------------------------

    def provider_location(self, provider: str) -> tuple[str, Any]:
        """(node, object) for a planned instance or an existing export."""
        instance = self.instances.get(provider)
        if instance is not None:
            return instance.node, instance.obj
        existing = self.deployer.existing_objects.get(provider)
        if existing is not None:
            return existing
        raise DeploymentError(f"unknown provider {provider!r}")

    def access_provider(self, link: PlannedLink, *, from_node: str) -> Any:
        """Materialize the consumer-side handle for one planned link."""
        node, obj = self.provider_location(link.provider)
        if link.mode == "local":
            if node != from_node:
                raise DeploymentError(
                    f"link {link.consumer}->{link.provider} is local but nodes differ"
                )
            return obj
        address = ServiceAddress(node=node, service=link.provider, target=link.provider)
        runtime = self.deployer.node_runtime(from_node)
        if link.mode == "rmi":
            return RmiStub(runtime.rpc, address)
        if link.mode == "switchboard":
            suite = self.deployer.instance_suite(link.consumer)
            pending = runtime.switchboard.connect(node, link.provider, suite)
            return SwitchboardStub(pending.wait(), link.provider)
        raise DeploymentError(f"unknown link mode {link.mode!r}")

    # -- crash handling ---------------------------------------------------------

    def evict_node(self, node: str) -> list[str]:
        """Drop every instance hosted on a crashed node.

        Crash-stop semantics: the instances' state is gone, and their
        exports must disappear so a restarted host does not resurrect
        stale objects.  Returns the evicted instance ids; the adaptation
        layer uses a non-empty result to force redeployment even when the
        re-planned configuration looks identical on paper.
        """
        evicted = [
            instance_id
            for instance_id, instance in self.instances.items()
            if instance.node == node
        ]
        runtime = self.deployer._node_runtimes.get(node)
        for instance_id in evicted:
            del self.instances[instance_id]
            if runtime is not None:
                runtime.rpc.exporter.unexport(instance_id)
                runtime.rpc.exporter.unexport(f"{instance_id}#image")
                runtime.switchboard.exporter.unexport(instance_id)
                runtime.switchboard.exporter.unexport(f"{instance_id}#image")
        return evicted

    # -- client side -----------------------------------------------------------

    def entry_link(self) -> PlannedLink:
        for link in self.plan.links:
            if link.consumer == "client":
                return link
        raise DeploymentError("plan has no client entry link")

    def client_access(self, suite: AuthorizationSuite | None = None) -> Any:
        """The handle the requesting client uses to reach the service."""
        link = self.entry_link()
        node, obj = self.provider_location(link.provider)
        if link.mode == "local":
            return obj
        runtime = self.deployer.node_runtime(self.plan.request.client_node)
        address = ServiceAddress(node=node, service=link.provider, target=link.provider)
        if link.mode == "rmi":
            return RmiStub(runtime.rpc, address)
        if suite is None:
            client_identity = self.deployer.engine.identity(self.plan.request.client)
            suite = AuthorizationSuite(identity=client_identity)
        pending = runtime.switchboard.connect(node, link.provider, suite)
        return SwitchboardStub(pending.wait(), link.provider)


class Deployer:
    """Executes deployment plans against the simulated network."""

    def __init__(
        self,
        transport: Transport,
        engine: DrbacEngine,
        vig: Vig,
        app_guard: Guard,
        *,
        registrar: Optional["Registrar"] = None,
        existing_objects: dict[str, tuple[str, Any]] | None = None,
    ) -> None:
        self.transport = transport
        self.engine = engine
        self.vig = vig
        self.app_guard = app_guard
        self.registrar = registrar
        self.existing_objects = dict(existing_objects or {})
        self._node_runtimes: dict[str, NodeRuntime] = {}
        self._suites: dict[str, AuthorizationSuite] = {}
        self.deploy_count = 0

    # -- infrastructure --------------------------------------------------------

    @property
    def network(self) -> Network:
        return self.transport.network

    def node_runtime(self, node_name: str) -> NodeRuntime:
        runtime = self._node_runtimes.get(node_name)
        if runtime is None:
            runtime = NodeRuntime(self.transport, node_name, self.engine)
            self._node_runtimes[node_name] = runtime
        return runtime

    def instance_suite(self, instance_id: str) -> AuthorizationSuite:
        suite = self._suites.get(instance_id)
        if suite is None:
            identity = self.engine.identity(instance_id)
            suite = AuthorizationSuite(identity=identity)
            self._suites[instance_id] = suite
        return suite

    def register_existing(self, name: str, node: str, obj: Any) -> None:
        """Make a running service linkable and remotely callable."""
        self.existing_objects[name] = (node, obj)
        runtime = self.node_runtime(node)
        runtime.rpc.exporter.export(name, obj)
        runtime.switchboard.export(name, obj)
        runtime.switchboard.listen(
            name,
            AuthorizationSuite(
                identity=self.engine.identity(name),
                authorizer=AcceptAllAuthorizer(),
            ),
        )
        image = ImageService(obj)
        runtime.rpc.exporter.export(f"{name}#image", image)
        runtime.switchboard.export(f"{name}#image", image)

    # -- execution ------------------------------------------------------------------

    def deploy(self, plan: DeploymentPlan) -> Deployment:
        """Instantiate, credential, export, and wire a plan."""
        with obs.span("psf.deploy", components=len(plan.components)) as sp:
            deployment = Deployment(plan, self)
            # Providers appear after their consumers in plan order (regression
            # appends depth-first), so instantiate in reverse.
            for planned in reversed(plan.components):
                instance = self._instantiate(planned, deployment)
                deployment.instances[planned.instance_id] = instance
                self._export(instance, deployment)
            self.deploy_count += 1
        if obs.is_enabled():
            obs.counter(metric_names.DEPLOY_DEPLOYMENTS).inc()
            obs.counter(metric_names.DEPLOY_INSTANCES).inc(len(deployment.instances))
            obs.histogram(metric_names.DEPLOY_DURATION).observe(sp.duration)
        return deployment

    # -- steps ----------------------------------------------------------------------------

    def _instantiate(
        self, planned: PlannedComponent, deployment: Deployment
    ) -> DeployedInstance:
        component = planned.component
        context = DeploymentContext(
            instance_id=planned.instance_id,
            node=planned.node,
            deployment=deployment,
            links=deployment.plan.links,
        )
        credentials = self._issue_credentials(planned)
        if component.view_spec is not None:
            obj = self._instantiate_view(planned, deployment, context)
        elif component.factory is not None:
            obj = component.factory(context)
        else:
            raise DeploymentError(
                f"component {component.name!r} has neither a factory nor a view spec"
            )
        return DeployedInstance(
            instance_id=planned.instance_id,
            component=component,
            node=planned.node,
            obj=obj,
            credentials=credentials,
        )

    def _issue_credentials(self, planned: PlannedComponent) -> list[Delegation]:
        """Give the instance its own credential chain (§4.3)."""
        credentials: list[Delegation] = []
        role = planned.component.component_role
        if role is not None:
            credentials.append(
                self.engine.delegate(
                    role.owner,
                    EntityRef(planned.instance_id),
                    role,
                )
            )
        obs.counter(metric_names.DEPLOY_CREDENTIALS).inc(len(credentials))
        return credentials

    def _instantiate_view(
        self,
        planned: PlannedComponent,
        deployment: Deployment,
        context: DeploymentContext,
    ) -> Any:
        component = planned.component
        spec = component.view_spec
        assert spec is not None
        base_name = component.properties.get("view_of", spec.represents)
        represented = self._represented_class(base_name, spec.represents)
        view_cls = self.vig.generate(spec, represented)

        runtime = ViewRuntime(
            naming=deployment.naming,
            rpc=self.node_runtime(planned.node).rpc,
            switchboard=self.node_runtime(planned.node).switchboard,
            suite=self.instance_suite(planned.instance_id),
        )
        # Wire the view's remote interfaces and image port to its provider.
        for link in deployment.plan.links:
            if link.consumer != planned.instance_id:
                continue
            node, obj = deployment.provider_location(link.provider)
            if link.mode == "local":
                runtime.local_objects[spec.represents] = obj
            else:
                address = ServiceAddress(
                    node=node, service=link.provider, target=link.provider
                )
                image_address = ServiceAddress(
                    node=node, service=link.provider, target=f"{link.provider}#image"
                )
                for restriction in spec.interfaces:
                    binding = restriction.binding or restriction.name
                    if binding not in deployment.naming:
                        deployment.naming.bind(binding, address)
                    runtime.binding_modes.setdefault(binding, link.mode)
                image_binding = IMAGE_BINDING_PREFIX + spec.represents
                deployment.naming.bind(image_binding, image_address)
                # The origin port must use the channel mode the planner
                # certified for this link, not a blanket preference.
                runtime.binding_modes[image_binding] = link.mode
        return view_cls(runtime)

    def _represented_class(self, base_name: str, represents: str) -> type:
        cls = None
        if self.registrar is not None:
            cls = self.registrar.component_class(base_name) or (
                self.registrar.component_class(represents)
            )
        if cls is None:
            raise DeploymentError(
                f"no implementation class registered for {base_name!r} "
                f"(represents {represents!r}); register it with the registrar"
            )
        return cls

    def _export(self, instance: DeployedInstance, deployment: Deployment) -> None:
        runtime = self.node_runtime(instance.node)
        runtime.rpc.exporter.export(instance.instance_id, instance.obj)
        runtime.switchboard.export(instance.instance_id, instance.obj)
        runtime.switchboard.listen(
            instance.instance_id,
            AuthorizationSuite(
                identity=self.engine.identity(instance.instance_id),
                credentials=instance.credentials,
                authorizer=AcceptAllAuthorizer(),
            ),
        )
        image = ImageService(instance.obj)
        runtime.rpc.exporter.export(f"{instance.instance_id}#image", image)
        runtime.switchboard.export(f"{instance.instance_id}#image", image)
