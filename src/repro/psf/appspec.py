"""Declarative application specification (§2.1, PSF element #1).

"In order to allow applications to flexibly adapt to heterogeneous
environments, PSF relies on four elements: (1) a *declarative
specification* of application and environment characteristics, ..."

This module provides the registration document: one XML file describing an
application's interfaces, components (with implemented/required ports,
properties, dRBAC roles, node constraints, CPU demands), view
specifications, and the Table 4 access policies.  Loading a document
populates a :class:`~repro.psf.registrar.Registrar` exactly as the
programmatic API would.

Grammar::

    <Application name="mail">
      <Interfaces>
        <Interface name="MailI">
          <Method>fetchMail(user)</Method>
          <Method>sendMail(mes)</Method>
        </Interface>
      </Interfaces>
      <Components>
        <Component name="MailServer" role="Mail.MailServer" cpu="50"
                   deployable="false">
          <Implements interface="MailI"/>
          <NodeConstraint>Mail.Node with Secure={true}</NodeConstraint>
        </Component>
        <Component name="Encryptor" role="Mail.Encryptor" cpu="30">
          <Property name="bandwidth_transparent" value="true"/>
          <Implements interface="SecMailI">
            <Property name="encrypted" value="true"/>
          </Implements>
          <Requires interface="MailI">
            <Property name="privacy" value="true"/>
            <Property name="channel" value="rmi"/>
          </Requires>
          <NodeConstraint>Mail.Node</NodeConstraint>
        </Component>
      </Components>
      <Views>
        <View name="..."> ... (the Table 3b grammar) ... </View>
      </Views>
      <Policies>
        <Policy component="MailClient">
          <Allow role="Comp.NY.Member" view="ViewMailClient_Member"/>
          <Allow role="others" view="ViewMailClient_Anonymous"/>
        </Policy>
      </Policies>
    </Application>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..drbac.model import Role
from ..drbac.query import Constraint
from ..errors import PsfError
from ..views.acl import ViewAccessPolicy
from ..views.interfaces import InterfaceDef, MethodSig
from ..views.spec import ViewSpec, parse_signature
from .component import ComponentType, Port
from .registrar import Registrar


@dataclass(slots=True)
class LoadReport:
    """What a document contributed to the registrar."""

    application: str = ""
    interfaces: list[str] = field(default_factory=list)
    components: list[str] = field(default_factory=list)
    views: list[str] = field(default_factory=list)
    policies: list[str] = field(default_factory=list)


def _parse_value(text: str):
    """Property values: booleans, numbers, or strings."""
    lowered = text.strip().lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text.strip()


def _parse_properties(element: ET.Element) -> dict:
    properties: dict = {}
    for child in element.findall("Property"):
        name = (child.get("name") or "").strip()
        if not name:
            raise PsfError("<Property> requires a name attribute")
        properties[name] = _parse_value(child.get("value", ""))
    return properties


def _parse_interface(element: ET.Element) -> InterfaceDef:
    name = (element.get("name") or "").strip()
    if not name:
        raise PsfError("<Interface> requires a name attribute")
    methods = []
    for method_el in element.findall("Method"):
        method_name, params = parse_signature((method_el.text or "").strip())
        methods.append(MethodSig(name=method_name, params=params))
    return InterfaceDef(name=name, methods=tuple(methods))


def _parse_port(element: ET.Element) -> Port:
    interface = (element.get("interface") or "").strip()
    if not interface:
        raise PsfError(f"<{element.tag}> requires an interface attribute")
    return Port(interface=interface, properties=_parse_properties(element))


def _parse_component(
    element: ET.Element,
    factories: dict[str, Callable],
    classes: dict[str, type],
) -> tuple[ComponentType, Optional[type]]:
    name = (element.get("name") or "").strip()
    if not name:
        raise PsfError("<Component> requires a name attribute")
    role_text = (element.get("role") or "").strip()
    component_role = Role.parse(role_text) if role_text else None
    constraints = tuple(
        Constraint.parse((c.text or "").strip())
        for c in element.findall("NodeConstraint")
    )
    component = ComponentType(
        name=name,
        implements=tuple(_parse_port(p) for p in element.findall("Implements")),
        requires=tuple(_parse_port(p) for p in element.findall("Requires")),
        component_role=component_role,
        node_constraints=constraints,
        cpu_demand=float(element.get("cpu", "0")),
        deployable=_parse_value(element.get("deployable", "true")) is True,
        factory=factories.get(name),
        properties=_parse_properties(element),
    )
    return component, classes.get(name)


def load_application(
    registrar: Registrar,
    xml_text: str,
    *,
    factories: dict[str, Callable] | None = None,
    classes: dict[str, type] | None = None,
) -> LoadReport:
    """Register everything an application document declares.

    ``factories`` and ``classes`` bind the declarative names to runnable
    code (XML cannot carry Python callables); components without either
    can still be planned against but not instantiated.
    """
    factories = factories or {}
    classes = classes or {}
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise PsfError(f"unparseable application XML: {exc}") from exc
    if root.tag != "Application":
        raise PsfError(f"root element must be <Application>, got <{root.tag}>")
    report = LoadReport(application=(root.get("name") or "").strip())

    interfaces_el = root.find("Interfaces")
    if interfaces_el is not None:
        for iface_el in interfaces_el.findall("Interface"):
            interface = _parse_interface(iface_el)
            registrar.register_interface(interface)
            report.interfaces.append(interface.name)

    components_el = root.find("Components")
    if components_el is not None:
        for comp_el in components_el.findall("Component"):
            component, cls = _parse_component(comp_el, factories, classes)
            registrar.register_component(component, cls=cls)
            report.components.append(component.name)

    views_el = root.find("Views")
    if views_el is not None:
        for view_el in views_el.findall("View"):
            spec = ViewSpec.from_xml(ET.tostring(view_el, encoding="unicode"))
            base = (view_el.get("component") or spec.represents).strip()
            role_text = (view_el.get("role") or "").strip()
            registrar.register_view(
                base,
                spec,
                cpu_demand=(
                    float(view_el.get("cpu")) if view_el.get("cpu") else None
                ),
                component_role=Role.parse(role_text) if role_text else None,
            )
            report.views.append(spec.name)

    policies_el = root.find("Policies")
    if policies_el is not None:
        for policy_el in policies_el.findall("Policy"):
            component_name = (policy_el.get("component") or "").strip()
            if not component_name:
                raise PsfError("<Policy> requires a component attribute")
            policy = ViewAccessPolicy(component_name)
            for allow_el in policy_el.findall("Allow"):
                role_text = (allow_el.get("role") or "").strip()
                view_name = (allow_el.get("view") or "").strip()
                if not role_text or not view_name:
                    raise PsfError("<Allow> requires role and view attributes")
                policy.allow(role_text, view_name)
            registrar.set_policy(component_name, policy)
            report.policies.append(component_name)

    return report
