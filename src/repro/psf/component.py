"""PSF component model (Section 2.1).

"Components are modeled as entities that *implement* and *require* typed
interfaces, each of which is associated with a set of properties. ...
Such modeling of application and network behaviors permits the use of
type compatibility to define what constitutes a valid application
configuration: two components can be linked to each other if one
implements interfaces the other requires."

A :class:`ComponentType` is the registrar-visible description: the typed
ports, the placement constraints (expressed as dRBAC constraint queries,
§3.2), the component's dRBAC role for node-side authorization (§3.3), and
a factory producing instances at deployment time.  View-derived component
types (:func:`view_component`) are how views "enrich the set of
components available for dynamic deployment".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..drbac.model import Role
from ..drbac.query import Constraint
from ..views.spec import InterfaceMode, ViewSpec


@dataclass(frozen=True, slots=True)
class Port:
    """One typed interface port with its property map.

    For an *implemented* port, properties describe what the component
    delivers (e.g. ``{"encrypted": True}``); for a *required* port they
    describe what the component needs from its provider.
    """

    interface: str
    properties: dict = field(default_factory=dict)

    def satisfies(self, required: dict) -> bool:
        """Provider-side check: every required property must match.

        Boolean requirements demand equality; numeric requirements are
        minimums (a provider advertising more bandwidth than required
        still satisfies).
        """
        for key, needed in required.items():
            have = self.properties.get(key)
            if isinstance(needed, bool) or isinstance(have, bool):
                if have != needed:
                    return False
            elif isinstance(needed, (int, float)) and isinstance(have, (int, float)):
                if have < needed:
                    return False
            elif have != needed:
                return False
        return True


@dataclass
class ComponentType:
    """A reusable component as registered with PSF."""

    name: str
    implements: tuple[Port, ...] = ()
    requires: tuple[Port, ...] = ()
    component_role: Optional[Role] = None
    """The dRBAC role the component's instances prove to host nodes
    (Table 2's ``Mail.MailClient`` / ``Mail.Encryptor`` / ...)."""
    node_constraints: tuple[Constraint, ...] = ()
    """dRBAC queries every hosting node must satisfy ("is node a
    Mail.Node with Secure={true}?")."""
    cpu_demand: float = 0.0
    """CPU share the instance consumes; checked against the attenuated
    CPU attribute of the node's Executable-role proof."""
    deployable: bool = True
    """False for stateful singletons (the central mail server): the
    planner may link against running instances but never spawn new ones."""
    factory: Optional[Callable[..., Any]] = None
    view_spec: Optional[ViewSpec] = None
    """Set for view-derived components: VIG generates the class at
    deployment time (generation deferred to first use, §4.3)."""
    properties: dict = field(default_factory=dict)

    def implemented_port(self, interface: str) -> Optional[Port]:
        for port in self.implements:
            if port.interface == interface:
                return port
        return None

    def implements_interface(self, interface: str, required_props: dict) -> bool:
        port = self.implemented_port(interface)
        return port is not None and port.satisfies(required_props)

    @property
    def is_view(self) -> bool:
        return self.view_spec is not None

    def __str__(self) -> str:
        impl = ",".join(p.interface for p in self.implements)
        req = ",".join(p.interface for p in self.requires)
        return f"{self.name}[{impl}{' <- ' + req if req else ''}]"


def view_component(
    base: ComponentType,
    spec: ViewSpec,
    *,
    exported_interface_props: dict | None = None,
    cpu_demand: float | None = None,
    component_role: Optional[Role] = None,
    extra_constraints: tuple[Constraint, ...] = (),
) -> ComponentType:
    """Derive a deployable component type from a view specification.

    The view implements the spec's restricted interfaces; every interface
    the spec routes back to the original object (*rmi*/*switchboard*
    modes) becomes a *required* port, so the planner knows the view must
    be linked to an instance of the base component.  This is how "views
    increase the likelihood of the planner finding a component deployment
    in constrained environments" — the view's footprint (cpu, placement
    constraints) can be far lighter than the base component's.
    """
    implements = tuple(
        Port(interface=r.name, properties=dict(exported_interface_props or {}))
        for r in spec.interfaces
    )
    remote_ifaces = [
        r for r in spec.interfaces if r.mode is not InterfaceMode.LOCAL
    ]
    needs_origin = bool(remote_ifaces) or bool(spec.replicated_fields)
    requires: tuple[Port, ...] = ()
    if needs_origin:
        base_port_names = {p.interface for p in base.implements}
        wanted = [r.name for r in remote_ifaces if r.name in base_port_names]
        if not wanted and base.implements:
            # Pure data views still need the original for images; require
            # the base's first implemented interface as the linkage.
            wanted = [base.implements[0].interface]
        # A view's upstream edge must reach *its original object* (the
        # view is a view OF that component, not of a protocol chain), and
        # the synchronization traffic is sensitive by default, so insecure
        # paths force Switchboard.
        origin_props = {"privacy": True, "view_origin": base.name}
        requires = tuple(
            Port(interface=name, properties=dict(origin_props)) for name in wanted
        )
    return ComponentType(
        name=spec.name,
        implements=implements,
        requires=requires,
        component_role=component_role if component_role is not None else base.component_role,
        node_constraints=base.node_constraints + extra_constraints,
        cpu_demand=base.cpu_demand if cpu_demand is None else cpu_demand,
        factory=None,
        view_spec=spec,
        properties={"view_of": base.name},
    )
