"""Continuous adaptation: re-planning managed sessions (§2.1-§2.2).

"This dynamic model enables applications to flexibly and dynamically adapt
to changes in resource availability and client requests."

The :class:`AdaptationManager` closes the PSF loop the paper sketches: it
subscribes to the environment monitor, and whenever link conditions change
it re-plans every managed request.  If the feasible configuration changed
(different components, placements, or channel modes), the new plan is
deployed and the session's access handle is swapped; listeners observe
each adaptation event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import obs
from ..errors import PlanningError
from ..obs import names as metric_names
from .deployment import Deployment
from .framework import PSF
from .monitor import LinkReport, NodeReport
from .planner import DeploymentPlan, ServiceRequest


def plan_signature(plan: DeploymentPlan) -> tuple:
    """What makes two plans 'the same configuration'."""
    components = tuple(
        sorted((p.component.name, p.node) for p in plan.components)
    )
    links = tuple(
        sorted((l.interface, l.mode) for l in plan.links)
    )
    return (components, links)


@dataclass(slots=True)
class AdaptationEvent:
    """One re-planning outcome for one managed session."""

    trigger: str
    old_signature: tuple
    new_signature: Optional[tuple]
    redeployed: bool
    error: Optional[str] = None


@dataclass
class ManagedSession:
    """A service request kept satisfied across environment changes."""

    request: ServiceRequest
    plan: DeploymentPlan
    access: Any
    use_views: bool = True
    deployment: Optional[Deployment] = None
    needs_redeploy: bool = False
    """Set when this session's instances were evicted by a crash: the next
    re-plan must deploy even if the chosen configuration matches the old
    signature (the instances behind it no longer exist)."""
    history: list[AdaptationEvent] = field(default_factory=list)
    _listeners: list[Callable[[AdaptationEvent], None]] = field(default_factory=list)

    def on_adaptation(self, listener: Callable[[AdaptationEvent], None]) -> None:
        self._listeners.append(listener)

    def _record(self, event: AdaptationEvent) -> None:
        self.history.append(event)
        for listener in list(self._listeners):
            listener(event)


class AdaptationManager:
    """Subscribes to the monitor and keeps managed sessions adapted."""

    def __init__(self, psf: PSF) -> None:
        self.psf = psf
        self.sessions: list[ManagedSession] = []
        self.events_processed = 0
        psf.monitor.on_change(self._on_environment_change)
        psf.monitor.on_node_change(self._on_node_change)

    def manage(
        self, request: ServiceRequest, *, use_views: bool = True
    ) -> ManagedSession:
        """Plan + deploy a request and keep it adapted thereafter."""
        plan = self.psf.planner(use_views=use_views).plan(request)
        deployment = self.psf.deployer.deploy(plan)
        session = ManagedSession(
            request=request,
            plan=plan,
            access=deployment.client_access(),
            use_views=use_views,
            deployment=deployment,
        )
        self.sessions.append(session)
        return session

    # -- the adaptation loop -------------------------------------------------

    def _on_environment_change(self, kind: str, report: LinkReport) -> None:
        self.events_processed += 1
        trigger = f"{kind}:{report.a}<->{report.b}"
        for session in self.sessions:
            self._readapt(session, trigger)

    def _on_node_change(self, kind: str, report: NodeReport) -> None:
        """React to a host crash-stopping or returning.

        On ``node-down`` every session first evicts the instances it had
        on the dead host (their state is gone), which forces the follow-up
        re-plan to deploy replacements even if the planner picks a
        configuration with the old shape.  ``node-up`` just re-plans: the
        returned host may be a better placement again.
        """
        self.events_processed += 1
        trigger = f"{kind}:{report.name}"
        for session in self.sessions:
            if kind == "node-down" and session.deployment is not None:
                if session.deployment.evict_node(report.name):
                    session.needs_redeploy = True
            self._readapt(session, trigger)

    def _readapt(self, session: ManagedSession, trigger: str) -> None:
        old_signature = plan_signature(session.plan)
        obs.counter(metric_names.ADAPT_REPLANS).inc()
        try:
            new_plan = self.psf.planner(use_views=session.use_views).plan(
                session.request
            )
        except PlanningError as exc:
            obs.counter(metric_names.ADAPT_FAILURES).inc()
            session._record(
                AdaptationEvent(
                    trigger=trigger,
                    old_signature=old_signature,
                    new_signature=None,
                    redeployed=False,
                    error=str(exc),
                )
            )
            return
        new_signature = plan_signature(new_plan)
        if new_signature == old_signature and not session.needs_redeploy:
            session._record(
                AdaptationEvent(
                    trigger=trigger,
                    old_signature=old_signature,
                    new_signature=new_signature,
                    redeployed=False,
                )
            )
            return
        deployment = self.psf.deployer.deploy(new_plan)
        session.plan = new_plan
        session.deployment = deployment
        session.access = deployment.client_access()
        session.needs_redeploy = False
        obs.counter(metric_names.ADAPT_REDEPLOYMENTS).inc()
        session._record(
            AdaptationEvent(
                trigger=trigger,
                old_signature=old_signature,
                new_signature=new_signature,
                redeployed=True,
            )
        )
