"""Continuous adaptation: re-planning managed sessions (§2.1-§2.2).

"This dynamic model enables applications to flexibly and dynamically adapt
to changes in resource availability and client requests."

The :class:`AdaptationManager` closes the PSF loop the paper sketches: it
subscribes to the environment monitor, and whenever link conditions change
it re-plans every managed request.  If the feasible configuration changed
(different components, placements, or channel modes), the new plan is
deployed and the session's access handle is swapped; listeners observe
each adaptation event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import PlanningError
from .framework import PSF
from .monitor import LinkReport
from .planner import DeploymentPlan, ServiceRequest


def plan_signature(plan: DeploymentPlan) -> tuple:
    """What makes two plans 'the same configuration'."""
    components = tuple(
        sorted((p.component.name, p.node) for p in plan.components)
    )
    links = tuple(
        sorted((l.interface, l.mode) for l in plan.links)
    )
    return (components, links)


@dataclass(slots=True)
class AdaptationEvent:
    """One re-planning outcome for one managed session."""

    trigger: str
    old_signature: tuple
    new_signature: Optional[tuple]
    redeployed: bool
    error: Optional[str] = None


@dataclass
class ManagedSession:
    """A service request kept satisfied across environment changes."""

    request: ServiceRequest
    plan: DeploymentPlan
    access: Any
    use_views: bool = True
    history: list[AdaptationEvent] = field(default_factory=list)
    _listeners: list[Callable[[AdaptationEvent], None]] = field(default_factory=list)

    def on_adaptation(self, listener: Callable[[AdaptationEvent], None]) -> None:
        self._listeners.append(listener)

    def _record(self, event: AdaptationEvent) -> None:
        self.history.append(event)
        for listener in list(self._listeners):
            listener(event)


class AdaptationManager:
    """Subscribes to the monitor and keeps managed sessions adapted."""

    def __init__(self, psf: PSF) -> None:
        self.psf = psf
        self.sessions: list[ManagedSession] = []
        self.events_processed = 0
        psf.monitor.on_change(self._on_environment_change)

    def manage(
        self, request: ServiceRequest, *, use_views: bool = True
    ) -> ManagedSession:
        """Plan + deploy a request and keep it adapted thereafter."""
        plan = self.psf.planner(use_views=use_views).plan(request)
        deployment = self.psf.deployer.deploy(plan)
        session = ManagedSession(
            request=request,
            plan=plan,
            access=deployment.client_access(),
            use_views=use_views,
        )
        self.sessions.append(session)
        return session

    # -- the adaptation loop -------------------------------------------------

    def _on_environment_change(self, kind: str, report: LinkReport) -> None:
        self.events_processed += 1
        trigger = f"{kind}:{report.a}<->{report.b}"
        for session in self.sessions:
            self._readapt(session, trigger)

    def _readapt(self, session: ManagedSession, trigger: str) -> None:
        old_signature = plan_signature(session.plan)
        try:
            new_plan = self.psf.planner(use_views=session.use_views).plan(
                session.request
            )
        except PlanningError as exc:
            session._record(
                AdaptationEvent(
                    trigger=trigger,
                    old_signature=old_signature,
                    new_signature=None,
                    redeployed=False,
                    error=str(exc),
                )
            )
            return
        new_signature = plan_signature(new_plan)
        if new_signature == old_signature:
            session._record(
                AdaptationEvent(
                    trigger=trigger,
                    old_signature=old_signature,
                    new_signature=new_signature,
                    redeployed=False,
                )
            )
            return
        deployment = self.psf.deployer.deploy(new_plan)
        session.plan = new_plan
        session.access = deployment.client_access()
        session._record(
            AdaptationEvent(
                trigger=trigger,
                old_signature=old_signature,
                new_signature=new_signature,
                redeployed=True,
            )
        )
