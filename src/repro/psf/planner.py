"""Deployment planning (§2.1).

"The *planning* module is responsible for selecting amongst valid
application configurations the [one that satisfies] the level of service
requested for the deployment while factoring in application and
network-level constraints. ... Our current planner, Sekitei, combines
regression and progression techniques from classical AI planning."

This planner performs regression search from the client's goal interface:

* **Type compatibility** drives linkage — a provider is any existing
  instance or deployable component whose implemented port satisfies the
  required interface properties (§2.1).
* **Edge admissibility** enforces network QoS per channel: bandwidth,
  latency, and privacy.  A channel carrying unencrypted payload across an
  insecure link is only admissible over Switchboard; bulk (``rmi``)
  channels across insecure links need an encrypted payload — which is what
  forces the planner to synthesize encryptor/decryptor chains (§2.2).
* **Authorization** is delegated to dRBAC (§3.3): hosting nodes must
  satisfy the component's node constraints ("is node a Mail.Node with
  Secure={true}?"), and the node's domain Guard must grant the component's
  role a CPU budget at least the component's demand.
* **Views** enrich the searchable component set; ``use_views=False``
  ablates them for the E-PLAN experiment.

Candidate providers are ordered progression-style (existing instances
first, then components by require-count, then nodes by proximity to the
consumer), so the first feasible plan found is also a cheap one.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from .. import obs
from ..errors import PlanningError
from ..net.simnet import Network
from ..errors import NetworkError
from ..obs import names as metric_names
from .component import ComponentType, Port
from .guard import Guard
from .registrar import Registrar

_instance_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class EdgeRequirement:
    """QoS demanded of one consumer→provider channel."""

    privacy: bool = False
    min_bandwidth_bps: float = 0.0
    max_latency_s: float = math.inf
    channel: str = "any"
    """"any" lets the planner pick Switchboard when privacy demands it;
    "rmi" pins a bulk/plaintext channel; "switchboard" pins a secure one."""
    view_origin: str = ""
    """When set, only instances of that component type may provide this
    edge — a view must be linked to its original object."""

    @staticmethod
    def from_port(port: Port) -> "EdgeRequirement":
        props = port.properties
        return EdgeRequirement(
            privacy=bool(props.get("privacy", False)),
            min_bandwidth_bps=float(props.get("min_bandwidth", 0.0)),
            max_latency_s=float(props.get("max_latency", math.inf)),
            channel=str(props.get("channel", "any")),
            view_origin=str(props.get("view_origin", "")),
        )

    def key(self) -> tuple:
        return (
            self.privacy,
            self.min_bandwidth_bps,
            self.max_latency_s,
            self.channel,
            self.view_origin,
        )


@dataclass(frozen=True, slots=True)
class ServiceRequest:
    """A client's demand: an interface, delivered at a node, with QoS."""

    client: str
    client_node: str
    interface: str
    required_props: tuple[tuple[str, object], ...] = ()
    qos: EdgeRequirement = field(default_factory=EdgeRequirement)

    def props_dict(self) -> dict:
        return dict(self.required_props)


@dataclass(frozen=True, slots=True)
class ExistingInstance:
    """An already-running component the planner may link against."""

    name: str
    node: str
    component: ComponentType


@dataclass(slots=True)
class PlannedComponent:
    instance_id: str
    component: ComponentType
    node: str


@dataclass(slots=True)
class PlannedLink:
    consumer: str
    provider: str
    interface: str
    path: tuple[str, ...]
    mode: str
    """"local" | "rmi" | "switchboard"."""


@dataclass(slots=True)
class DeploymentPlan:
    request: ServiceRequest
    components: list[PlannedComponent]
    links: list[PlannedLink]
    entry_instance: str
    """Instance id / existing-instance name the client binds to."""
    goals_expanded: int = 0
    candidates_examined: int = 0

    def deployed_names(self) -> list[str]:
        return [p.component.name for p in self.components]

    def __str__(self) -> str:
        rows = [
            f"  {p.instance_id}: {p.component.name} @ {p.node}" for p in self.components
        ]
        rows += [
            f"  {l.consumer} --{l.interface}/{l.mode}--> {l.provider}"
            for l in self.links
        ]
        return "plan:\n" + "\n".join(rows)


@dataclass(slots=True)
class _EnumCounter:
    """Bounds the work of exhaustive plan enumeration."""

    limit: int
    produced: int = 0

    def tick(self) -> None:
        self.produced += 1

    @property
    def exhausted(self) -> bool:
        return self.produced >= self.limit * 8


@dataclass(slots=True)
class _SearchState:
    components: list[PlannedComponent] = field(default_factory=list)
    links: list[PlannedLink] = field(default_factory=list)
    goals_expanded: int = 0
    candidates_examined: int = 0
    backtracks: int = 0


class Planner:
    """Regression planner over the registered component set."""

    def __init__(
        self,
        registrar: Registrar,
        network: Network,
        guards: dict[str, Guard],
        *,
        existing: list[ExistingInstance] | None = None,
        use_views: bool = True,
        max_depth: int = 6,
    ) -> None:
        self.registrar = registrar
        self.network = network
        self.guards = guards
        self.existing = list(existing or [])
        self.use_views = use_views
        self.max_depth = max_depth

    # -- public API --------------------------------------------------------

    def plan(
        self, request: ServiceRequest, *, optimize: bool = False
    ) -> DeploymentPlan:
        """Find a feasible deployment or raise :class:`PlanningError`.

        With ``optimize=True`` the planner enumerates feasible
        configurations (bounded by ``enumerate_plans``'s limit) and picks
        the cheapest by :meth:`plan_cost` instead of returning the first
        feasible one — the Sekitei-flavoured quality/speed trade-off
        ablated by ``benchmarks/bench_planner_quality.py``.
        """
        obs.counter(metric_names.PLAN_ATTEMPTS).inc()
        with obs.span(
            "psf.plan", interface=request.interface, optimize=optimize
        ):
            try:
                found = self._plan(request, optimize=optimize)
            except PlanningError:
                obs.counter(metric_names.PLAN_FAILURES).inc()
                raise
        obs.counter(metric_names.PLAN_SUCCESS).inc()
        return found

    def _plan(
        self, request: ServiceRequest, *, optimize: bool
    ) -> DeploymentPlan:
        if optimize:
            candidates = self.enumerate_plans(request)
            if not candidates:
                raise PlanningError(
                    f"no deployment delivers {request.interface} at "
                    f"{request.client_node} under {request.qos}"
                )
            return min(candidates, key=self.plan_cost)
        state = _SearchState()
        entry = self._solve(
            interface=request.interface,
            required_props=request.props_dict(),
            edge=request.qos,
            consumer="client",
            consumer_node=request.client_node,
            state=state,
            depth=0,
            stack=frozenset(),
        )
        if obs.is_enabled():
            obs.histogram(metric_names.PLAN_GOALS_EXPANDED).observe(state.goals_expanded)
            obs.histogram(metric_names.PLAN_CANDIDATES).observe(state.candidates_examined)
            obs.histogram(metric_names.PLAN_BACKTRACKS).observe(state.backtracks)
        if entry is None:
            raise PlanningError(
                f"no deployment delivers {request.interface} at "
                f"{request.client_node} under {request.qos}"
            )
        return DeploymentPlan(
            request=request,
            components=state.components,
            links=state.links,
            entry_instance=entry,
            goals_expanded=state.goals_expanded,
            candidates_examined=state.candidates_examined,
        )

    def can_plan(self, request: ServiceRequest) -> bool:
        try:
            self.plan(request)
            return True
        except PlanningError:
            return False

    # -- plan quality ------------------------------------------------------

    def plan_cost(self, plan: DeploymentPlan) -> float:
        """Deployment cost: component instantiations dominate, channel
        path delay breaks ties (1 component ≙ 10 ms of path delay)."""
        delay = 0.0
        for link in plan.links:
            if len(link.path) > 1:
                delay += self.network.path_delay(list(link.path), 1024)
        return 0.010 * len(plan.components) + delay

    def enumerate_plans(
        self, request: ServiceRequest, *, limit: int = 64
    ) -> list[DeploymentPlan]:
        """Enumerate up to ``limit`` feasible deployments for a request.

        Exhaustive over the same option space :meth:`plan` searches, but
        collecting every completion instead of stopping at the first.
        Completion counts are bounded, so the enumeration stays tractable
        at scenario scales; the limit guards pathological fan-outs.
        """
        plans: list[DeploymentPlan] = []
        counter = _EnumCounter(limit=limit)
        for components, links, _entry in self._solve_all(
            interface=request.interface,
            required_props=request.props_dict(),
            edge=request.qos,
            consumer="client",
            consumer_node=request.client_node,
            depth=0,
            stack=frozenset(),
            counter=counter,
        ):
            plans.append(
                DeploymentPlan(
                    request=request,
                    components=list(components),
                    links=list(links),
                    entry_instance=links[0].provider if links else "",
                )
            )
            if len(plans) >= limit:
                break
        return plans

    def _solve_all(
        self,
        *,
        interface: str,
        required_props: dict,
        edge: EdgeRequirement,
        consumer: str,
        consumer_node: str,
        depth: int,
        stack: frozenset,
        counter: "_EnumCounter",
    ):
        """Yield every (components, links, provider) completion of a goal.

        The yielded component/link lists are immutable tuples representing
        the whole sub-tree for this goal, ready to be concatenated by the
        caller.  The first link in ``links`` is always the consumer's edge.
        """
        if depth > self.max_depth or counter.exhausted:
            return
        goal_key = (interface, consumer_node, edge.key())
        if goal_key in stack:
            return
        stack = stack | {goal_key}

        for instance in self._existing_by_proximity(consumer_node):
            if edge.view_origin and instance.component.name != edge.view_origin:
                continue
            port = instance.component.implemented_port(interface)
            if port is None or not port.satisfies(required_props):
                continue
            mode = self._admissible_mode(consumer_node, instance.node, port, edge)
            if mode is None:
                continue
            link = PlannedLink(
                consumer=consumer,
                provider=instance.name,
                interface=interface,
                path=tuple(self._path(consumer_node, instance.node)),
                mode=mode,
            )
            counter.tick()
            yield (), (link,), instance.name

        for component in self._deployable_providers(interface, required_props):
            if edge.view_origin and component.name != edge.view_origin:
                continue
            port = component.implemented_port(interface)
            assert port is not None
            for node in self._candidate_nodes(consumer_node, component):
                if counter.exhausted:
                    return
                mode = self._admissible_mode(consumer_node, node, port, edge)
                if mode is None:
                    continue
                if not self._node_authorizes(component, node):
                    continue
                instance_id = f"p{next(_instance_counter)}"
                placed = PlannedComponent(
                    instance_id=instance_id, component=component, node=node
                )
                entry_link = PlannedLink(
                    consumer=consumer,
                    provider=instance_id,
                    interface=interface,
                    path=tuple(self._path(consumer_node, node)),
                    mode=mode,
                )
                sub_edges = []
                for requirement in component.requires:
                    sub_edge = EdgeRequirement.from_port(requirement)
                    if component.properties.get("bandwidth_transparent"):
                        sub_edge = EdgeRequirement(
                            privacy=sub_edge.privacy,
                            min_bandwidth_bps=max(
                                sub_edge.min_bandwidth_bps, edge.min_bandwidth_bps
                            ),
                            max_latency_s=sub_edge.max_latency_s,
                            channel=sub_edge.channel,
                            view_origin=sub_edge.view_origin,
                        )
                    sub_edges.append((requirement, sub_edge))
                for sub_components, sub_links in self._satisfy_all(
                    sub_edges, instance_id, node, depth, stack, counter
                ):
                    counter.tick()
                    yield (
                        (placed,) + sub_components,
                        (entry_link,) + sub_links,
                        instance_id,
                    )

    def _satisfy_all(
        self,
        requirements: list,
        instance_id: str,
        node: str,
        depth: int,
        stack: frozenset,
        counter: "_EnumCounter",
    ):
        """Cartesian product of completions across required ports."""
        if not requirements:
            yield (), ()
            return
        (requirement, sub_edge), rest = requirements[0], requirements[1:]
        for components, links, _provider in self._solve_all(
            interface=requirement.interface,
            required_props={},
            edge=sub_edge,
            consumer=instance_id,
            consumer_node=node,
            depth=depth + 1,
            stack=stack,
            counter=counter,
        ):
            for rest_components, rest_links in self._satisfy_all(
                rest, instance_id, node, depth, stack, counter
            ):
                yield components + rest_components, links + rest_links

    # -- goal solving -----------------------------------------------------------

    def _solve(
        self,
        *,
        interface: str,
        required_props: dict,
        edge: EdgeRequirement,
        consumer: str,
        consumer_node: str,
        state: _SearchState,
        depth: int,
        stack: frozenset,
    ) -> Optional[str]:
        """Satisfy one goal; returns the provider instance id, extending
        ``state`` in place, or None when infeasible."""
        if depth > self.max_depth:
            return None
        goal_key = (interface, consumer_node, edge.key())
        if goal_key in stack:
            return None  # would recurse through the same goal
        stack = stack | {goal_key}
        state.goals_expanded += 1

        # Option A (progression flavour): link to an existing instance.
        for instance in self._existing_by_proximity(consumer_node):
            if edge.view_origin and instance.component.name != edge.view_origin:
                continue
            port = instance.component.implemented_port(interface)
            if port is None or not port.satisfies(required_props):
                continue
            state.candidates_examined += 1
            mode = self._admissible_mode(consumer_node, instance.node, port, edge)
            if mode is None:
                continue
            state.links.append(
                PlannedLink(
                    consumer=consumer,
                    provider=instance.name,
                    interface=interface,
                    path=tuple(self._path(consumer_node, instance.node)),
                    mode=mode,
                )
            )
            return instance.name

        # Option B (regression): deploy a component that implements the goal.
        for component in self._deployable_providers(interface, required_props):
            if edge.view_origin and component.name != edge.view_origin:
                continue
            port = component.implemented_port(interface)
            assert port is not None
            for node in self._candidate_nodes(consumer_node, component):
                state.candidates_examined += 1
                mode = self._admissible_mode(consumer_node, node, port, edge)
                if mode is None:
                    continue
                if not self._node_authorizes(component, node):
                    continue
                # Tentatively place the component, then regress its needs.
                checkpoint_c = len(state.components)
                checkpoint_l = len(state.links)
                instance_id = f"p{next(_instance_counter)}"
                state.components.append(
                    PlannedComponent(
                        instance_id=instance_id, component=component, node=node
                    )
                )
                state.links.append(
                    PlannedLink(
                        consumer=consumer,
                        provider=instance_id,
                        interface=interface,
                        path=tuple(self._path(consumer_node, node)),
                        mode=mode,
                    )
                )
                satisfied = True
                for requirement in component.requires:
                    sub_edge = EdgeRequirement.from_port(requirement)
                    # Bandwidth-transparent relays (encryptor/decryptor)
                    # pass the full data stream through: their upstream
                    # edge inherits the consumer's bandwidth demand.
                    # Caches absorb it (they serve from local state).
                    if component.properties.get("bandwidth_transparent"):
                        sub_edge = EdgeRequirement(
                            privacy=sub_edge.privacy,
                            min_bandwidth_bps=max(
                                sub_edge.min_bandwidth_bps, edge.min_bandwidth_bps
                            ),
                            max_latency_s=sub_edge.max_latency_s,
                            channel=sub_edge.channel,
                            view_origin=sub_edge.view_origin,
                        )
                    provider = self._solve(
                        interface=requirement.interface,
                        required_props={},
                        edge=sub_edge,
                        consumer=instance_id,
                        consumer_node=node,
                        state=state,
                        depth=depth + 1,
                        stack=stack,
                    )
                    if provider is None:
                        satisfied = False
                        break
                if satisfied:
                    return instance_id
                state.backtracks += 1
                del state.components[checkpoint_c:]
                del state.links[checkpoint_l:]
        return None

    # -- candidate enumeration ------------------------------------------------------

    def _deployable_providers(
        self, interface: str, required_props: dict
    ) -> list[ComponentType]:
        providers = [
            c
            for c in self.registrar.providers_of(interface, required_props)
            if c.deployable and (self.use_views or not c.is_view)
        ]
        # Fewer requirements first: cheaper subtrees get explored first.
        providers.sort(key=lambda c: (len(c.requires), c.cpu_demand, c.name))
        return providers

    def _existing_by_proximity(self, consumer_node: str) -> list[ExistingInstance]:
        def distance(instance: ExistingInstance) -> float:
            try:
                path = self.network.shortest_path(consumer_node, instance.node)
            except NetworkError:
                return math.inf
            return self.network.path_delay(path, 1024)

        # An instance stranded on a crashed host is not reusable — without
        # this filter the "local" fast path could bind a consumer to a dead
        # co-resident provider.
        alive = [i for i in self.existing if self.network.node(i.node).up]
        return sorted(alive, key=distance)

    def _candidate_nodes(
        self, consumer_node: str, component: ComponentType | None = None
    ) -> list[str]:
        """Nodes ordered by proximity to the consumer, breaking ties by
        proximity to existing providers of the component's requirements —
        so relays (encryptors) gravitate toward the services they wrap."""
        upstream_nodes: list[str] = []
        if component is not None and component.requires:
            wanted = {p.interface for p in component.requires}
            upstream_nodes = [
                inst.node
                for inst in self.existing
                if any(inst.component.implemented_port(i) for i in wanted)
            ]

        def pair_delay(a: str, b: str) -> float:
            try:
                path = self.network.shortest_path(a, b)
            except NetworkError:
                return math.inf
            return self.network.path_delay(path, 1024)

        def key(name: str) -> tuple[float, float]:
            to_consumer = pair_delay(consumer_node, name)
            to_upstream = min(
                (pair_delay(name, up) for up in upstream_nodes), default=0.0
            )
            return (to_consumer + to_upstream, to_consumer)

        # Crash-stopped hosts can neither run components nor be reached;
        # excluding them here is what makes crash-triggered re-planning
        # land the replacement somewhere alive.
        names = [n.name for n in self.network.nodes() if n.up]
        names.sort(key=key)
        return names

    def _path(self, a: str, b: str) -> list[str]:
        if a == b:
            return [a]
        return self.network.shortest_path(a, b)

    # -- admissibility -----------------------------------------------------------------

    def _admissible_mode(
        self, consumer_node: str, provider_node: str, port: Port, edge: EdgeRequirement
    ) -> Optional[str]:
        """Pick a channel mode satisfying the edge QoS, or None."""
        if consumer_node == provider_node:
            return "local"
        try:
            path = self.network.shortest_path(consumer_node, provider_node)
        except NetworkError:
            return None
        if self.network.min_bandwidth(path) < edge.min_bandwidth_bps:
            return None
        if self.network.path_delay(path, 1024) > edge.max_latency_s:
            return None
        secure_path = self.network.path_is_secure(path)
        payload_encrypted = bool(port.properties.get("encrypted", False))
        if edge.privacy and not secure_path and not payload_encrypted:
            # Plain payload over an insecure path: only Switchboard saves it.
            if edge.channel in ("any", "switchboard"):
                return "switchboard"
            return None
        if edge.channel == "switchboard":
            return "switchboard"
        return "rmi"

    # -- authorization (§3.3) -------------------------------------------------------------

    def _node_authorizes(self, component: ComponentType, node_name: str) -> bool:
        node = self.network.node(node_name)
        if not node.up:
            return False
        guard = self.guards.get(node.domain)
        if guard is None:
            return False
        # (i) the node maps onto the application's required properties.
        for constraint in component.node_constraints:
            if not guard.node_satisfies(node_name, constraint):
                return False
        # (ii) the node's domain accepts the component, with enough CPU.
        if component.component_role is not None:
            budget = guard.component_cpu_budget(component.component_role)
            if budget is None or budget < component.cpu_demand:
                return False
        return True
