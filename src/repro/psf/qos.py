"""Levels of service (§2.2).

"The mail application offers different levels of QoS, where each level is
defined by the number of processed requests and the message privacy.  PSF
ensures that clients receive the required level of service by assembling
and deploying components. ... the planning module takes into consideration
the client credentials ... to generate a deployment that achieves the
desired level of service."

A :class:`ServiceLevel` names one QoS tier; a :class:`QosPolicy` maps
dRBAC roles onto tiers the same way Table 4 maps roles onto views, so a
client's *provable credentials* select the QoS its deployments must meet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..drbac.model import EntityRef, Role
from .planner import EdgeRequirement, ServiceRequest


@dataclass(frozen=True, slots=True)
class ServiceLevel:
    """One named QoS tier."""

    name: str
    privacy: bool = False
    min_bandwidth_bps: float = 0.0
    max_latency_s: float = math.inf
    channel: str = "any"

    def edge_requirement(self) -> EdgeRequirement:
        return EdgeRequirement(
            privacy=self.privacy,
            min_bandwidth_bps=self.min_bandwidth_bps,
            max_latency_s=self.max_latency_s,
            channel=self.channel,
        )


@dataclass(frozen=True, slots=True)
class QosRule:
    role: Optional[Role]
    level: ServiceLevel

    @property
    def is_default(self) -> bool:
        return self.role is None


class QosPolicy:
    """Ordered role→service-level rules; first provable role wins."""

    def __init__(self, service: str) -> None:
        self.service = service
        self._rules: list[QosRule] = []

    def offer(self, role: Role | str | None, level: ServiceLevel) -> "QosPolicy":
        """Append a tier; ``role=None`` / "others" is the floor tier."""
        if isinstance(role, str):
            role = None if role.lower() == "others" else Role.parse(role)
        if self._rules and self._rules[-1].is_default:
            raise ValueError(
                f"QoS policy for {self.service}: no rules may follow the "
                f"'others' default"
            )
        self._rules.append(QosRule(role=role, level=level))
        return self

    def rules(self) -> list[QosRule]:
        return list(self._rules)

    def resolve(
        self,
        client: str,
        engine: DrbacEngine,
        credentials: Iterable[Delegation] | None = None,
    ) -> Optional[ServiceLevel]:
        """The best tier the client's credentials prove."""
        presented = list(credentials) if credentials is not None else None
        for rule in self._rules:
            if rule.is_default:
                return rule.level
            assert rule.role is not None
            pool = presented
            if pool is None:
                pool = engine.repository.collect(EntityRef(client), rule.role)
            else:
                harvested = engine.repository.collect(EntityRef(client), rule.role)
                merged = {c.credential_id: c for c in harvested}
                for cred in pool:
                    merged[cred.credential_id] = cred
                pool = list(merged.values())
            if engine.find_proof(EntityRef(client), rule.role, pool) is not None:
                return rule.level
        return None

    def request_for(
        self,
        client: str,
        client_node: str,
        interface: str,
        engine: DrbacEngine,
        credentials: Iterable[Delegation] | None = None,
    ) -> ServiceRequest:
        """Build the ServiceRequest for the client's provable tier.

        Raises :class:`~repro.errors.AuthorizationError` when no tier
        (not even a default) admits the client.
        """
        level = self.resolve(client, engine, credentials)
        if level is None:
            from ..errors import AuthorizationError

            raise AuthorizationError(
                f"client {client!r} qualifies for no service level of "
                f"{self.service!r}"
            )
        return ServiceRequest(
            client=client,
            client_node=client_node,
            interface=interface,
            qos=level.edge_requirement(),
        )
