"""The PSF registrar: where applications register their pieces (§2.1, §5).

"Most dynamic component-based frameworks rely on an application
registration step, where complete specifications of the application
components are provided to permit automated deployment planning."

The registrar tracks component types (including view-derived ones), the
interface registry shared with VIG, view specifications per base
component, and the per-component view access policies (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import PsfError
from ..views.acl import ViewAccessPolicy
from ..views.interfaces import InterfaceDef, InterfaceRegistry
from ..views.spec import ViewSpec
from .component import ComponentType, view_component


class Registrar:
    """Component, interface, and view-spec registry for one PSF instance."""

    def __init__(self, interfaces: InterfaceRegistry | None = None) -> None:
        self.interfaces = interfaces or InterfaceRegistry()
        self._components: dict[str, ComponentType] = {}
        self._view_specs: dict[str, ViewSpec] = {}
        self._policies: dict[str, ViewAccessPolicy] = {}
        self._classes: dict[str, type] = {}

    # -- components --------------------------------------------------------

    def register_component(
        self, component: ComponentType, *, cls: type | None = None
    ) -> ComponentType:
        if component.name in self._components:
            raise PsfError(f"component {component.name!r} already registered")
        self._components[component.name] = component
        if cls is not None:
            self._classes[component.name] = cls
        return component

    def component(self, name: str) -> ComponentType:
        try:
            return self._components[name]
        except KeyError:
            raise PsfError(f"unknown component {name!r}") from None

    def components(self) -> list[ComponentType]:
        return list(self._components.values())

    def component_class(self, name: str) -> Optional[type]:
        return self._classes.get(name)

    def providers_of(self, interface: str, required_props: dict | None = None) -> list[ComponentType]:
        """Components whose implemented ports satisfy the requirement."""
        required_props = required_props or {}
        return [
            c
            for c in self._components.values()
            if c.implements_interface(interface, required_props)
        ]

    # -- views ----------------------------------------------------------------

    def register_view(
        self,
        base_name: str,
        spec: ViewSpec,
        *,
        exported_interface_props: dict | None = None,
        cpu_demand: float | None = None,
        component_role=None,
    ) -> ComponentType:
        """Register a view of an existing component as a deployable type."""
        base = self.component(base_name)
        derived = view_component(
            base,
            spec,
            exported_interface_props=exported_interface_props,
            cpu_demand=cpu_demand,
            component_role=component_role,
        )
        self._view_specs[spec.name] = spec
        return self.register_component(derived)

    def view_spec(self, name: str) -> ViewSpec:
        try:
            return self._view_specs[name]
        except KeyError:
            raise PsfError(f"unknown view spec {name!r}") from None

    def view_specs(self) -> list[ViewSpec]:
        return list(self._view_specs.values())

    # -- access policies (Table 4) -----------------------------------------------

    def set_policy(self, component_name: str, policy: ViewAccessPolicy) -> None:
        self.component(component_name)  # must exist
        self._policies[component_name] = policy

    def policy(self, component_name: str) -> Optional[ViewAccessPolicy]:
        return self._policies.get(component_name)

    # -- interfaces -----------------------------------------------------------------

    def register_interface(self, interface: InterfaceDef) -> InterfaceDef:
        return self.interfaces.register(interface)

    def register_interface_class(self, cls: type, name: str | None = None) -> InterfaceDef:
        return self.interfaces.register_class(cls, name)
