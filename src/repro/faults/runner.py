"""The chaos harness: one deterministic fault-and-recovery run.

:class:`ChaosRunner` builds the full mail-scenario world, keeps two
managed sessions alive through a seeded storm of faults, and *verifies*
recovery instead of assuming it: after every fault window it probes the
service end-to-end, mid-fault it exercises the retry and shard-failover
paths, and after a revocation storm it checks deny → re-issue → allow.
The run ends with an invariant sweep (no hanging calls, sessions on live
hosts, view/image coherence) and produces a :class:`ChaosReport` whose
JSON is byte-identical for identical seeds.

Crash semantics — this harness enables repository replication up front,
so the injector's honest ``NODE_CRASH`` heal (rebuild the failed shard
from its warm replica, see
:meth:`~repro.drbac.repository.DistributedRepository.recover_shard`)
restores exactly the content the legacy lossless heal pretended had
survived; the crash probes therefore verify failover *and* rebuild.
Full WAL-backed crash-restart (``NODE_CRASH_RESTART``) is exercised by
the simulation tester and ``bench-recovery``, which own
:class:`~repro.durable.node.DurableNode` worlds.

Determinism notes — the chaos world deliberately avoids Switchboard
channels: their Diffie–Hellman handshakes draw from ``secrets`` and
cannot be seeded, so the two managed sessions here use only ``local``
and ``rmi`` modes (the Encryptor's sealed blobs have *fixed sizes*, so
frame timing stays reproducible).  Faults are referenced by stable
names — Table 2 credential numbers, node and link names — never by
generated ids, so a report never leaks a process-global counter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import obs
from ..errors import FaultError, NetworkError, SwitchboardError
from ..hermetic import hermetic_counters
from ..obs import names as metric_names
from .chaos import generate_chaos_plan
from .injector import FaultInjector
from .invariants import (
    InvariantSuite,
    channels_settled,
    pending_calls_settled,
    sessions_on_live_nodes,
    views_coherent,
)
from .plan import FaultEvent, FaultKind, FaultPlan
from .retry import RetryPolicy

#: WAN links of the mail topology: the hostile part of the environment.
WAN_LINKS = (("ny-gw", "sd-gw"), ("ny-gw", "se-gw"), ("sd-gw", "se-gw"))

#: Table 2 credential numbers eligible for revocation storms, with the
#: subject / role / re-issuing guard needed to verify deny → re-issue → allow.
STORM_CREDENTIALS = ("1", "11")

# Backwards-compatible alias: the guard moved to repro.hermetic so the
# load generator, simulation tester, and test fixtures share one copy.
_hermetic_counters = hermetic_counters


_RECOVERED_COUNTERS = {
    "link": metric_names.FAULTS_RECOVERED_LINK,
    "partition": metric_names.FAULTS_RECOVERED_PARTITION,
    "node": metric_names.FAULTS_RECOVERED_NODE,
    "latency": metric_names.FAULTS_RECOVERED_LATENCY,
    "loss": metric_names.FAULTS_RECOVERED_LOSS,
    "revocation": metric_names.FAULTS_RECOVERED_REVOCATION,
}


@dataclass(slots=True)
class ProbeResult:
    """One end-to-end verification attempt tied to one fault event."""

    at: float
    fault: str
    fault_at: float
    fault_class: str
    kind: str
    """"post-heal" | "mid-fault-retry" | "mid-fault" | "shard-failover" |
    "deny-reissue"."""
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "fault": self.fault,
            "fault_at": self.fault_at,
            "fault_class": self.fault_class,
            "kind": self.kind,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass(slots=True)
class ChaosReport:
    """Everything one chaos run produced, JSON-stable across runs."""

    seed: int
    duration: float
    horizon: float
    events: list[dict]
    injections: list[dict]
    probes: list[dict]
    recoveries: dict[str, int]
    violations: list[dict]
    metrics: dict
    flight: dict | None = None
    """Flight-recorder dump captured iff the invariant sweep failed;
    ``None`` on clean runs keeps the JSON byte-stable."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "horizon": self.horizon,
            "events": self.events,
            "injections": self.injections,
            "probes": self.probes,
            "recoveries": self.recoveries,
            "violations": self.violations,
            "metrics": self.metrics,
            "flight": self.flight,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"chaos seed={self.seed} duration={self.duration}s "
            f"({len(self.events)} faults, horizon {self.horizon:.2f}s)",
        ]
        for cls in sorted(self.recoveries):
            lines.append(f"  recovered[{cls}]: {self.recoveries[cls]}")
        failed = [p for p in self.probes if not p["ok"]]
        lines.append(f"  probes: {len(self.probes)} ({len(failed)} failed)")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS: {len(self.violations)}")
            for violation in self.violations:
                lines.append(f"    - {violation['invariant']}: {violation['detail']}")
        else:
            lines.append("  invariants: all hold")
        return "\n".join(lines)


@dataclass(slots=True)
class _Probe:
    at: float
    order: int
    event: FaultEvent
    kind: str
    fn: Callable[[], tuple[bool, str]]
    counts_recovery: bool


class ChaosRunner:
    """Deterministic chaos run over the three-site mail world.

    Two sessions are kept adapted throughout:

    * **pair** — Bob on ``sd-pc1`` with a privacy pipeline
      (Decryptor local, Encryptor next to the server): its rmi hop rides
      the WAN links that link faults, partitions, latency spikes, and
      loss bursts target.
    * **cache** — Alice on ``ny-pc1`` demanding more bandwidth than any
      link offers, forcing a ViewMailServer onto her own host: node
      crashes target that host, exercising eviction → re-plan →
      redeploy, and the view gives the coherence invariant teeth.
    """

    #: settle time after a heal before the post-heal probe fires — enough
    #: for queued retries/reroutes to drain over the slowest WAN path.
    SETTLE = 0.5

    def __init__(
        self,
        *,
        seed: int,
        duration: float,
        intensity: float = 1.0,
        key_bits: int = 512,
        key_store: Any = None,
        batching: bool = False,
    ) -> None:
        if duration <= 0:
            raise FaultError(f"chaos duration must be positive, got {duration}")
        self.seed = seed
        self.duration = float(duration)
        self.intensity = intensity
        self.key_bits = key_bits
        # Key material never crosses the chaos world's wire, so sharing a
        # pre-built KeyStore across runs is determinism-safe and skips the
        # dominant RSA-generation cost (useful in tests).
        self.key_store = key_store
        self.batching = batching
        """Run the storm with transport frame batching enabled — the
        integration proof that coalesced delivery survives link-down
        mid-batch without hanging RPCs or stale authorization."""

    # -- entry point ---------------------------------------------------------

    def run(self) -> ChaosReport:
        with hermetic_counters(), obs.scoped(enabled=True):
            return self._run()

    # -- the run -------------------------------------------------------------

    def _run(self) -> ChaosReport:
        from ..mail import build_scenario
        from ..psf import EdgeRequirement, ServiceRequest
        from ..psf.adaptation import AdaptationManager

        if self.key_store is not None:
            scenario = build_scenario(key_store=self.key_store)
        else:
            scenario = build_scenario(key_bits=self.key_bits)
        psf = scenario.psf
        scheduler = psf.scheduler
        obs.set_tracer_clock(scheduler)
        if self.batching:
            psf.transport.configure_batching(max_frames=8, window=0.002)
        server = scenario.server
        server.sendMail(
            {"recipient": "Alice", "sender": "Bob", "body": "pre-chaos baseline"}
        )
        self._expected_mail = server.fetchMail("Alice")

        engine = psf.engine
        engine.repository.enable_replication()

        manager = AdaptationManager(psf)
        pair = manager.manage(
            ServiceRequest(
                client="Bob",
                client_node="sd-pc1",
                interface="MailI",
                qos=EdgeRequirement(privacy=True, channel="rmi"),
            ),
            use_views=False,
        )
        cache = manager.manage(
            ServiceRequest(
                client="Alice",
                client_node="ny-pc1",
                interface="MailI",
                # More than any link carries: the planner's only feasible
                # answer is a view local to the client.
                qos=EdgeRequirement(min_bandwidth_bps=2e9),
            ),
            use_views=True,
        )
        self._scenario = scenario
        self._scheduler = scheduler
        self._pair = pair
        self._cache = cache

        crash_nodes = sorted(
            {p.node for p in cache.plan.components}
            - {"ny-server", pair.request.client_node}
        )
        if not crash_nodes:
            raise FaultError("chaos world has no crash-eligible node")

        plan = generate_chaos_plan(
            seed=self.seed,
            duration=self.duration,
            links=WAN_LINKS,
            domains=("SD",),
            crash_nodes=tuple(crash_nodes),
            credential_ids=STORM_CREDENTIALS,
            intensity=self.intensity,
        )

        # Live credential objects per Table 2 number; refreshed on
        # re-issue so a later storm revokes the credential actually in use.
        self._creds = {
            "1": scenario.credentials[1],
            "11": scenario.credentials[11],
        }
        self._reissue = {
            "1": lambda: scenario.ny_guard.certify_member("Alice"),
            "11": lambda: scenario.sd_guard.certify_member("Bob"),
        }
        self._storm_subjects = {
            "1": ("Alice", scenario.ny_guard.role("Member")),
            "11": ("Bob", scenario.sd_guard.role("Member")),
        }

        injector = FaultInjector(
            scheduler,
            psf.monitor,
            engine=engine,
            repository=engine.repository,
            credentials=self._creds,
            # Alice's home shard lives on her PC: crashing it exercises
            # repository failover to the warm replica.
            shard_map={node: ["Alice"] for node in crash_nodes},
        )
        injector.arm(plan)
        self._injector = injector

        suite = InvariantSuite()
        self._suite = suite

        probes = self._schedule_probes(plan)
        recoveries = {cls: 0 for cls in _RECOVERED_COUNTERS}
        recovered_events: set[int] = set()
        results: list[ProbeResult] = []

        for probe in probes:
            if scheduler.now() < probe.at:
                scheduler.run_until(probe.at)
            ok, detail = probe.fn()
            now = scheduler.now()
            obs.event(
                "chaos.probe", kind=probe.kind, fault=probe.event.kind.value,
                ok=ok, detail=detail,
            )
            results.append(
                ProbeResult(
                    at=round(now, 6),
                    fault=probe.event.kind.value,
                    fault_at=probe.event.at,
                    fault_class=probe.event.kind.fault_class,
                    kind=probe.kind,
                    ok=ok,
                    detail=detail,
                )
            )
            if ok and probe.counts_recovery and id(probe.event) not in recovered_events:
                recovered_events.add(id(probe.event))
                cls = probe.event.kind.fault_class
                recoveries[cls] += 1
                obs.counter(_RECOVERED_COUNTERS[cls]).inc()
                obs.histogram(metric_names.FAULTS_RECOVERY_LATENCY).observe(
                    now - probe.event.at
                )

        # Quiesce: let every retry schedule, reroute, and heal drain.
        tail = max(plan.horizon, self.duration) + 2.0
        scheduler.run_until(tail)

        runtimes = psf.deployer._node_runtimes
        suite.add_check(
            "pending-calls-settled",
            pending_calls_settled(rt.rpc for rt in runtimes.values()),
        )
        suite.add_check(
            "channels-settled",
            channels_settled(rt.switchboard for rt in runtimes.values()),
        )
        suite.add_check(
            "sessions-on-live-nodes",
            sessions_on_live_nodes(psf.network, [pair, cache]),
        )
        suite.add_check(
            "view-image-coherence",
            views_coherent(
                "ViewMailServer",
                lambda: self._cache.access.fetchMail("Alice"),
                lambda: server.fetchMail("Alice"),
            ),
        )
        violations = suite.run()
        flight = None
        if violations:
            # The invariant sweep failed: freeze the flight recorder so
            # the report carries the events and spans leading up to it.
            flight = obs.flight_snapshot("chaos.invariant")

        return ChaosReport(
            seed=self.seed,
            duration=self.duration,
            horizon=round(tail, 6),
            events=plan.to_list(),
            injections=[dict(entry) for entry in injector.log],
            probes=[r.to_dict() for r in results],
            recoveries=recoveries,
            violations=[v.to_dict() for v in violations],
            metrics=obs.snapshot(),
            flight=flight,
        )

    # -- probe construction ---------------------------------------------------

    def _schedule_probes(self, plan: FaultPlan) -> list[_Probe]:
        """Derive the verification schedule from the fault plan.

        Post-heal probes are pushed past every *disruptive* window (link
        down, partition, node crash, loss burst) so a probe for one fault
        is never doomed by an unrelated one still in force; mid-fault
        probes deliberately land inside their own fault's window.
        """
        disruptive = [
            (e.at, e.ends_at)
            for e in plan
            if e.kind
            in (FaultKind.LINK_DOWN, FaultKind.PARTITION, FaultKind.NODE_CRASH,
                FaultKind.LOSS_BURST)
        ]

        def clear(t: float) -> float:
            moved = True
            while moved:
                moved = False
                for start, end in disruptive:
                    if start - 0.05 <= t < end + self.SETTLE:
                        t = end + self.SETTLE
                        moved = True
            return t

        probes: list[_Probe] = []
        order = 0

        def add(at: float, event: FaultEvent, kind: str, fn, *, recovery: bool) -> None:
            nonlocal order
            probes.append(_Probe(at=at, order=order, event=event, kind=kind,
                                 fn=fn, counts_recovery=recovery))
            order += 1

        for event in plan:
            mid = event.at + event.duration / 2.0
            after = clear(event.ends_at + self.SETTLE)
            if event.kind in (FaultKind.LINK_DOWN, FaultKind.PARTITION):
                add(after, event, "post-heal", self._probe_pair, recovery=True)
            elif event.kind is FaultKind.LATENCY_SPIKE:
                if clear(mid) == mid:
                    add(mid, event, "mid-fault", self._probe_pair, recovery=False)
                add(after, event, "post-heal", self._probe_pair, recovery=True)
            elif event.kind is FaultKind.LOSS_BURST:
                if clear(mid) == mid:
                    add(mid, event, "mid-fault-retry", self._probe_pair_retry,
                        recovery=True)
                add(after, event, "post-heal", self._probe_pair, recovery=True)
            elif event.kind is FaultKind.NODE_CRASH:
                add(mid, event, "shard-failover", self._probe_shard_failover,
                    recovery=False)
                add(after, event, "post-heal",
                    lambda e=event: self._probe_cache_redeployed(e), recovery=True)
            elif event.kind is FaultKind.REVOKE_STORM:
                add(event.at + 0.05, event, "deny-reissue",
                    lambda e=event: self._probe_revocation(e), recovery=True)

        probes.sort(key=lambda p: (p.at, p.order))
        return probes

    # -- individual probes ----------------------------------------------------

    def _probe_pair(self) -> tuple[bool, str]:
        """End-to-end fetch through the privacy pipeline (plain rmi hop)."""
        try:
            got = self._pair.access.fetchMail("Alice")
        except (NetworkError, SwitchboardError) as exc:
            return False, type(exc).__name__
        if got != self._expected_mail:
            return False, "mail mismatch through pipeline"
        return True, "pipeline fetch ok"

    def _probe_pair_retry(self) -> tuple[bool, str]:
        """Mid-loss fetch that must survive on retries alone."""
        rpc = self._scenario.psf.deployer.node_runtime("sd-pc1").rpc
        policy = RetryPolicy.exponential(
            base_delay=0.15,
            max_attempts=6,
            max_delay=1.0,
            jitter=0.3,
            seed=self.seed,
        )
        pending = rpc.call_with_retry(
            "ny-server", "MailServer", "fetchMail", ["Alice"], policy=policy
        )
        try:
            got = pending.wait(timeout=10.0)
        except (NetworkError, SwitchboardError) as exc:
            return False, type(exc).__name__
        if got != self._expected_mail:
            return False, "mail mismatch through retry path"
        return True, "retry fetch ok"

    def _probe_shard_failover(self) -> tuple[bool, str]:
        """Mid-crash proof search must be answered by the warm replica."""
        from ..drbac import EntityRef

        repo = self._scenario.engine.repository
        before = repo.failover_count
        client, role = self._storm_subjects["1"]
        proof = self._scenario.engine.find_proof(EntityRef(client), role)
        hops = repo.failover_count - before
        if hops <= 0:
            return False, "no shard failover routed"
        if proof is None:
            # Acceptable only while the credential itself is revoked.
            return True, f"failover routed ({hops} queries), credential revoked"
        return True, f"failover routed ({hops} queries), proof found"

    def _probe_cache_redeployed(self, event: FaultEvent) -> tuple[bool, str]:
        """Post-restart: the view must be redeployed and serving."""
        node = event.params["node"]
        redeployed = any(
            e.redeployed and e.trigger == f"node-up:{node}"
            for e in self._cache.history
        )
        if not redeployed:
            return False, f"no redeployment after node-up:{node}"
        try:
            got = self._cache.access.fetchMail("Alice")
        except (NetworkError, SwitchboardError) as exc:
            return False, type(exc).__name__
        if got != self._expected_mail:
            return False, "mail mismatch through redeployed view"
        return True, "view redeployed and serving"

    def _probe_revocation(self, event: FaultEvent) -> tuple[bool, str]:
        """Deny while revoked, then re-issue and verify restoration."""
        from ..drbac import EntityRef

        engine = self._scenario.engine
        details = []
        for cred_id in event.params["credentials"]:
            client, role = self._storm_subjects[cred_id]
            stale = engine.find_proof(EntityRef(client), role)
            if stale is not None:
                self._suite.record(
                    "revocation-enforced",
                    f"proof for {client} -> {role} survived revocation of "
                    f"credential #{cred_id}",
                )
                return False, f"revoked credential #{cred_id} still proves"
            fresh = self._reissue[cred_id]()
            self._creds[cred_id] = fresh
            self._injector.credentials[cred_id] = fresh
            if engine.find_proof(EntityRef(client), role) is None:
                return False, f"re-issued credential #{cred_id} does not prove"
            details.append(cred_id)
        return True, f"deny/re-issue/allow ok for #{','.join(details)}"
