"""repro.faults — deterministic fault injection and recovery.

The package has two faces:

* **Reusable recovery primitives** (:mod:`~repro.faults.retry`) that the
  rest of the repro imports — :class:`RetryPolicy` paces RPC
  retransmission, Switchboard channel re-establishment, and chaos-harness
  probes from one seeded, deterministic definition.
* **The chaos harness** — :class:`FaultPlan`/:class:`FaultEvent`
  (:mod:`~repro.faults.plan`), the :class:`FaultInjector` that executes a
  plan against a live world (:mod:`~repro.faults.injector`), the seeded
  schedule generator (:mod:`~repro.faults.chaos`), invariant checkers
  (:mod:`~repro.faults.invariants`), and the :class:`ChaosRunner` that
  ties them into a reproducible end-to-end run
  (:mod:`~repro.faults.runner`).

Only the primitive layer is imported eagerly: ``switchboard.rpc`` and
``switchboard.channel`` import :class:`RetryPolicy` from here, so pulling
the harness modules (which import switchboard/psf back) at package import
time would cycle.  Harness names resolve lazily on first attribute
access.
"""

from __future__ import annotations

from .plan import FaultEvent, FaultKind, FaultPlan
from .retry import RetryPolicy, RetrySchedule

_LAZY = {
    "FaultInjector": ("repro.faults.injector", "FaultInjector"),
    "generate_chaos_plan": ("repro.faults.chaos", "generate_chaos_plan"),
    "InvariantViolation": ("repro.faults.invariants", "InvariantViolation"),
    "InvariantSuite": ("repro.faults.invariants", "InvariantSuite"),
    "ChaosRunner": ("repro.faults.runner", "ChaosRunner"),
    "ChaosReport": ("repro.faults.runner", "ChaosReport"),
}

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
    "RetrySchedule",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
