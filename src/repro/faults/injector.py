"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live world.

The injector is deliberately thin: every mutation goes through the
:class:`~repro.psf.monitor.EnvironmentMonitor` (so the adaptation layer
hears about it exactly like a real measurement) or the dRBAC engine (so
revocations propagate through authorization monitors).  It records what
it did and when, but judging *recovery* is the harness's job
(:mod:`repro.faults.runner`): the injector breaks things and puts the
environment back; the system under test has to do the rest.
"""

from __future__ import annotations

from typing import Callable

from .. import obs
from ..errors import FaultError
from ..obs import names as metric_names
from .plan import FaultEvent, FaultKind, FaultPlan

InjectorListener = Callable[[FaultEvent, str], None]
"""Called with (event, phase) where phase is "inject" or "heal"."""

_INJECTED_COUNTERS = {
    FaultKind.LINK_DOWN: metric_names.FAULTS_INJECTED_LINK,
    FaultKind.PARTITION: metric_names.FAULTS_INJECTED_PARTITION,
    FaultKind.NODE_CRASH: metric_names.FAULTS_INJECTED_NODE,
    FaultKind.NODE_CRASH_RESTART: metric_names.FAULTS_INJECTED_RESTART,
    FaultKind.LATENCY_SPIKE: metric_names.FAULTS_INJECTED_LATENCY,
    FaultKind.LOSS_BURST: metric_names.FAULTS_INJECTED_LOSS,
    FaultKind.REVOKE_STORM: metric_names.FAULTS_INJECTED_REVOCATION,
}


class FaultInjector:
    """Schedules and applies the events of a fault plan.

    ``monitor`` is the environment monitor wrapping the target network;
    ``engine`` (a :class:`~repro.drbac.engine.DrbacEngine`) is required
    only for ``REVOKE_STORM`` plans, with ``credentials`` mapping the
    credential ids named in event params to live
    :class:`~repro.drbac.delegation.Delegation` objects.  ``shard_map``
    optionally maps node names to repository shard homes hosted there, so
    a node crash also fails (and a restart recovers) those shards.

    Healing a ``NODE_CRASH`` *rebuilds* the failed shards from their warm
    replicas (:meth:`~repro.drbac.repository.DistributedRepository.recover_shard`)
    — empty if unreplicated, which is honest data loss.  ``lossless=True``
    restores the legacy magical heal, where the primary's in-memory index
    is assumed to have survived the crash intact; it exists only for old
    tests and scenarios that model fail-stop *pauses* rather than
    crashes.  ``NODE_CRASH_RESTART`` needs the crashing node registered
    in ``durable_nodes`` (name → :class:`~repro.durable.node.DurableNode`):
    injection drops its volatile state, healing runs real WAL recovery —
    minus an optional ``torn_tail`` of bytes — and then delta catch-up.
    """

    def __init__(
        self,
        scheduler,
        monitor,
        *,
        engine=None,
        repository=None,
        credentials: dict[str, object] | None = None,
        shard_map: dict[str, list[str]] | None = None,
        durable_nodes: dict[str, object] | None = None,
        lossless: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.monitor = monitor
        self.engine = engine
        self.repository = repository
        self.credentials = dict(credentials or {})
        self.shard_map = {k: list(v) for k, v in (shard_map or {}).items()}
        self.durable_nodes = dict(durable_nodes or {})
        self.lossless = lossless
        self.log: list[dict] = []
        """Chronological record of (virtual time, event, phase) as dicts."""
        self._listeners: list[InjectorListener] = []

    def on_event(self, listener: InjectorListener) -> None:
        self._listeners.append(listener)

    # -- arming ------------------------------------------------------------

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` relative to the current time.

        Validation happens eagerly so a bad plan fails before the run
        starts, not halfway through it.
        """
        for event in plan:
            self._validate(event)
        for event in plan:
            self.scheduler.schedule(event.at, lambda e=event: self._inject(e))

    def _validate(self, event: FaultEvent) -> None:
        kind, params = event.kind, event.params
        if kind in (FaultKind.LINK_DOWN, FaultKind.LATENCY_SPIKE, FaultKind.LOSS_BURST):
            if "a" not in params or "b" not in params:
                raise FaultError(f"{kind.value} event needs 'a' and 'b' params")
            self.monitor.network.link(params["a"], params["b"])  # raises if absent
        elif kind is FaultKind.PARTITION:
            domain = params.get("domain")
            if not domain:
                raise FaultError("partition event needs a 'domain' param")
            if not self.monitor.network.nodes_in_domain(domain):
                raise FaultError(f"partition names empty domain {domain!r}")
        elif kind is FaultKind.NODE_CRASH:
            node = params.get("node")
            if not node:
                raise FaultError("node_crash event needs a 'node' param")
            self.monitor.network.node(node)
        elif kind is FaultKind.NODE_CRASH_RESTART:
            node = params.get("node")
            if not node:
                raise FaultError("node_crash_restart event needs a 'node' param")
            self.monitor.network.node(node)
            if node not in self.durable_nodes:
                raise FaultError(
                    f"node_crash_restart targets {node!r} but no DurableNode "
                    "is registered for it (pass durable_nodes=...)"
                )
        elif kind is FaultKind.REVOKE_STORM:
            ids = params.get("credentials", [])
            if not ids:
                raise FaultError("revoke_storm event needs 'credentials' ids")
            if self.engine is None:
                raise FaultError("revoke_storm requires an engine")
            missing = [i for i in ids if i not in self.credentials]
            if missing:
                raise FaultError(f"unknown credential ids in storm: {missing}")

    # -- execution ----------------------------------------------------------

    def _inject(self, event: FaultEvent) -> None:
        kind, params = event.kind, event.params
        heal: Callable[[], None] | None = None
        if kind is FaultKind.LINK_DOWN:
            a, b = params["a"], params["b"]
            self.monitor.set_link_up(a, b, False)
            heal = lambda: self.monitor.set_link_up(a, b, True)
        elif kind is FaultKind.PARTITION:
            heal = self._partition(params["domain"])
        elif kind is FaultKind.NODE_CRASH:
            heal = self._crash(params["node"])
        elif kind is FaultKind.NODE_CRASH_RESTART:
            heal = self._crash_restart(params["node"], params)
        elif kind is FaultKind.LATENCY_SPIKE:
            a, b = params["a"], params["b"]
            link = self.monitor.network.link(a, b)
            original = link.latency_s
            self.monitor.set_link_latency(a, b, original * float(params.get("factor", 4.0)))
            heal = lambda: self.monitor.set_link_latency(a, b, original)
        elif kind is FaultKind.LOSS_BURST:
            a, b = params["a"], params["b"]
            original_rate = self.monitor.network.link(a, b).loss_rate
            self.monitor.set_link_loss(a, b, float(params.get("rate", 0.3)))
            heal = lambda: self.monitor.set_link_loss(a, b, original_rate)
        elif kind is FaultKind.REVOKE_STORM:
            for cred_id in params["credentials"]:
                self.engine.revoke(self.credentials[cred_id])
            heal = None  # recovery is application-level re-issuance
        obs.counter(_INJECTED_COUNTERS[kind]).inc()
        self._record(event, "inject")
        if heal is not None and event.duration > 0:
            self.scheduler.schedule(
                event.ends_at - self.scheduler.now(),
                lambda: self._heal(event, heal),
            )

    def _partition(self, domain: str) -> Callable[[], None]:
        """Cut every live link crossing the domain boundary; return healer."""
        network = self.monitor.network
        severed: list[tuple[str, str]] = []
        for link in sorted(network.links(), key=lambda l: (l.a, l.b)):
            in_a = network.node(link.a).domain == domain
            in_b = network.node(link.b).domain == domain
            if in_a != in_b and link.up:
                severed.append((link.a, link.b))
        for a, b in severed:
            self.monitor.set_link_up(a, b, False)

        def heal() -> None:
            for a, b in severed:
                self.monitor.set_link_up(a, b, True)

        return heal

    def _crash(self, node: str) -> Callable[[], None]:
        self.monitor.set_node_up(node, False)
        homes = self.shard_map.get(node, [])
        if self.repository is not None:
            for home in homes:
                self.repository.fail_shard(home)

        def heal() -> None:
            if self.repository is not None:
                for home in homes:
                    if self.lossless:
                        # Legacy mode: pretend the primary's in-memory
                        # index survived the crash (a pause, not a crash).
                        self.repository.restore_shard(home)
                    else:
                        self.repository.recover_shard(home)
            self.monitor.set_node_up(node, True)

        return heal

    def _crash_restart(self, node: str, params: dict) -> Callable[[], None]:
        """Real crash: volatile state dies now, recovery runs at heal."""
        self.monitor.set_node_up(node, False)
        dnode = self.durable_nodes[node]
        dnode.crash()
        homes = self.shard_map.get(node, [])
        if self.repository is not None:
            for home in homes:
                self.repository.fail_shard(home)
        torn = int(params.get("torn_tail", 0))

        def heal() -> None:
            # Recovery itself clears any shard down-markers by rebuilding
            # the repository from durable state; restart before marking
            # the node routable so no query sees a half-recovered node.
            dnode.restart(torn_tail_bytes=torn)
            self.monitor.set_node_up(node, True)

        return heal

    def _heal(self, event: FaultEvent, heal: Callable[[], None]) -> None:
        heal()
        self._record(event, "heal")

    def _record(self, event: FaultEvent, phase: str) -> None:
        self.log.append(
            {"t": self.scheduler.now(), "phase": phase, **event.to_dict()}
        )
        obs.event(
            f"fault.{phase}", kind=event.kind.value,
            fault_class=event.kind.fault_class, fault_at=event.at,
        )
        for listener in list(self._listeners):
            listener(event, phase)
