"""Seeded chaos schedules: same seed, same storm, every time.

:func:`generate_chaos_plan` draws every choice — which link dies, when,
for how long, which credentials get revoked — from one
``random.Random(seed)``, so a chaos run is a pure function of its seed
and the topology inputs.  The generator guarantees at least one event of
every requested fault class per run, which is what lets the harness
assert "one verified recovery per class" instead of hoping the dice
cooperated.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..errors import FaultError
from .plan import FaultEvent, FaultKind, FaultPlan


def generate_chaos_plan(
    *,
    seed: int,
    duration: float,
    links: Sequence[tuple[str, str]],
    domains: Sequence[str] = (),
    crash_nodes: Sequence[str] = (),
    credential_ids: Sequence[str] = (),
    intensity: float = 1.0,
) -> FaultPlan:
    """Build a deterministic fault schedule for one chaos run.

    ``links`` are the (a, b) pairs eligible for link-level faults —
    typically the WAN links, where the paper's environment is hostile.
    ``domains``/``crash_nodes``/``credential_ids`` gate the partition,
    crash, and revocation classes: pass an empty sequence to skip a class
    entirely (e.g. no ``crash_nodes`` in a world with nothing to
    re-plan).  Faults are injected inside the first 60% of ``duration``
    and heal within it, leaving the tail for recovery verification.
    """
    if duration <= 0:
        raise FaultError(f"chaos duration must be positive, got {duration}")
    if not links:
        raise FaultError("chaos generation needs at least one eligible link")
    rng = random.Random(seed)
    plan = FaultPlan()
    rounds = max(1, int(duration * intensity / 10.0))

    def window() -> tuple[float, float]:
        """(start, hold) placed so the fault heals by 0.8 * duration."""
        at = round(rng.uniform(0.05 * duration, 0.55 * duration), 3)
        hold = round(rng.uniform(0.05 * duration, min(0.25 * duration, 0.8 * duration - at)), 3)
        return at, max(hold, 0.01)

    for _ in range(rounds):
        a, b = links[rng.randrange(len(links))]
        at, hold = window()
        plan.add(FaultEvent(at=at, kind=FaultKind.LINK_DOWN, duration=hold,
                            params={"a": a, "b": b}))

        if domains:
            domain = domains[rng.randrange(len(domains))]
            at, hold = window()
            plan.add(FaultEvent(at=at, kind=FaultKind.PARTITION, duration=hold,
                                params={"domain": domain}))

        if crash_nodes:
            node = crash_nodes[rng.randrange(len(crash_nodes))]
            at, hold = window()
            plan.add(FaultEvent(at=at, kind=FaultKind.NODE_CRASH, duration=hold,
                                params={"node": node}))

        a, b = links[rng.randrange(len(links))]
        at, hold = window()
        plan.add(FaultEvent(at=at, kind=FaultKind.LATENCY_SPIKE, duration=hold,
                            params={"a": a, "b": b,
                                    "factor": round(rng.uniform(2.0, 8.0), 2)}))

        a, b = links[rng.randrange(len(links))]
        at, hold = window()
        plan.add(FaultEvent(at=at, kind=FaultKind.LOSS_BURST, duration=hold,
                            params={"a": a, "b": b,
                                    "rate": round(rng.uniform(0.2, 0.5), 2)}))

        if credential_ids:
            count = 1 + rng.randrange(min(2, len(credential_ids)))
            storm = sorted(rng.sample(list(credential_ids), count))
            at = round(rng.uniform(0.05 * duration, 0.55 * duration), 3)
            plan.add(FaultEvent(at=at, kind=FaultKind.REVOKE_STORM,
                                params={"credentials": storm}))

    return plan
