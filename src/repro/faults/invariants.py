"""Safety invariants checked over (and after) a chaos run.

A fault harness that only counts "probes succeeded" proves liveness, not
safety.  The invariants here catch the silent failure modes:

* **No hanging calls** — every :class:`~repro.switchboard.rpc.PendingCall`
  created during the run must complete (resolved, failed, or aborted);
  a fault must never strand a caller on a future nobody will fill.
* **Revocation enforced** — an authorization must not succeed on the
  strength of a revoked credential; recovery is *re-issuance*, never a
  stale proof.
* **View/image coherence** — a cached view must agree with its origin
  once the network quiesces.
* **Crashed deployments re-planned** — no managed session may end the
  run with components placed on a dead host or with evicted instances
  that were never replaced.

Checks are registered on an :class:`InvariantSuite`; online violations
(observed mid-run by the harness) are ``record``-ed and reported next to
the end-of-run sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    invariant: str
    detail: str

    def to_dict(self) -> dict[str, str]:
        return {"invariant": self.invariant, "detail": self.detail}


class InvariantSuite:
    """Named checks plus online-recorded violations."""

    def __init__(self) -> None:
        self._checks: list[tuple[str, Callable[[], list[str]]]] = []
        self._recorded: list[InvariantViolation] = []

    def add_check(self, name: str, check: Callable[[], list[str]]) -> None:
        """Register an end-of-run check returning a list of violation
        details (empty when the invariant holds)."""
        self._checks.append((name, check))

    def record(self, invariant: str, detail: str) -> None:
        """Report a violation observed live, mid-run."""
        self._recorded.append(InvariantViolation(invariant, detail))

    def run(self) -> list[InvariantViolation]:
        violations = list(self._recorded)
        for name, check in self._checks:
            violations.extend(InvariantViolation(name, detail) for detail in check())
        return violations


# -- prebuilt end-of-run checks ---------------------------------------------


def pending_calls_settled(rpc_endpoints: Iterable[Any]) -> Callable[[], list[str]]:
    """No plain-RPC future may still be undone once the queue drains."""
    endpoints = list(rpc_endpoints)

    def check() -> list[str]:
        out: list[str] = []
        for endpoint in endpoints:
            for call in endpoint._pending.values():
                if not call.done:
                    out.append(
                        f"{endpoint.node_name}: call #{call.call_id} "
                        f"{call.method!r} still pending"
                    )
        return out

    return check


def channels_settled(switchboard_endpoints: Iterable[Any]) -> Callable[[], list[str]]:
    """No channel-RPC future may still be undone on any live connection."""
    endpoints = list(switchboard_endpoints)

    def check() -> list[str]:
        out: list[str] = []
        for endpoint in endpoints:
            for connection in endpoint.connections():
                for call in connection._pending.values():
                    if not call.done:
                        out.append(
                            f"{endpoint.node_name}/{connection.conn_id}: call "
                            f"#{call.call_id} {call.method!r} still pending"
                        )
        return out

    return check


def sessions_on_live_nodes(network: Any, sessions: Iterable[Any]) -> Callable[[], list[str]]:
    """Every managed session's plan must sit entirely on live hosts, with
    no eviction left unredeployed."""
    sessions = list(sessions)

    def check() -> list[str]:
        out: list[str] = []
        for index, session in enumerate(sessions):
            if session.needs_redeploy:
                out.append(f"session[{index}] evicted instances never redeployed")
            for placed in session.plan.components:
                if not network.node(placed.node).up:
                    out.append(
                        f"session[{index}] places {placed.component.name} "
                        f"on dead node {placed.node}"
                    )
        return out

    return check


def views_coherent(
    label: str, view_read: Callable[[], Any], origin_read: Callable[[], Any]
) -> Callable[[], list[str]]:
    """After quiescence a view must observe the same state as its origin."""

    def check() -> list[str]:
        through_view = view_read()
        at_origin = origin_read()
        if through_view != at_origin:
            return [
                f"{label}: view sees {through_view!r} but origin holds {at_origin!r}"
            ]
        return []

    return check
