"""Fault taxonomy and scheduled fault plans.

A :class:`FaultPlan` is a time-ordered list of :class:`FaultEvent`\\ s —
the declarative artifact the :class:`~repro.faults.injector.FaultInjector`
executes against the simulated world.  Plans are plain data: they can be
generated from a seed (:mod:`repro.faults.chaos`), written by hand in
tests, serialized into a chaos report, and replayed exactly.

Fault classes mirror the hostile environment of the paper's §2.2
deployment story:

======================  ================================================
``LINK_DOWN``           a WAN/LAN link fails for ``duration`` seconds
``PARTITION``           a whole domain loses every inter-domain link
``NODE_CRASH``          a host crash-stops, then restarts after
                        ``duration``
``NODE_CRASH_RESTART``  a host crash-stops *losing its volatile state*;
                        on heal it runs real WAL recovery (optionally
                        with a ``torn_tail`` of bytes ripped off the log)
``LATENCY_SPIKE``       a link's latency is multiplied for ``duration``
``LOSS_BURST``          a link drops frames with probability ``rate``
``REVOKE_STORM``        a batch of live credentials is revoked at once
======================  ================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import FaultError


class FaultKind(enum.Enum):
    LINK_DOWN = "link_down"
    PARTITION = "partition"
    NODE_CRASH = "node_crash"
    NODE_CRASH_RESTART = "node_crash_restart"
    LATENCY_SPIKE = "latency_spike"
    LOSS_BURST = "loss_burst"
    REVOKE_STORM = "revoke_storm"

    @property
    def fault_class(self) -> str:
        """The coarse recovery class this kind is accounted under."""
        return _FAULT_CLASS[self]


_FAULT_CLASS = {
    FaultKind.LINK_DOWN: "link",
    FaultKind.PARTITION: "partition",
    FaultKind.NODE_CRASH: "node",
    FaultKind.NODE_CRASH_RESTART: "node",
    FaultKind.LATENCY_SPIKE: "latency",
    FaultKind.LOSS_BURST: "loss",
    FaultKind.REVOKE_STORM: "revocation",
}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is virtual seconds from the start of the run; ``duration`` is
    how long the fault holds before the injector restores the previous
    state (ignored for ``REVOKE_STORM``, whose recovery is re-issuance by
    the application layer, not the injector).  ``params`` carries
    kind-specific data:

    * LINK_DOWN / LATENCY_SPIKE / LOSS_BURST — ``a``, ``b`` endpoints,
      plus ``factor`` (latency) or ``rate`` (loss)
    * PARTITION — ``domain``
    * NODE_CRASH — ``node``
    * NODE_CRASH_RESTART — ``node``, plus optional ``torn_tail`` (bytes
      ripped off the WAL tail before recovery replays it)
    * REVOKE_STORM — ``credentials`` (list of credential ids)
    """

    at: float
    kind: FaultKind
    duration: float = 0.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"fault scheduled in the past: {self.at}")
        if self.duration < 0:
            raise FaultError(f"negative fault duration: {self.duration}")

    @property
    def ends_at(self) -> float:
        return self.at + self.duration

    def describe(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"t={self.at:g} {self.kind.value} dur={self.duration:g} {detail}".strip()

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form, stable key order, for chaos reports."""
        return {
            "at": self.at,
            "kind": self.kind.value,
            "duration": self.duration,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }


class FaultPlan:
    """A validated, time-sorted fault schedule."""

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self._events: list[FaultEvent] = sorted(
            events or [], key=lambda e: (e.at, e.kind.value)
        )

    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        self._events.sort(key=lambda e: (e.at, e.kind.value))
        return self

    @property
    def events(self) -> list[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    @property
    def horizon(self) -> float:
        """Virtual time by which every fault has been injected and healed."""
        return max((e.ends_at for e in self._events), default=0.0)

    def by_class(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self._events:
            key = event.kind.fault_class
            counts[key] = counts.get(key, 0) + 1
        return counts

    def to_list(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self._events]

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self._events)
