"""Reusable retry policies: exponential backoff, seeded jitter, deadlines.

Every recovery loop in the repro — RPC retransmission, Switchboard channel
re-establishment, chaos-harness probes — draws its pacing from a
:class:`RetryPolicy` instead of a hand-rolled fixed interval, so retry
behaviour is tunable in one place and, critically, *deterministic*: jitter
comes from a seeded RNG, never the wall clock, which is what lets a chaos
run replay byte-for-byte.

A policy is an immutable description; :meth:`RetryPolicy.schedule` mints a
fresh :class:`RetrySchedule` holding the per-use mutable state (attempt
counter, jitter RNG, elapsed budget).  Two schedules minted from the same
policy produce identical delay sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How to pace repeated attempts at a failing operation.

    ``base_delay`` is the wait before the second attempt; each further
    wait multiplies by ``multiplier`` and clamps to ``max_delay``.
    ``jitter`` spreads each wait uniformly over ``[delay*(1-j), delay*(1+j)]``
    using a ``seed``-derived RNG.  ``deadline`` bounds the *sum* of waits:
    a delay that would overshoot it is clamped to the remaining budget
    (never skipped outright), and once the budget is spent the schedule
    gives up.
    """

    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    max_attempts: int = 4
    jitter: float = 0.0
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    @classmethod
    def fixed(cls, interval: float, retries: int) -> "RetryPolicy":
        """The legacy shape: ``retries`` re-sends at a constant interval."""
        return cls(
            base_delay=interval,
            multiplier=1.0,
            max_delay=interval,
            max_attempts=retries + 1,
        )

    @classmethod
    def exponential(
        cls,
        *,
        base_delay: float = 0.1,
        max_attempts: int = 6,
        max_delay: float = 5.0,
        jitter: float = 0.1,
        deadline: Optional[float] = None,
        seed: int = 0,
    ) -> "RetryPolicy":
        return cls(
            base_delay=base_delay,
            multiplier=2.0,
            max_delay=max_delay,
            max_attempts=max_attempts,
            jitter=jitter,
            deadline=deadline,
            seed=seed,
        )

    def schedule(self) -> "RetrySchedule":
        """A fresh, independent attempt sequence for one operation."""
        return RetrySchedule(self)

    def delays(self) -> list[float]:
        """The full delay sequence (for inspection and tests)."""
        sched = self.schedule()
        out: list[float] = []
        while True:
            delay = sched.next_delay()
            if delay is None:
                return out
            out.append(delay)


class RetrySchedule:
    """Mutable per-operation state walked by a retry loop."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.attempts_made = 1  # the initial try counts as attempt #1
        self.waited = 0.0
        self._rng = random.Random(policy.seed)

    @property
    def exhausted(self) -> bool:
        return self.attempts_made >= self.policy.max_attempts

    def next_delay(self) -> Optional[float]:
        """Delay before the next attempt, or None when giving up.

        Advances the attempt counter; call exactly once per retry.
        """
        if self.exhausted:
            return None
        exponent = self.attempts_made - 1
        delay = min(
            self.policy.base_delay * (self.policy.multiplier**exponent),
            self.policy.max_delay,
        )
        if self.policy.jitter:
            spread = self.policy.jitter * delay
            delay += self._rng.uniform(-spread, spread)
        if self.policy.deadline is not None:
            # Clamp to the remaining budget instead of refusing outright:
            # a schedule with 1s left and a 4s backoff due should spend
            # that last second trying, not give up with budget unused.
            remaining = self.policy.deadline - self.waited
            if remaining <= 0:
                return None
            delay = min(delay, remaining)
        self.attempts_made += 1
        self.waited += delay
        return delay

    def __iter__(self) -> Iterator[float]:
        while True:
            delay = self.next_delay()
            if delay is None:
                return
            yield delay
