"""repro — reproduction of *Using Views for Customizing Reusable Components
in Component-Based Frameworks* (Ivan & Karamcheti, HPDC 2003).

Subpackages:

* :mod:`repro.crypto` — from-scratch PKI substrate (RSA, DH, AEAD).
* :mod:`repro.drbac` — decentralized role-based access control.
* :mod:`repro.net` — simulated multi-domain network.
* :mod:`repro.switchboard` — secure, continuously-authorized channels.
* :mod:`repro.views` — object views and the VIG view generator.
* :mod:`repro.psf` — the Partitionable Services Framework.
* :mod:`repro.baselines` — GSI / CAS / per-call-ACL comparators.
* :mod:`repro.mail` — the paper's component-based mail application.
"""

from .clock import Clock, ManualClock, SystemClock
from .errors import (
    AuthorizationError,
    ChannelClosedError,
    CipherError,
    CredentialError,
    CryptoError,
    DeploymentError,
    DrbacError,
    HandshakeError,
    KeyExchangeError,
    LinkDownError,
    NetworkError,
    PlanningError,
    PsfError,
    ReplayError,
    ReproError,
    RevocationError,
    SignatureError,
    SwitchboardError,
    ViewError,
    ViewGenerationError,
    ViewSpecError,
)

__version__ = "1.0.0"

__all__ = [
    "AuthorizationError",
    "ChannelClosedError",
    "CipherError",
    "Clock",
    "CredentialError",
    "CryptoError",
    "DeploymentError",
    "DrbacError",
    "HandshakeError",
    "KeyExchangeError",
    "LinkDownError",
    "ManualClock",
    "NetworkError",
    "PlanningError",
    "PsfError",
    "ReplayError",
    "ReproError",
    "RevocationError",
    "SignatureError",
    "SwitchboardError",
    "SystemClock",
    "ViewError",
    "ViewGenerationError",
    "ViewSpecError",
    "__version__",
]
