"""Structured event log: typed records over virtual time, bounded.

Where spans describe *durations*, events describe *instants*: a fault
injected, an authorization verdict, a batch flushed, a load-op error.
Each record carries a monotonically increasing ``seq`` (assigned at emit
time, so ordering is total and seeded-deterministic even when two events
share a virtual timestamp), the emitting clock's ``at``, a dotted
``kind`` (``"auth.decision"``, ``"fault.inject"``, …) and free-form
string/number fields.

The log doubles as the flight recorder's ring buffer: it keeps only the
last ``max_events`` records (evictions are counted, never silent), so a
long chaos run retains exactly the recent history a post-mortem needs.
:func:`repro.obs.flight_snapshot` serialises it together with the live
span stack.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..clock import Clock
from .trace import PerfClock

DEFAULT_MAX_EVENTS = 4096


class Event:
    """One structured record; immutable once emitted."""

    __slots__ = ("seq", "at", "kind", "fields")

    def __init__(self, seq: int, at: float, kind: str, fields: dict[str, Any]) -> None:
        self.seq = seq
        self.at = at
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "seq": self.seq,
            "at": round(self.at, 9),
            "kind": self.kind,
        }
        if self.fields:
            out["fields"] = {k: self.fields[k] for k in sorted(self.fields)}
        return out

    def __repr__(self) -> str:
        return f"Event({self.seq}, {self.at:.6f}, {self.kind!r}, {self.fields!r})"


class EventLog:
    """Bounded, ordered event buffer sharing the tracer's clock."""

    def __init__(self, clock: Clock | None = None, *, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.clock: Clock = clock if clock is not None else PerfClock()
        self.events: deque[Event] = deque(maxlen=max_events)
        self.dropped = 0
        """Records evicted by the ring-buffer bound."""
        self._next_seq = 1

    def emit(self, kind: str, /, **fields: Any) -> Event:
        event = Event(self._next_seq, self.clock.now(), kind, fields)
        self._next_seq += 1
        if (
            self.events.maxlen is not None
            and len(self.events) == self.events.maxlen
        ):
            self.dropped += 1
        self.events.append(event)
        return event

    def tail(self, n: int | None = None) -> list[Event]:
        """The most recent ``n`` events (all retained events if ``None``)."""
        if n is None or n >= len(self.events):
            return list(self.events)
        return list(self.events)[-n:]

    def find(self, kind: str) -> list[Event]:
        """Retained events of one kind, emit order."""
        return [e for e in self.events if e.kind == kind]

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._next_seq = 1

    def __len__(self) -> int:
        return len(self.events)


class NullEventLog(EventLog):
    """Disabled-mode log: :meth:`emit` allocates nothing and keeps nothing."""

    def __init__(self) -> None:
        super().__init__(PerfClock(), max_events=1)

    def emit(self, kind: str, /, **fields: Any) -> Event:  # type: ignore[override]
        return NULL_EVENT


NULL_EVENT = Event(0, 0.0, "<null>", {})
NULL_EVENT_LOG = NullEventLog()
