"""Export finished traces as Chrome/Perfetto trace-event JSON.

The target format is the trace-event array understood by
``chrome://tracing`` and https://ui.perfetto.dev: complete events
(``"ph": "X"``) with microsecond ``ts``/``dur``, one ``pid`` for the
whole simulation and one ``tid`` (track) per simulated node, named via
``"ph": "M"`` thread-name metadata records.  Virtual seconds map
directly onto trace microseconds, so a 4 ms simulated link hop renders
as a 4 ms bar.

Each event's ``args`` carries the span's W3C-style hex identifiers
(``trace_id``/``span_id``/``parent_id``) plus its attributes — the ids
are what lets a human (or a test) stitch a client-side RPC span, the
transport batch that carried it, and the server-side proof search into
one causal chain even though they render on different tracks.

Everything here is pure and deterministic: sorted node→track mapping,
sorted args keys, no wall-clock reads — same tracer state in, byte-same
JSON out.
"""

from __future__ import annotations

from typing import Any

from .events import EventLog
from .trace import Span, Tracer, format_span_id, format_trace_id

PID = 1
MAIN_TID = 0
MAIN_TRACK = "main"


def _span_node(span: Span) -> str:
    node = span.attributes.get("node")
    return str(node) if node is not None else MAIN_TRACK


def _collect_nodes(roots: list[Span]) -> dict[str, int]:
    """Deterministic node → tid mapping (main pinned to tid 0)."""
    nodes: set[str] = set()

    def walk(span: Span) -> None:
        nodes.add(_span_node(span))
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    nodes.discard(MAIN_TRACK)
    mapping = {MAIN_TRACK: MAIN_TID}
    for tid, name in enumerate(sorted(nodes), start=1):
        mapping[name] = tid
    return mapping


def _span_event(span: Span, tids: dict[str, int]) -> dict[str, Any]:
    args: dict[str, Any] = {
        "trace_id": format_trace_id(span.trace_id),
        "span_id": format_span_id(span.span_id),
    }
    if span.parent_id:
        args["parent_id"] = format_span_id(span.parent_id)
    for key in sorted(span.attributes):
        if key != "node":
            args[key] = span.attributes[key]
    end = span.end if span.end is not None else span.start
    return {
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": int(round(span.start * 1e6)),
        "dur": int(round((end - span.start) * 1e6)),
        "pid": PID,
        "tid": tids[_span_node(span)],
        "args": args,
    }


def _instant_event(event_dict: dict[str, Any], tids: dict[str, int]) -> dict[str, Any]:
    fields = event_dict.get("fields", {})
    node = str(fields.get("node", MAIN_TRACK))
    return {
        "name": event_dict["kind"],
        "cat": "event",
        "ph": "i",
        "s": "t",  # thread-scoped instant
        "ts": int(round(event_dict["at"] * 1e6)),
        "pid": PID,
        "tid": tids.get(node, MAIN_TID),
        "args": fields,
    }


def to_chrome_trace(
    tracer: Tracer,
    log: EventLog | None = None,
    *,
    other_data: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render the tracer's finished spans (and optionally the event log)
    as a Chrome trace-event JSON object."""
    roots = list(tracer.finished)
    tids = _collect_nodes(roots)

    trace_events: list[dict[str, Any]] = []
    for name, tid in sorted(tids.items(), key=lambda item: item[1]):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": PID,
            "tid": tid,
            "args": {"name": name},
        })

    span_events: list[dict[str, Any]] = []

    def walk(span: Span) -> None:
        span_events.append(_span_event(span, tids))
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    # Stable render order: by start time, then track, then span id.
    span_events.sort(key=lambda e: (e["ts"], e["tid"], e["args"]["span_id"]))
    trace_events.extend(span_events)

    if log is not None:
        instants = [_instant_event(e.to_dict(), tids) for e in log.tail()]
        instants.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
        trace_events.extend(instants)

    out: dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events,
    }
    if tracer.dropped:
        out.setdefault("otherData", {})["spans_dropped"] = tracer.dropped
    if other_data:
        out.setdefault("otherData", {}).update(other_data)
    return out
