"""Canonical catalogue of every instrumented metric name.

Instrumented modules import these constants instead of spelling string
literals, and the test-time self-check (``tests/test_selfcheck.py``)
asserts that (a) the catalogue has no duplicate or kind-conflicting
entries and (b) every metric that shows up live after exercising the
scenario is catalogued — so a typo'd name fails tests instead of silently
splitting a counter in two.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import COUNT_BUCKETS


@dataclass(frozen=True, slots=True)
class MetricSpec:
    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    buckets: tuple[float, ...] | None = None


# -- dRBAC proof search (drbac/proof.py, drbac/engine.py, drbac/cache.py) --

PROOF_SEARCHES = "drbac.proof.searches"
PROOF_SEARCHES_REGRESSION = "drbac.proof.searches.regression"
PROOF_SEARCHES_PROGRESSION = "drbac.proof.searches.progression"
PROOF_FOUND = "drbac.proof.found"
PROOF_NOT_FOUND = "drbac.proof.not_found"
PROOF_CHAIN_LENGTH = "drbac.proof.chain_length"
PROOF_EDGES_VISITED = "drbac.proof.edges_visited"
AUTHORIZE_GRANTED = "drbac.authorize.granted"
AUTHORIZE_DENIED = "drbac.authorize.denied"
CACHE_HITS = "drbac.cache.hits"
CACHE_MISSES = "drbac.cache.misses"
CACHE_INVALIDATED = "drbac.cache.invalidated"
CACHE_ENTRIES = "drbac.cache.entries"
CACHE_EVICTED = "drbac.cache.evicted"
CACHE_NEGATIVE_HITS = "drbac.cache.negative_hits"

# -- Incremental proof-graph maintenance (drbac/incremental.py) --------------

INCR_PUBLISHES = "drbac.incr.publishes"
INCR_REVOCATIONS = "drbac.incr.revocations"
INCR_EXPIRIES = "drbac.incr.expiries"
INCR_FAST_PROOFS = "drbac.incr.fast_proofs"
INCR_FALLBACKS = "drbac.incr.fallbacks"
INCR_DELTA_SIZE = "drbac.incr.delta_size"
INCR_CONE_SIZE = "drbac.incr.cone_size"
INCR_RECOMPUTE_RATIO = "drbac.incr.recompute_ratio"
INCR_TRACKED = "drbac.incr.tracked_principals"

# -- Switchboard channel lifecycle (switchboard/channel.py, rpc.py) --------

SWB_HANDSHAKES_INITIATED = "switchboard.handshakes.initiated"
SWB_HANDSHAKES_ACCEPTED = "switchboard.handshakes.accepted"
SWB_HANDSHAKES_REJECTED = "switchboard.handshakes.rejected"
SWB_CHANNELS_OPENED = "switchboard.channels.opened"
SWB_CHANNELS_CLOSED = "switchboard.channels.closed"
SWB_CHANNELS_REVOKED = "switchboard.channels.revoked"
SWB_CHANNELS_DEAD = "switchboard.channels.dead"
SWB_CHANNELS_LIVE = "switchboard.channels.live"
SWB_FRAMES_SENT = "switchboard.frames.sent"
SWB_FRAMES_RECEIVED = "switchboard.frames.received"
SWB_BYTES_SENT = "switchboard.bytes.sent"
SWB_BYTES_RECEIVED = "switchboard.bytes.received"
SWB_REPLAYS_REJECTED = "switchboard.replays.rejected"
SWB_TAMPER_REJECTED = "switchboard.tamper.rejected"
SWB_RPC_CALLS = "switchboard.rpc.calls"
SWB_RPC_FAILURES = "switchboard.rpc.failures"
SWB_RPC_LATENCY = "switchboard.rpc.latency"

# -- PSF planning and deployment (psf/planner.py, psf/deployment.py) -------

PLAN_ATTEMPTS = "psf.plan.attempts"
PLAN_SUCCESS = "psf.plan.success"
PLAN_FAILURES = "psf.plan.failures"
PLAN_GOALS_EXPANDED = "psf.plan.goals_expanded"
PLAN_CANDIDATES = "psf.plan.candidates_examined"
PLAN_BACKTRACKS = "psf.plan.backtracks"
DEPLOY_DEPLOYMENTS = "psf.deploy.deployments"
DEPLOY_INSTANCES = "psf.deploy.instances"
DEPLOY_CREDENTIALS = "psf.deploy.credentials_issued"
DEPLOY_DURATION = "psf.deploy.duration"

# -- View coherence (views/coherence.py) -----------------------------------

COHERENCE_ACQUIRES = "views.coherence.acquires"
COHERENCE_RELEASES = "views.coherence.releases"
COHERENCE_IMAGES_PULLED = "views.coherence.images_pulled"
COHERENCE_IMAGES_PUSHED = "views.coherence.images_pushed"

# -- Network fault surface (net/transport.py) -------------------------------

NET_LINK_BYTES_CARRIED = "net.link.bytes_carried"
NET_LINK_FRAMES_DROPPED = "net.link.frames_dropped"
NET_MESSAGES_REROUTED = "net.messages.rerouted"

# -- Frame batching (net/transport.py) --------------------------------------

NET_BATCH_FLUSHES = "net.batch.flushes"
NET_BATCH_FLUSHES_SIZE = "net.batch.flushes_size"
NET_BATCH_FLUSHES_TICK = "net.batch.flushes_tick"
NET_BATCH_FRAMES_COALESCED = "net.batch.frames_coalesced"
NET_BATCH_BYTES = "net.batch.bytes"
NET_BATCH_OCCUPANCY = "net.batch.occupancy"

# -- RPC pipelining (switchboard/rpc.py) ------------------------------------

RPC_PIPELINE_CALLS = "switchboard.rpc.pipeline.calls"
RPC_PIPELINE_DEPTH = "switchboard.rpc.pipeline.depth"

# -- Recovery machinery (switchboard/rpc.py, channel.py, drbac/repository.py,
#    psf/adaptation.py) -----------------------------------------------------

RPC_WAIT_TIMEOUTS = "switchboard.rpc.wait_timeouts"
RPC_RETRIES = "switchboard.rpc.retries"
RPC_RETRIES_EXHAUSTED = "switchboard.rpc.retries_exhausted"
SWB_CHANNELS_REESTABLISHED = "switchboard.channels.reestablished"
SWB_RECONNECT_LATENCY = "switchboard.reconnect.latency"
REPO_FAILOVERS = "drbac.repo.failovers"
ADAPT_REPLANS = "psf.adapt.replans"
ADAPT_REDEPLOYMENTS = "psf.adapt.redeployments"
ADAPT_FAILURES = "psf.adapt.failures"

# -- Fault injection (faults/injector.py, faults/runner.py) -----------------

FAULTS_INJECTED_LINK = "faults.injected.link"
FAULTS_INJECTED_PARTITION = "faults.injected.partition"
FAULTS_INJECTED_NODE = "faults.injected.node"
FAULTS_INJECTED_LATENCY = "faults.injected.latency"
FAULTS_INJECTED_LOSS = "faults.injected.loss"
FAULTS_INJECTED_REVOCATION = "faults.injected.revocation"
FAULTS_RECOVERED_LINK = "faults.recovered.link"
FAULTS_RECOVERED_PARTITION = "faults.recovered.partition"
FAULTS_RECOVERED_NODE = "faults.recovered.node"
FAULTS_RECOVERED_LATENCY = "faults.recovered.latency"
FAULTS_RECOVERED_LOSS = "faults.recovered.loss"
FAULTS_RECOVERED_REVOCATION = "faults.recovered.revocation"
FAULTS_RECOVERY_LATENCY = "faults.recovery.latency"
FAULTS_INJECTED_RESTART = "faults.injected.node_restart"

# -- Durability & crash recovery (durable/*.py, drbac/repository.py) --------

DURABLE_WAL_APPENDS = "durable.wal.appends"
DURABLE_WAL_BYTES = "durable.wal.bytes"
DURABLE_WAL_RECORDS = "durable.wal.records"
DURABLE_SNAPSHOTS = "durable.snapshots"
DURABLE_TORN_TAILS = "durable.torn_tails"
DURABLE_TORN_BYTES = "durable.torn_tail.bytes_dropped"
RECOVER_RESTARTS = "recover.restarts"
RECOVER_REPLAYED = "recover.wal.records_replayed"
RECOVER_CATCHUP = "recover.catchup.updates"
RECOVER_CACHE_EVICTED = "recover.cache.evicted"
RECOVER_CACHE_KEPT = "recover.cache.kept"
RECOVER_WORK = "recover.work_units"
RECOVER_SHARD_REBUILDS = "recover.shard_rebuilds"

# -- Observability self-monitoring (obs/trace.py) ---------------------------

TRACE_DROPPED = "obs.trace.dropped"

# -- Flow control / overload protection (flow/*.py, switchboard/rpc.py) -----

FLOW_ADMITTED = "flow.admitted"
FLOW_SHED = "flow.shed"
FLOW_BUCKET_DENIED = "flow.bucket.denied"
FLOW_QUEUE_DEPTH = "flow.queue.depth"
FLOW_QUEUE_WAIT = "flow.queue.wait"
FLOW_SERVICE_BUSY = "flow.service.busy"
FLOW_LIMITER_LIMIT = "flow.limiter.limit"
FLOW_LIMITER_BACKOFFS = "flow.limiter.backoffs"
FLOW_LIMITER_RAISES = "flow.limiter.raises"
FLOW_BREAKER_OPENS = "flow.breaker.opens"
FLOW_BREAKER_SHORT_CIRCUITS = "flow.breaker.short_circuits"
FLOW_BREAKER_PROBES = "flow.breaker.probes"
FLOW_RETRY_AFTER_HONORED = "flow.retry_after.honored"

# -- Simulation testing (check/executor.py, check/shrink.py) ----------------

CHECK_OPS = "check.ops"
CHECK_COMPARISONS = "check.comparisons"
CHECK_DIVERGENCES = "check.divergences"
CHECK_RPC_NET_FAILURES = "check.rpc.net_failures"
CHECK_SHRINK_PROBES = "check.shrink.probes"
CHECK_SHRINK_REMOVED = "check.shrink.removed_ops"


CATALOGUE: tuple[MetricSpec, ...] = (
    MetricSpec(PROOF_SEARCHES, "counter", "proof searches started"),
    MetricSpec(PROOF_SEARCHES_REGRESSION, "counter", "searches using regression"),
    MetricSpec(PROOF_SEARCHES_PROGRESSION, "counter", "searches using progression"),
    MetricSpec(PROOF_FOUND, "counter", "searches that produced a proof"),
    MetricSpec(PROOF_NOT_FOUND, "counter", "searches that found no proof"),
    MetricSpec(PROOF_CHAIN_LENGTH, "histogram",
               "membership-chain length of successful proofs", COUNT_BUCKETS),
    MetricSpec(PROOF_EDGES_VISITED, "histogram",
               "credential edges inspected per search", COUNT_BUCKETS),
    MetricSpec(AUTHORIZE_GRANTED, "counter", "authorize() calls that granted"),
    MetricSpec(AUTHORIZE_DENIED, "counter", "authorize() calls that raised"),
    MetricSpec(CACHE_HITS, "counter", "authorization cache hits"),
    MetricSpec(CACHE_MISSES, "counter", "authorization cache misses"),
    MetricSpec(CACHE_INVALIDATED, "counter",
               "cached proofs dropped after revocation or expiry"),
    MetricSpec(CACHE_ENTRIES, "gauge", "live authorization cache entries"),
    MetricSpec(CACHE_EVICTED, "counter",
               "cache entries evicted by LRU capacity pressure"),
    MetricSpec(CACHE_NEGATIVE_HITS, "counter",
               "denials served from the negative cache"),
    MetricSpec(INCR_PUBLISHES, "counter",
               "usable credentials folded into the incremental graph"),
    MetricSpec(INCR_REVOCATIONS, "counter",
               "revocation deltas applied incrementally"),
    MetricSpec(INCR_EXPIRIES, "counter",
               "expiry deltas drained from the incremental heap"),
    MetricSpec(INCR_FAST_PROOFS, "counter",
               "queries answered from maintained reachability"),
    MetricSpec(INCR_FALLBACKS, "counter",
               "queries routed to the full search (attrs or non-simple graph)"),
    MetricSpec(INCR_DELTA_SIZE, "histogram",
               "roles newly reached per publish delta", COUNT_BUCKETS),
    MetricSpec(INCR_CONE_SIZE, "histogram",
               "principals recomputed per revoke/expire delta", COUNT_BUCKETS),
    MetricSpec(INCR_RECOMPUTE_RATIO, "histogram",
               "recomputed cone as a fraction of tracked principals"),
    MetricSpec(INCR_TRACKED, "gauge",
               "principals with maintained reachable sets"),
    MetricSpec(SWB_HANDSHAKES_INITIATED, "counter", "handshakes dialed"),
    MetricSpec(SWB_HANDSHAKES_ACCEPTED, "counter", "handshakes accepted (responder)"),
    MetricSpec(SWB_HANDSHAKES_REJECTED, "counter", "handshakes rejected (responder)"),
    MetricSpec(SWB_CHANNELS_OPENED, "counter", "channel ends opened"),
    MetricSpec(SWB_CHANNELS_CLOSED, "counter", "channel ends closed"),
    MetricSpec(SWB_CHANNELS_REVOKED, "counter", "channel ends flipped to REVOKED"),
    MetricSpec(SWB_CHANNELS_DEAD, "counter", "channel ends declared DEAD"),
    MetricSpec(SWB_CHANNELS_LIVE, "gauge", "currently live channel ends"),
    MetricSpec(SWB_FRAMES_SENT, "counter", "encrypted frames sent"),
    MetricSpec(SWB_FRAMES_RECEIVED, "counter", "encrypted frames accepted"),
    MetricSpec(SWB_BYTES_SENT, "counter", "ciphertext bytes sent"),
    MetricSpec(SWB_BYTES_RECEIVED, "counter", "ciphertext bytes accepted"),
    MetricSpec(SWB_REPLAYS_REJECTED, "counter", "frames dropped by sequence check"),
    MetricSpec(SWB_TAMPER_REJECTED, "counter", "frames dropped by MAC failure"),
    MetricSpec(SWB_RPC_CALLS, "counter", "remote calls issued over channels"),
    MetricSpec(SWB_RPC_FAILURES, "counter",
               "remote calls that failed or were aborted by teardown"),
    MetricSpec(SWB_RPC_LATENCY, "histogram",
               "virtual-time latency of completed channel RPCs"),
    MetricSpec(PLAN_ATTEMPTS, "counter", "planning requests"),
    MetricSpec(PLAN_SUCCESS, "counter", "planning requests that found a plan"),
    MetricSpec(PLAN_FAILURES, "counter", "planning requests that raised"),
    MetricSpec(PLAN_GOALS_EXPANDED, "histogram",
               "goals expanded per planning request", COUNT_BUCKETS),
    MetricSpec(PLAN_CANDIDATES, "histogram",
               "provider candidates examined per planning request", COUNT_BUCKETS),
    MetricSpec(PLAN_BACKTRACKS, "histogram",
               "tentative placements undone per planning request", COUNT_BUCKETS),
    MetricSpec(DEPLOY_DEPLOYMENTS, "counter", "plans deployed"),
    MetricSpec(DEPLOY_INSTANCES, "counter", "component instances created"),
    MetricSpec(DEPLOY_CREDENTIALS, "counter", "instance credentials issued"),
    MetricSpec(DEPLOY_DURATION, "histogram", "wall seconds per deployment"),
    MetricSpec(COHERENCE_ACQUIRES, "counter", "outermost image acquires"),
    MetricSpec(COHERENCE_RELEASES, "counter", "outermost image releases"),
    MetricSpec(COHERENCE_IMAGES_PULLED, "counter", "images merged into views"),
    MetricSpec(COHERENCE_IMAGES_PUSHED, "counter", "images merged into originals"),
    MetricSpec(NET_LINK_BYTES_CARRIED, "counter",
               "payload bytes carried across links (per link hop)"),
    MetricSpec(NET_LINK_FRAMES_DROPPED, "counter",
               "frames eaten by lossy links"),
    MetricSpec(NET_MESSAGES_REROUTED, "counter",
               "in-flight frames re-sent after their route died"),
    MetricSpec(NET_BATCH_FLUSHES, "counter", "frame batches put on the wire"),
    MetricSpec(NET_BATCH_FLUSHES_SIZE, "counter",
               "batch flushes triggered by size/byte thresholds"),
    MetricSpec(NET_BATCH_FLUSHES_TICK, "counter",
               "batch flushes triggered by the flush window elapsing"),
    MetricSpec(NET_BATCH_FRAMES_COALESCED, "counter",
               "logical frames carried inside multi-frame batches"),
    MetricSpec(NET_BATCH_BYTES, "counter",
               "payload bytes sent through the batching path"),
    MetricSpec(NET_BATCH_OCCUPANCY, "histogram",
               "logical frames per flushed batch", COUNT_BUCKETS),
    MetricSpec(RPC_PIPELINE_CALLS, "counter",
               "remote calls issued through an RpcPipeline"),
    MetricSpec(RPC_PIPELINE_DEPTH, "histogram",
               "in-flight calls observed at pipeline issue time", COUNT_BUCKETS),
    MetricSpec(RPC_WAIT_TIMEOUTS, "counter",
               "PendingCall.wait deadlines exceeded"),
    MetricSpec(RPC_RETRIES, "counter", "RPC frames retransmitted"),
    MetricSpec(RPC_RETRIES_EXHAUSTED, "counter",
               "retried calls that gave up without a response"),
    MetricSpec(SWB_CHANNELS_REESTABLISHED, "counter",
               "channels re-established after heartbeat loss"),
    MetricSpec(SWB_RECONNECT_LATENCY, "histogram",
               "virtual seconds from channel death to re-establishment"),
    MetricSpec(REPO_FAILOVERS, "counter",
               "repository queries answered by a replica after shard failure"),
    MetricSpec(ADAPT_REPLANS, "counter",
               "environment changes that triggered session re-planning"),
    MetricSpec(ADAPT_REDEPLOYMENTS, "counter",
               "sessions redeployed onto a new plan"),
    MetricSpec(ADAPT_FAILURES, "counter",
               "re-planning attempts that found no admissible plan"),
    MetricSpec(FAULTS_INJECTED_LINK, "counter", "link faults injected"),
    MetricSpec(FAULTS_INJECTED_PARTITION, "counter", "partition faults injected"),
    MetricSpec(FAULTS_INJECTED_NODE, "counter", "node-crash faults injected"),
    MetricSpec(FAULTS_INJECTED_LATENCY, "counter", "latency-spike faults injected"),
    MetricSpec(FAULTS_INJECTED_LOSS, "counter", "loss-burst faults injected"),
    MetricSpec(FAULTS_INJECTED_REVOCATION, "counter",
               "revocation storms injected"),
    MetricSpec(FAULTS_RECOVERED_LINK, "counter",
               "link faults healed with service recovered"),
    MetricSpec(FAULTS_RECOVERED_PARTITION, "counter",
               "partitions healed with service recovered"),
    MetricSpec(FAULTS_RECOVERED_NODE, "counter",
               "node crashes recovered (restart + re-plan)"),
    MetricSpec(FAULTS_RECOVERED_LATENCY, "counter",
               "latency spikes ridden out"),
    MetricSpec(FAULTS_RECOVERED_LOSS, "counter", "loss bursts ridden out"),
    MetricSpec(FAULTS_RECOVERED_REVOCATION, "counter",
               "revocation storms recovered by re-issuance"),
    MetricSpec(FAULTS_RECOVERY_LATENCY, "histogram",
               "virtual seconds from fault injection to verified recovery"),
    MetricSpec(FAULTS_INJECTED_RESTART, "counter",
               "crash-restart faults injected (volatile state dropped)"),
    MetricSpec(DURABLE_WAL_APPENDS, "counter", "WAL records appended"),
    MetricSpec(DURABLE_WAL_BYTES, "counter", "framed WAL bytes written"),
    MetricSpec(DURABLE_WAL_RECORDS, "gauge",
               "WAL records accumulated since the last snapshot"),
    MetricSpec(DURABLE_SNAPSHOTS, "counter",
               "snapshots installed by WAL compaction"),
    MetricSpec(DURABLE_TORN_TAILS, "counter",
               "recoveries that found a torn WAL tail"),
    MetricSpec(DURABLE_TORN_BYTES, "counter",
               "unusable torn-tail bytes discarded at recovery"),
    MetricSpec(RECOVER_RESTARTS, "counter", "node recovery passes completed"),
    MetricSpec(RECOVER_REPLAYED, "counter",
               "WAL records replayed during recovery"),
    MetricSpec(RECOVER_CATCHUP, "counter",
               "missed updates pulled from a live replica at recovery"),
    MetricSpec(RECOVER_CACHE_EVICTED, "counter",
               "cache entries evicted as unprovable from durable state"),
    MetricSpec(RECOVER_CACHE_KEPT, "counter",
               "cache entries revalidated and re-watched after recovery"),
    MetricSpec(RECOVER_WORK, "histogram",
               "deterministic work units per recovery pass", COUNT_BUCKETS),
    MetricSpec(RECOVER_SHARD_REBUILDS, "counter",
               "repository shards rebuilt from replicas after data loss"),
    MetricSpec(TRACE_DROPPED, "counter",
               "finished root spans evicted by the tracer retention bound"),
    MetricSpec(FLOW_ADMITTED, "counter",
               "requests admitted past flow-control admission"),
    MetricSpec(FLOW_SHED, "counter",
               "requests refused by flow-control admission"),
    MetricSpec(FLOW_BUCKET_DENIED, "counter",
               "admissions refused by a per-principal token bucket"),
    MetricSpec(FLOW_QUEUE_DEPTH, "histogram",
               "fair-queue backlog observed at each admission", COUNT_BUCKETS),
    MetricSpec(FLOW_QUEUE_WAIT, "histogram",
               "virtual seconds admitted requests spent queued"),
    MetricSpec(FLOW_SERVICE_BUSY, "gauge",
               "service worker slots currently occupied"),
    MetricSpec(FLOW_LIMITER_LIMIT, "gauge",
               "current AIMD concurrency window"),
    MetricSpec(FLOW_LIMITER_BACKOFFS, "counter",
               "multiplicative decreases of an AIMD window"),
    MetricSpec(FLOW_LIMITER_RAISES, "counter",
               "additive increases of an AIMD window"),
    MetricSpec(FLOW_BREAKER_OPENS, "counter",
               "circuit-breaker trips into the OPEN state"),
    MetricSpec(FLOW_BREAKER_SHORT_CIRCUITS, "counter",
               "calls refused locally by an open circuit breaker"),
    MetricSpec(FLOW_BREAKER_PROBES, "counter",
               "half-open probe calls admitted through a breaker"),
    MetricSpec(FLOW_RETRY_AFTER_HONORED, "counter",
               "retransmissions delayed to honor a shed retry-after hint"),
    MetricSpec(CHECK_OPS, "counter", "simtest operations executed"),
    MetricSpec(CHECK_COMPARISONS, "counter",
               "simtest oracle comparisons performed"),
    MetricSpec(CHECK_DIVERGENCES, "counter",
               "simtest runs stopped by an oracle divergence"),
    MetricSpec(CHECK_RPC_NET_FAILURES, "counter",
               "simtest RPC ops that failed at the network layer "
               "(admissible only under chaos)"),
    MetricSpec(CHECK_SHRINK_PROBES, "counter",
               "candidate traces executed while delta-debugging"),
    MetricSpec(CHECK_SHRINK_REMOVED, "counter",
               "operations removed from failing traces by the shrinker"),
)


def catalogue_by_name() -> dict[str, MetricSpec]:
    """Name → spec; raises if the catalogue itself carries duplicates."""
    out: dict[str, MetricSpec] = {}
    for spec in CATALOGUE:
        if spec.name in out:
            raise ValueError(f"metric {spec.name!r} catalogued twice")
        out[spec.name] = spec
    return out
