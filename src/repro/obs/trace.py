"""Trace spans: nested, named timing scopes over any :class:`repro.clock.Clock`.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span pushes it on the tracer's stack so spans opened inside it become its
children (proof searches nested under a deployment, image pulls nested
under an RPC).  Durations come from the tracer's clock — wall time by
default, but passing the simulation's :class:`~repro.net.events.
EventScheduler` (or a :class:`~repro.clock.ManualClock`) makes spans
measure *virtual* time, which is what deterministic experiments want.

The :data:`NULL_TRACER` twin turns every ``span()`` into a shared no-op
context manager so disabled runs pay one call per site.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Optional

from ..clock import Clock


class PerfClock:
    """Monotonic wall clock (the default tracer time source)."""

    def now(self) -> float:
        return time.perf_counter()


class Span:
    """One named timing scope, usable as a context manager."""

    __slots__ = (
        "name", "attributes", "start", "end",
        "parent", "children", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.parent: Optional[Span] = None
        self.children: list[Span] = []
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Elapsed clock time; measured up to *now* while still open."""
        end = self.end if self.end is not None else self._tracer.clock.now()
        return end - self.start

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth, node = depth + 1, node.parent
        return depth

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes after the span is open."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._exit(self)

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.end is not None else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Produces nested spans and retains the most recent finished ones.

    Retention is bounded (``max_spans``) so long-lived processes do not
    grow without limit; only *root* spans count against the bound, and a
    root carries its whole subtree.
    """

    def __init__(self, clock: Clock | None = None, *, max_spans: int = 4096) -> None:
        self.clock: Clock = clock if clock is not None else PerfClock()
        self.finished: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; use ``with tracer.span("psf.deploy"):``."""
        return Span(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def roots(self) -> list[Span]:
        """Finished top-level spans, oldest first."""
        return list(self.finished)

    def find(self, name: str) -> list[Span]:
        """Every retained span (at any depth) with the given name."""
        out: list[Span] = []

        def walk(span: Span) -> None:
            if span.name == name:
                out.append(span)
            for child in span.children:
                walk(child)

        for root in self.finished:
            walk(root)
        return out

    def reset(self) -> None:
        self.finished.clear()
        self._stack.clear()

    # -- span lifecycle (driven by Span.__enter__/__exit__) ---------------

    def _enter(self, span: Span) -> None:
        span.start = self.clock.now()
        parent = self._stack[-1] if self._stack else None
        span.parent = parent
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.end = self.clock.now()
        # Pop through abandoned children defensively: a span leaked by an
        # exception between enter and exit must not corrupt the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if span.parent is None:
            self.finished.append(span)


class NullSpan:
    """Shared no-op span for disabled tracing."""

    __slots__ = ()
    name = "<null>"
    attributes: dict = {}
    start = 0.0
    end = 0.0
    duration = 0.0
    children: list = []
    parent = None

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class NullTracer(Tracer):
    """Disabled-mode tracer: every span is the shared :class:`NullSpan`."""

    def __init__(self) -> None:
        super().__init__(PerfClock(), max_spans=1)

    def span(self, name: str, **attributes: Any) -> Span:  # type: ignore[override]
        return NULL_SPAN  # type: ignore[return-value]


NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()
