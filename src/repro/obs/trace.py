"""Trace spans: nested, named timing scopes over any :class:`repro.clock.Clock`.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span pushes it on the tracer's stack so spans opened inside it become its
children (proof searches nested under a deployment, image pulls nested
under an RPC).  Durations come from the tracer's clock — wall time by
default, but passing the simulation's :class:`~repro.net.events.
EventScheduler` (or a :class:`~repro.clock.ManualClock`) makes spans
measure *virtual* time, which is what deterministic experiments want.

Beyond stack-scoped ``with`` spans, the tracer supports the distributed
tracing shapes :mod:`repro.obs.dist` needs:

* **Identifiers.**  Every entered span carries a ``trace_id`` / ``span_id``
  pair minted from per-tracer counters (deterministic under
  ``obs.scoped``), with ``parent_id`` linking children to parents — the
  W3C trace-context triple, kept as ints and hex-formatted only at
  export time.
* **Manual spans** (:meth:`Tracer.start` / :meth:`Span.finish`) for
  operations that outlive a call frame — an RPC future that completes
  events later — without touching the ambient stack.
* **Remote parents.**  ``tracer.start(name, remote=(trace_id, span_id))``
  continues a trace propagated across the simulated wire: the span is a
  local root (it lands in ``finished`` on its own) but records the remote
  parent so exports stitch client and server sides into one trace.
* **Activation** (:meth:`Tracer.activate`) temporarily pushes an
  already-started manual span onto the stack so synchronous work done on
  its behalf (a transport send, a server dispatch) nests under it.

The :data:`NULL_TRACER` twin turns every ``span()`` into a shared no-op
context manager so disabled runs pay one call per site.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional


from ..clock import Clock


class PerfClock:
    """Monotonic wall clock (the default tracer time source)."""

    def now(self) -> float:
        return time.perf_counter()


class Span:
    """One named timing scope, usable as a context manager."""

    __slots__ = (
        "name", "attributes", "start", "end",
        "parent", "children", "_tracer",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.parent: Optional[Span] = None
        self.children: list[Span] = []
        self._tracer = tracer
        self.trace_id: int = 0
        self.span_id: int = 0
        self.parent_id: int = 0
        """Span id of the parent — local or *remote* (propagated across
        the wire); 0 means this span starts its trace."""

    @property
    def duration(self) -> float:
        """Elapsed clock time; measured up to *now* while still open."""
        end = self.end if self.end is not None else self._tracer.clock.now()
        return end - self.start

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth, node = depth + 1, node.parent
        return depth

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes after the span is open."""
        self.attributes.update(attributes)
        return self

    def set_error(self, error: str) -> "Span":
        """Tag the span as failed with a typed error name."""
        self.attributes["error"] = error
        return self

    @property
    def ok(self) -> bool:
        return "error" not in self.attributes

    def finish(self) -> "Span":
        """End a manually started span (idempotent)."""
        if self.end is None:
            self._tracer._finish_manual(self)
        return self

    def context(self) -> tuple[int, int]:
        """The (trace_id, span_id) pair to propagate across the wire."""
        return (self.trace_id, self.span_id)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible subtree dump (flight recorder / exports)."""
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": format_trace_id(self.trace_id),
            "span_id": format_span_id(self.span_id),
            "start": round(self.start, 9),
        }
        if self.parent_id:
            out["parent_id"] = format_span_id(self.parent_id)
        if self.end is not None:
            out["end"] = round(self.end, 9)
        else:
            out["open"] = True
        if self.attributes:
            out["attributes"] = {k: self.attributes[k] for k in sorted(self.attributes)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._exit(self)

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.end is not None else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


def format_trace_id(trace_id: int) -> str:
    """W3C-style 16-byte hex trace id."""
    return f"{trace_id:032x}"


def format_span_id(span_id: int) -> str:
    """W3C-style 8-byte hex span id."""
    return f"{span_id:016x}"


class Tracer:
    """Produces nested spans and retains the most recent finished ones.

    Retention is bounded (``max_spans``) so long-lived processes do not
    grow without limit; only *root* spans count against the bound, and a
    root carries its whole subtree.  Evicting a root is counted in
    ``dropped`` and the catalogued ``obs.trace.dropped`` metric so
    truncated exports are visible instead of silent.
    """

    def __init__(self, clock: Clock | None = None, *, max_spans: int = 4096) -> None:
        self.clock: Clock = clock if clock is not None else PerfClock()
        self.finished: deque[Span] = deque(maxlen=max_spans)
        self.dropped = 0
        """Root spans evicted from ``finished`` by the retention bound."""
        self._stack: list[Span] = []
        self._next_trace_id = 1
        self._next_span_id = 1

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; use ``with tracer.span("psf.deploy"):``."""
        return Span(self, name, attributes)

    def start(
        self,
        name: str,
        *,
        parent: Span | None = None,
        remote: tuple[int, int] | None = None,
        **attributes: Any,
    ) -> Span:
        """Start a manually managed span (ended with :meth:`Span.finish`).

        ``parent`` attaches the span under a local span (its subtree);
        ``remote`` continues a trace propagated from another node — the
        span becomes a local root carrying the remote ``parent_id``.
        With neither, the span roots a fresh trace.  The span is *not*
        pushed on the stack; use :meth:`activate` for that.
        """
        span = Span(self, name, attributes)
        span.start = self.clock.now()
        self._assign_ids(span, parent=parent, remote=remote)
        if parent is not None:
            span.parent = parent
            parent.children.append(span)
        return span

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Push an already-started span for the duration of the block so
        stack-scoped spans opened inside nest under it."""
        self._stack.append(span)
        try:
            yield span
        finally:
            while self._stack:
                if self._stack.pop() is span:
                    break

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def roots(self) -> list[Span]:
        """Finished top-level spans, oldest first."""
        return list(self.finished)

    def find(self, name: str) -> list[Span]:
        """Every retained span (at any depth) with the given name."""
        out: list[Span] = []

        def walk(span: Span) -> None:
            if span.name == name:
                out.append(span)
            for child in span.children:
                walk(child)

        for root in self.finished:
            walk(root)
        return out

    def reset(self) -> None:
        self.finished.clear()
        self._stack.clear()
        self.dropped = 0
        self._next_trace_id = 1
        self._next_span_id = 1

    # -- id minting ---------------------------------------------------------

    def _assign_ids(
        self,
        span: Span,
        *,
        parent: Span | None,
        remote: tuple[int, int] | None = None,
    ) -> None:
        span.span_id = self._next_span_id
        self._next_span_id += 1
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        elif remote is not None:
            span.trace_id, span.parent_id = remote
        else:
            span.trace_id = self._next_trace_id
            self._next_trace_id += 1

    # -- span lifecycle (driven by Span.__enter__/__exit__) ---------------

    def _enter(self, span: Span) -> None:
        span.start = self.clock.now()
        parent = self._stack[-1] if self._stack else None
        span.parent = parent
        self._assign_ids(span, parent=parent)
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.end = self.clock.now()
        # Pop through abandoned children defensively: a span leaked by an
        # exception between enter and exit must not corrupt the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if span.parent is None:
            self._record(span)

    def _finish_manual(self, span: Span) -> None:
        span.end = self.clock.now()
        if span.parent is None:
            self._record(span)

    def _record(self, span: Span) -> None:
        if (
            self.finished.maxlen is not None
            and len(self.finished) == self.finished.maxlen
        ):
            self.dropped += 1
            _count_dropped()
        self.finished.append(span)


def _count_dropped() -> None:
    # Function-level import: the obs package is importing this module at
    # load time, but is fully initialised by the first eviction.
    from . import counter
    from .names import TRACE_DROPPED

    counter(TRACE_DROPPED).inc()


class NullSpan:
    """Shared no-op span for disabled tracing."""

    __slots__ = ()
    name = "<null>"
    attributes: dict = {}
    start = 0.0
    end = 0.0
    duration = 0.0
    children: list = []
    parent = None
    trace_id = 0
    span_id = 0
    parent_id = 0
    ok = True

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def set_error(self, error: str) -> "NullSpan":
        return self

    def finish(self) -> "NullSpan":
        return self

    def context(self) -> tuple[int, int]:
        return (0, 0)

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class NullTracer(Tracer):
    """Disabled-mode tracer: every span is the shared :class:`NullSpan`."""

    def __init__(self) -> None:
        super().__init__(PerfClock(), max_spans=1)

    def span(self, name: str, **attributes: Any) -> Span:  # type: ignore[override]
        return NULL_SPAN  # type: ignore[return-value]

    def start(self, name: str, **kwargs: Any) -> Span:  # type: ignore[override]
        return NULL_SPAN  # type: ignore[return-value]


NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()
