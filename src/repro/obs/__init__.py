"""repro.obs — process-local observability: metrics and trace spans.

Usage from instrumented code::

    from .. import obs
    from ..obs import names

    obs.counter(names.PROOF_SEARCHES).inc()
    obs.histogram(names.PROOF_EDGES_VISITED).observe(edges)
    with obs.span("psf.deploy", plan=len(plan.components)):
        ...

The module holds one active :class:`MetricsRegistry`, one
:class:`Tracer`, and one :class:`EventLog` per process.  :func:`disable`
swaps all three for shared null twins, making every instrumentation site
a single no-op method call — the zero-cost mode benchmarks run under
(also reachable via the ``REPRO_OBS=0`` environment variable).
:func:`scoped` installs fresh state for the duration of a ``with`` block
so tests and differential experiments read counters in isolation.

Distributed tracing adds a second, independent gate: the ``dist`` flag
(:func:`dist_enabled`, set per :func:`scoped` block).  It controls
whether RPC layers *mint and propagate* trace context inside wire frames
— which changes frame bytes, hence virtual transfer timings — so it
defaults off and is switched on only by harnesses that want stitched
cross-node traces (``python -m repro trace``) and by tests.  Local spans,
events, and the flight recorder work regardless of ``dist``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..clock import Clock
from . import names
from .events import NULL_EVENT_LOG, Event, EventLog, NullEventLog
from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .trace import NULL_TRACER, NullTracer, PerfClock, Span, Tracer
from . import flight as _flight

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "Span", "Tracer", "NullTracer", "PerfClock",
    "Event", "EventLog", "NullEventLog",
    "COUNT_BUCKETS", "DEFAULT_BUCKETS",
    "counter", "gauge", "histogram", "span", "event",
    "get_registry", "get_tracer", "get_event_log", "set_tracer_clock",
    "enable", "disable", "is_enabled", "dist_enabled", "reset", "scoped",
    "flight_snapshot",
    "snapshot", "format_snapshot", "names",
]

_CATALOGUE_BUCKETS: dict[str, tuple[float, ...]] = {
    spec.name: spec.buckets
    for spec in names.CATALOGUE
    if spec.buckets is not None
}


class _ObsState:
    """The process-wide active registry + tracer + event-log triple."""

    __slots__ = ("registry", "tracer", "events", "enabled", "dist")

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.dist = False
        self.registry: MetricsRegistry = (
            MetricsRegistry() if enabled else NULL_REGISTRY
        )
        self.tracer: Tracer = Tracer() if enabled else NULL_TRACER
        self.events: EventLog = EventLog() if enabled else NULL_EVENT_LOG


_state = _ObsState(os.environ.get("REPRO_OBS", "1").lower() not in ("0", "false", "off"))


# -- instrument access (the calls instrumented modules make) ----------------

def counter(name: str) -> Counter:
    return _state.registry.counter(name)


def gauge(name: str) -> Gauge:
    return _state.registry.gauge(name)


def histogram(name: str, buckets: Sequence[float] | None = None) -> Histogram:
    """A histogram, defaulting to the catalogue's bucket layout for known
    names (so count-shaped metrics get count-shaped buckets)."""
    if buckets is None:
        buckets = _CATALOGUE_BUCKETS.get(name)
    return _state.registry.histogram(name, buckets)


def span(name: str, **attributes: Any) -> Span:
    return _state.tracer.span(name, **attributes)


def event(kind: str, /, **fields: Any) -> Event:
    """Emit a structured event record (a no-op when observation is off)."""
    return _state.events.emit(kind, **fields)


# -- mode control -----------------------------------------------------------

def is_enabled() -> bool:
    return _state.enabled


def dist_enabled() -> bool:
    """True when RPC layers should mint/propagate wire trace context."""
    return _state.enabled and _state.dist


def enable() -> None:
    """Turn observation on (fresh state if it was off)."""
    if not _state.enabled:
        _state.enabled = True
        _state.registry = MetricsRegistry()
        _state.tracer = Tracer()
        _state.events = EventLog()


def disable() -> None:
    """Swap in the null twins; every instrumentation site becomes a no-op."""
    _state.enabled = False
    _state.dist = False
    _state.registry = NULL_REGISTRY
    _state.tracer = NULL_TRACER
    _state.events = NULL_EVENT_LOG


def get_registry() -> MetricsRegistry:
    return _state.registry


def get_tracer() -> Tracer:
    return _state.tracer


def get_event_log() -> EventLog:
    return _state.events


def set_tracer_clock(clock: Clock) -> None:
    """Point the active tracer (and event log) at a different time source
    (e.g. the simulation's event scheduler, so spans and events carry
    virtual time)."""
    _state.tracer.clock = clock
    _state.events.clock = clock


def reset() -> None:
    """Clear all metrics, spans, and events without changing the mode."""
    _state.registry.reset()
    _state.tracer.reset()
    _state.events.reset()


@contextmanager
def scoped(
    *, enabled: bool = True, clock: Clock | None = None, dist: bool | None = None
) -> Iterator[MetricsRegistry]:
    """Install a fresh registry/tracer/event log for the block, then restore.

    ``dist=True`` additionally turns on wire trace-context propagation for
    the block; ``None`` inherits the surrounding setting.  Yields the
    scoped registry so callers can read counters directly::

        with obs.scoped() as reg:
            engine.find_proof(...)
        assert reg.counter_value(names.PROOF_FOUND) == 1
    """
    saved = (_state.enabled, _state.dist, _state.registry, _state.tracer, _state.events)
    _state.enabled = enabled
    if dist is not None:
        _state.dist = dist and enabled
    _state.registry = MetricsRegistry() if enabled else NULL_REGISTRY
    _state.tracer = Tracer(clock) if enabled else NULL_TRACER
    _state.events = EventLog(clock) if enabled else NULL_EVENT_LOG
    try:
        yield _state.registry
    finally:
        (_state.enabled, _state.dist, _state.registry,
         _state.tracer, _state.events) = saved


# -- flight recorder --------------------------------------------------------

def flight_snapshot(reason: str, **kwargs: Any) -> dict:
    """Freeze the last-N events + live/recent spans as replayable JSON
    (see :mod:`repro.obs.flight`)."""
    return _flight.snapshot(_state.tracer, _state.events, reason=reason, **kwargs)


# -- reporting --------------------------------------------------------------

def snapshot() -> dict:
    """JSON-compatible dump of the active registry."""
    return _state.registry.snapshot()


def format_snapshot(snap: dict | None = None) -> str:
    """Human-readable snapshot (the ``repro stats`` text format)."""
    snap = snapshot() if snap is None else snap
    lines: list[str] = []
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    if counters:
        lines.append("== counters ==")
        width = max(len(n) for n in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if gauges:
        lines.append("== gauges ==")
        width = max(len(n) for n in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name.ljust(width)}  {_fmt(value)}")
    if histograms:
        lines.append("== histograms ==")
        width = max(len(n) for n in histograms)
        for name, summary in histograms.items():
            if summary.get("count", 0) == 0:
                lines.append(f"  {name.ljust(width)}  count=0")
                continue
            lines.append(
                f"  {name.ljust(width)}  count={summary['count']}"
                f" sum={_fmt(summary['sum'])}"
                f" min={_fmt(summary['min'])} max={_fmt(summary['max'])}"
                f" p50={_fmt(summary['p50'])} p95={_fmt(summary['p95'])}"
                f" p99={_fmt(summary['p99'])}"
            )
    if not lines:
        lines.append("(no metrics recorded; observability may be disabled)")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"
