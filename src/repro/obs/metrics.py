"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The paper's evaluation (Tables 1–5) is entirely quantitative — delegation
creation cost, proof-search latency, VIG compilation time, SSO overhead —
so the reproduction instruments its own hot paths.  A
:class:`MetricsRegistry` owns every metric created under it; instruments
are cheap enough to leave on (an attribute bump per event), and the
``Null*`` twins make the disabled mode cost one no-op method call.

Metrics are process-local and single-threaded by design: the whole
simulation runs on one discrete-event loop, so there is no locking.
Snapshots are plain JSON-compatible dicts, ready for ``repro stats`` and
for the benchmark harness to embed next to wall-clock results.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

# Default histogram buckets: geometric upper bounds covering microseconds
# to minutes of latency *and* small discrete counts (chain lengths, edges
# visited).  Individual metrics may override via the names catalogue.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0,
)

COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)
"""Bucket layout for discrete-count histograms (edges, goals, depths)."""


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (live channels, cache entries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    Buckets are cumulative-style upper bounds plus an implicit +inf
    overflow bucket.  Quantiles are estimated by linear interpolation
    inside the bucket containing the target rank — the standard
    fixed-bucket estimator, accurate to bucket width.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} buckets must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = self.counts[i]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                # Interpolate within [lower, bound], clamped to observed range.
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
            lower = bound
        return self.max  # rank falls in the overflow bucket

    def summary(self) -> dict:
        """JSON-compatible digest: count, sum, min/max, p50/p95/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class NullCounter:
    """No-op counter: the disabled-mode stand-in."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    name = "<null>"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Owns every metric created under one observation scope.

    Metric creation is idempotent per name; asking for an existing name
    with a *different* metric kind raises — the guard the test-time
    self-check leans on to catch typo'd or conflicting metric names.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation / lookup -------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unclaimed(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unclaimed(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unclaimed(name, "histogram")
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def _check_unclaimed(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot re-register as a {kind}"
                )

    # -- introspection -----------------------------------------------------

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def kinds(self) -> dict[str, str]:
        out = {name: "counter" for name in self._counters}
        out.update({name: "gauge" for name in self._gauges})
        out.update({name: "histogram" for name in self._histograms})
        return out

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def snapshot(self) -> dict:
        """JSON-compatible dump of every live metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (tests and benchmark iterations)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullRegistry(MetricsRegistry):
    """Disabled-mode registry: hands out shared no-op instruments.

    Creation records nothing and lookups allocate nothing, so an
    un-instrumented (observability-off) run pays one method call per
    instrumentation site and holds no state.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str, buckets: Iterable[float] | None = None) -> Histogram:  # type: ignore[override]
        return NULL_HISTOGRAM  # type: ignore[return-value]


NULL_REGISTRY = NullRegistry()
