"""The ``python -m repro trace`` scenario: one stitched cross-node trace.

Builds the smallest world that exercises every distributed-tracing hop —
a client and a server star-linked over a lossy-capable simulated link,
frame batching on, an authorization- and view-guarded key-value object
exported over plain RPC — and replays a short fixed workload through it
with wire trace-context propagation (``dist``) enabled.  The result is a
Chrome/Perfetto trace-event JSON object in which a single trace id ties
together:

* the client-side ``rpc.client`` span (and, under ``--chaos``, one
  ``rpc.attempt`` child per retransmission),
* the transport's ``net.transmit`` spans for the batches that carried
  the frames,
* the server-side ``rpc.server`` span, with the dRBAC
  ``drbac.proof.search`` and ``views.acl.resolve`` spans nested under
  it, and
* the structured event log (auth verdicts, retries, frame losses) as
  thread-scoped instants.

Chaos mode sets a 35 % frame-loss rate on the link and issues every call
through :meth:`~repro.switchboard.rpc.PlainRpcEndpoint.call_with_retry`
with a seeded exponential backoff policy, so the exported trace shows
the full at-least-once story: lost transmissions, per-attempt spans, and
the attempt that finally stitched to a server span.

Everything runs over virtual time under ``hermetic_counters`` inside a
``dist``-enabled :func:`repro.obs.scoped` block, so one seed produces a
byte-identical export — the property the CI determinism step diffs.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..crypto import KeyStore
from ..drbac import DrbacEngine
from ..drbac.cache import CachedAuthorizer
from ..faults.retry import RetryPolicy
from ..hermetic import hermetic_counters
from ..net.events import EventScheduler
from ..net.simnet import Network
from ..net.transport import Transport
from ..switchboard.rpc import PlainRpcEndpoint
from ..views.acl import ViewAccessPolicy
from .export import to_chrome_trace

SCHEMA = "repro-trace/v1"

#: Role the legitimate client holds; ``mallory`` never does.
CLIENT_ROLE = "Trace.Client"

#: Frame-loss probability the chaos variant applies to the only link.
CHAOS_LOSS_RATE = 0.35


class TracedKV:
    """Guarded key-value object: every call authorizes *and* resolves a view.

    Serving one RPC therefore produces, under the activated ``rpc.server``
    span, both a ``drbac.proof.search`` child (on cache misses) and a
    ``views.acl.resolve`` child — the server-side half of the stitched
    trace — plus ``auth.decision`` / ``view.resolve`` audit events.
    """

    def __init__(
        self,
        authorizer: CachedAuthorizer,
        policy: ViewAccessPolicy,
        engine: DrbacEngine,
        *,
        initial: dict[str, str],
    ) -> None:
        self._authorizer = authorizer
        self._policy = policy
        self._engine = engine
        self._data = dict(initial)

    def _admit(self, subject: str) -> str | None:
        self._authorizer.authorize(subject, CLIENT_ROLE)
        decision = self._policy.resolve(subject, self._engine)
        return decision.view_name if decision is not None else None

    def get(self, subject: str, key: str) -> str | None:
        self._admit(subject)
        return self._data.get(key)

    def put(self, subject: str, key: str, value: str) -> str | None:
        self._admit(subject)
        old = self._data.get(key)
        self._data[key] = value
        return old

    def check(self, subject: str) -> list:
        """Never raises: the anonymous default view admits strangers."""
        ok = self._authorizer.is_authorized(subject, CLIENT_ROLE)
        decision = self._policy.resolve(subject, self._engine)
        return [ok, decision.view_name if decision is not None else None]


#: The fixed workload: enough shape to cover grant/deny, cache miss/hit,
#: member/anonymous view resolution, and (under chaos) retransmission.
_OPS: tuple[tuple[str, list], ...] = (
    ("put", ["alice", "greeting", "hello"]),      # miss -> proof search
    ("get", ["alice", "greeting"]),               # cache hit
    ("check", ["alice"]),                         # member view
    ("get", ["mallory", "greeting"]),             # denial -> RemoteError
    ("check", ["mallory"]),                       # anonymous default view
)


def run_trace(
    seed: int, *, chaos: bool = False, key_store: KeyStore | None = None
) -> dict[str, Any]:
    """Run the traced scenario and return its Chrome trace-event JSON."""
    key_store = key_store or KeyStore(key_bits=512)
    with hermetic_counters(), obs.scoped(enabled=True, dist=True):
        scheduler = EventScheduler()
        obs.set_tracer_clock(scheduler)
        network = Network()
        network.add_node("client", domain="TRACE")
        network.add_node("server", domain="TRACE")
        network.add_link(
            "client",
            "server",
            latency_s=0.004,
            bandwidth_bps=8e6,
            secure=False,
            loss_rate=CHAOS_LOSS_RATE if chaos else 0.0,
        )
        transport = Transport(network, scheduler, loss_seed=seed)
        transport.configure_batching(max_frames=4, window=0.002)

        # Full-search engine: the demo's point is the stitched
        # client→server→proof-search span chain, and the incremental fast
        # path would answer the cache miss without ever opening a
        # drbac.proof.search span.
        engine = DrbacEngine(key_store=key_store, clock=scheduler, incremental=False)
        engine.delegate("Trace", "alice", CLIENT_ROLE)
        authorizer = CachedAuthorizer(engine, max_entries=8, shards=2)
        policy = ViewAccessPolicy("TraceKV")
        policy.allow(CLIENT_ROLE, "ViewTraceKV_Member")
        policy.allow("others", "ViewTraceKV_Anonymous")
        store = TracedKV(
            authorizer, policy, engine, initial={"greeting": "init"}
        )
        server = PlainRpcEndpoint(transport, "server")
        server.exporter.export("TraceKV", store)
        client = PlainRpcEndpoint(transport, "client")

        retry_policy = RetryPolicy.exponential(
            base_delay=0.05, max_attempts=6, max_delay=1.0, jitter=0.1,
            seed=seed,
        )
        results: list[list[str]] = []
        for method, args in _OPS:
            if chaos:
                pending = client.call_with_retry(
                    "server", "TraceKV", method, args, policy=retry_policy
                )
            else:
                pending = client.call("server", "TraceKV", method, args)
            try:
                value = pending.wait(timeout=60.0)
                results.append([method, "ok", repr(value)])
            except Exception as exc:  # noqa: BLE001 - outcome goes in the report
                results.append([method, "error", type(exc).__name__])
        # Drain leftover retry checks and batch-window flushes so every
        # span is finished before export.
        while scheduler.step():
            pass

        log = obs.get_event_log()
        return to_chrome_trace(
            obs.get_tracer(),
            log,
            other_data={
                "schema": SCHEMA,
                "seed": seed,
                "chaos": chaos,
                "virtual_makespan_s": round(scheduler.now(), 9),
                "ops": results,
                "auth_decisions": len(log.find("auth.decision")),
                "view_resolutions": len(log.find("view.resolve")),
                "retries": len(log.find("rpc.retry")),
                "frames_lost": len(log.find("net.loss")),
            },
        )
