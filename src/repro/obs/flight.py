"""Flight recorder: one-call post-mortem capture of recent history.

When a harness trips — a chaos invariant sweep fails, a simtest oracle
diverges, a bench-load transcript mismatches — the interesting state is
*what just happened*: the last few thousand structured events, whatever
spans are still open on the stack, and the most recent finished traces.
:func:`snapshot` freezes all three into one JSON-compatible dict that the
harness embeds in its report (or writes beside the shrunk repro), so a
failure seen in CI can be read — and, because everything is derived from
virtual time and seeded RNG, *re-derived* by replaying the same seed.

The capture is deterministic: same seed, same trip point → byte-identical
snapshot.
"""

from __future__ import annotations

from typing import Any

from .events import EventLog
from .trace import Tracer

SCHEMA = "flightrec/v1"

DEFAULT_TAIL_EVENTS = 256
DEFAULT_RECENT_ROOTS = 16


def snapshot(
    tracer: Tracer,
    log: EventLog,
    *,
    reason: str,
    tail_events: int = DEFAULT_TAIL_EVENTS,
    recent_roots: int = DEFAULT_RECENT_ROOTS,
) -> dict[str, Any]:
    """Freeze the recorder's view of the world into replayable JSON.

    ``reason`` names the trip wire ("chaos.invariant", "simtest.divergence",
    "load.transcript_mismatch", …).  ``tail_events`` bounds the event dump;
    ``recent_roots`` bounds how many finished root span trees ride along.
    """
    roots = list(tracer.finished)
    if recent_roots < len(roots):
        roots = roots[-recent_roots:]
    return {
        "schema": SCHEMA,
        "reason": reason,
        "at": round(log.clock.now(), 9),
        "events_dropped": log.dropped,
        "events": [e.to_dict() for e in log.tail(tail_events)],
        "live_spans": [s.to_dict() for s in tracer._stack],
        "spans_dropped": tracer.dropped,
        "recent_roots": [s.to_dict() for s in roots],
    }
