"""The trace: a replayable, shrinkable list of simulation operations.

A :class:`Trace` is plain data — operations plus the fault schedule —
so a failing run can be dumped to JSON, mailed around, reloaded with
``python -m repro simtest --replay FILE``, and cut down by the shrinker
without ever re-running the generator.

Every operation that refers to a credential does so through a stable
``ref`` string assigned at generation time (``d0``, ``d1``, ...), never
through process-global credential serials.  A ``publish`` or ``revoke``
whose ``ref`` is missing from the (possibly shrunken) trace is a
deterministic no-op in both the executor and the oracles, which is what
lets delta debugging delete arbitrary subsets and still replay the rest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..faults.plan import FaultEvent, FaultKind, FaultPlan

SCHEMA = "simtest/v1"

#: Operation kinds a trace may contain (see gen.py for their arguments).
OP_KINDS = frozenset(
    {
        "delegate",
        "publish",
        "revoke",
        "authorize",
        "view_resolve",
        "view_read",
        "view_write",
        "rpc_get",
        "rpc_put",
        "rpc_check",
        "advance",
    }
)


@dataclass(frozen=True, slots=True)
class Op:
    """One operation: a kind plus JSON-scalar arguments."""

    kind: str
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown simtest op kind {self.kind!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.kind, **{k: self.args[k] for k in sorted(self.args)}}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Op":
        payload = dict(data)
        kind = payload.pop("op")
        return cls(kind=kind, args=payload)

    def describe(self) -> str:
        detail = " ".join(f"{k}={self.args[k]}" for k in sorted(self.args))
        return f"{self.kind} {detail}".strip()


class Trace:
    """A seeded workload plus its (optional) fault schedule."""

    def __init__(
        self,
        *,
        seed: int,
        ops: list[Op],
        chaos: bool = False,
        faults: list[dict] | None = None,
    ) -> None:
        self.seed = seed
        self.ops = list(ops)
        self.chaos = chaos
        self.faults = [dict(f) for f in (faults or [])]

    def __len__(self) -> int:
        return len(self.ops)

    def with_ops(self, ops: list[Op]) -> "Trace":
        """The same world (seed, faults) replaying a different op list —
        how the shrinker probes candidate subsets."""
        return Trace(seed=self.seed, ops=list(ops), chaos=self.chaos,
                     faults=self.faults)

    def fault_plan(self) -> FaultPlan:
        plan = FaultPlan()
        for entry in self.faults:
            plan.add(
                FaultEvent(
                    at=entry["at"],
                    kind=FaultKind(entry["kind"]),
                    duration=entry.get("duration", 0.0),
                    params=dict(entry.get("params", {})),
                )
            )
        return plan

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "chaos": self.chaos,
            "faults": self.faults,
            "ops": [op.to_dict() for op in self.ops],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} trace (schema={data.get('schema')!r})"
            )
        return cls(
            seed=int(data["seed"]),
            ops=[Op.from_dict(entry) for entry in data["ops"]],
            chaos=bool(data.get("chaos", False)),
            faults=list(data.get("faults", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))
