"""Reference oracles: the semantics of the stack in a page of Python.

Each oracle is a deliberately naive executable model — no caching, no
sharding, no signatures, no network — of one subsystem's *observable*
behaviour.  The executor replays a trace against the real stack and
against these models in lockstep; any disagreement is a bug in one of
them, and both are small enough to audit by eye to decide which.

* :class:`DrbacOracle` — dRBAC membership as reachability over live
  delegation edges.  The generator only issues self-certifying
  membership delegations (issuer owns the role), so the model needs no
  assignment or third-party logic: an entity holds a role iff the role
  is reachable from it through edges that are published, unrevoked, and
  unexpired *right now*.
* :class:`ViewAclOracle` — Table 4 visibility: ordered role→view rules,
  first provable role wins, with an optional anonymous default.
* :class:`RpcOracle` — at-least-once key-value RPC over a lossy link as
  an *admissible value set* per key: a put whose response was lost may
  or may not have executed (and may execute again as a late duplicate),
  so both outcomes stay admissible until a successful read collapses
  the set to what was actually observed.

``mutation`` on :class:`DrbacOracle` intentionally breaks the model
(``ignore-revoke`` / ``ignore-expiry``) — the documented way to
demonstrate that the checker detects divergence and the shrinker
reduces it to a minimal repro (see EXPERIMENTS.md, E-SIMTEST).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

MUTATIONS = ("ignore-revoke", "ignore-expiry")


@dataclass(slots=True)
class _Edge:
    """One delegation: ``subject`` (entity or role string) → ``role``."""

    subject: str
    role: str
    expires_at: Optional[float]
    published: bool
    revoked: bool = False


class DrbacOracle:
    """Naive dRBAC: role membership is reachability over live edges."""

    def __init__(self, *, mutation: str | None = None) -> None:
        if mutation is not None and mutation not in MUTATIONS:
            raise ValueError(
                f"unknown oracle mutation {mutation!r}; pick from {MUTATIONS}"
            )
        self.mutation = mutation
        self._edges: dict[str, _Edge] = {}

    def delegate(
        self,
        ref: str,
        subject: str,
        role: str,
        *,
        expires_at: float | None = None,
        published: bool = True,
    ) -> None:
        self._edges[ref] = _Edge(
            subject=subject, role=role, expires_at=expires_at, published=published
        )

    def publish(self, ref: str) -> None:
        edge = self._edges.get(ref)
        if edge is not None:
            edge.published = True

    def revoke(self, ref: str) -> None:
        edge = self._edges.get(ref)
        if edge is not None:
            edge.revoked = True

    def is_published(self, ref: str) -> bool:
        edge = self._edges.get(ref)
        return edge is not None and edge.published

    def _live(self, edge: _Edge, now: float) -> bool:
        if not edge.published:
            return False
        if edge.revoked and self.mutation != "ignore-revoke":
            return False
        if (
            edge.expires_at is not None
            and now > edge.expires_at  # mirrors Delegation.is_expired
            and self.mutation != "ignore-expiry"
        ):
            return False
        return True

    def holds(self, subject: str, role: str, now: float) -> bool:
        """Does ``subject`` hold ``role`` at time ``now``?

        Transitive closure: start from the subject, repeatedly add every
        role granted by a live edge whose subject is already reachable.
        Role-subject edges are what make cross-namespace chains work
        (Alice → OrgA.Writer → OrgB.Member).
        """
        reached = {subject}
        grew = True
        while grew:
            grew = False
            for edge in self._edges.values():
                if edge.subject in reached and edge.role not in reached:
                    if self._live(edge, now):
                        reached.add(edge.role)
                        grew = True
        return role in reached


class ViewAclOracle:
    """Table 4: ordered role→view rules, first provable role wins."""

    def __init__(
        self,
        drbac: DrbacOracle,
        rules: list[tuple[str, str]],
        *,
        default: str | None = None,
    ) -> None:
        self.drbac = drbac
        self.rules = list(rules)
        self.default = default

    def resolve(self, client: str, now: float) -> str | None:
        for role, view_name in self.rules:
            if self.drbac.holds(client, role, now):
                return view_name
        return self.default


class RpcOracle:
    """At-least-once key-value RPC as admissible value sets.

    Unset keys admit exactly ``None`` (the store's miss value).  A put
    whose outcome is unknown (response lost) widens the set; a
    successful read collapses it.  ``observed in admissible`` is the
    correctness check for every successful read.
    """

    def __init__(self) -> None:
        self._admissible: dict[str, set] = {}

    def admissible(self, key: str) -> set:
        return set(self._admissible.get(key, {None}))

    def put_succeeded(self, key: str, value, observed_old, *,
                      may_duplicate: bool = False) -> bool:
        """A put completed and returned the previous value.

        With ``may_duplicate`` (retried calls) an earlier transmission of
        this same put may already have executed — its response lost — so
        the "old" value the surviving execution reports may be the put's
        own ``value``.
        """
        admissible = self.admissible(key)
        if may_duplicate:
            admissible.add(value)
        ok = observed_old in admissible
        self._admissible[key] = {value}
        return ok

    def put_unresolved(self, key: str, value) -> None:
        """A put whose response never arrived: it may have executed once,
        more than once, or not at all — the new value joins the set."""
        self._admissible[key] = self.admissible(key) | {value}

    def get_succeeded(self, key: str, observed) -> bool:
        """A get completed: the observed value must be admissible, and
        afterwards it is the *only* admissible value."""
        ok = observed in self.admissible(key)
        self._admissible[key] = {observed}
        return ok
