"""repro.check — deterministic simulation testing with model-based oracles.

FoundationDB-style differential testing for the reproduction's whole
stack: a seeded generator produces an interleaved workload of dRBAC,
view-ACL, RPC, and clock operations (:mod:`repro.check.gen`); an
executor replays it against the real engines over the simulated network
and cross-checks every observable result against pure-Python reference
models small enough to audit by eye (:mod:`repro.check.oracles`,
:mod:`repro.check.executor`); any divergence is dumped as a replayable
JSON trace and delta-debugged down to a minimal repro
(:mod:`repro.check.shrink`).

CLI: ``python -m repro simtest --seed N [--steps S] [--chaos] [--json]``
and ``--replay FILE``.
"""

from __future__ import annotations

from .executor import Divergence, SimReport, SimTester, run_simtest
from .gen import generate_trace
from .oracles import DrbacOracle, RpcOracle, ViewAclOracle
from .shrink import ShrinkResult, shrink_trace
from .trace import Op, Trace

__all__ = [
    "Op",
    "Trace",
    "generate_trace",
    "DrbacOracle",
    "ViewAclOracle",
    "RpcOracle",
    "Divergence",
    "SimReport",
    "SimTester",
    "run_simtest",
    "ShrinkResult",
    "shrink_trace",
]
