"""Delta-debugging trace shrinker.

Given a trace the checker flagged as divergent, reduce it to a (local)
minimum that *still* diverges: classic ddmin over the operation list —
try removing complement chunks at doubling granularity — followed by a
one-at-a-time sweep to catch stragglers.  The fault schedule is held
fixed; only operations are deleted, never reordered, so causality within
the surviving subsequence is preserved.

Everything here is deterministic: replays go through the same
:class:`~repro.check.executor.SimTester` (same key store, same seeds),
and candidate subsets are memoized on their serialized op list so the
sweep never re-runs a probe ddmin already answered.

Shrinking is what turns "seed 23417 diverges after 412 operations" into
a three-line repro a human can read: delegate, revoke, authorize.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .. import obs
from ..obs import names as metric_names
from .executor import SimReport, SimTester
from .trace import Op, Trace


@dataclass(slots=True)
class ShrinkResult:
    """The minimized trace plus the evidence and the cost of getting it."""

    trace: Trace
    report: SimReport
    original_ops: int
    probes: int

    @property
    def removed(self) -> int:
        return self.original_ops - len(self.trace.ops)

    def summary(self) -> str:
        lines = [
            f"shrink: {self.original_ops} -> {len(self.trace.ops)} ops "
            f"({self.probes} probes)"
        ]
        for index, op in enumerate(self.trace.ops):
            lines.append(f"  {index}: {op.describe()}")
        d = self.report.divergence
        if d is not None:
            lines.append(f"  still diverges [{d.kind}]: "
                         f"expected {d.expected}, observed {d.observed}")
        return "\n".join(lines)


def _key(ops: list[Op]) -> str:
    return json.dumps([op.to_dict() for op in ops], sort_keys=True)


def shrink_trace(trace: Trace, tester: SimTester) -> ShrinkResult:
    """ddmin + final sweep; ``trace`` must diverge under ``tester``."""
    cache: dict[str, SimReport] = {}

    def probe(ops: list[Op]) -> SimReport:
        key = _key(ops)
        hit = cache.get(key)
        if hit is not None:
            return hit
        obs.counter(metric_names.CHECK_SHRINK_PROBES).inc()
        report = tester.run(trace.with_ops(ops))
        cache[key] = report
        return report

    def diverges(ops: list[Op]) -> SimReport | None:
        report = probe(ops)
        return report if report.divergence is not None else None

    best = list(trace.ops)
    best_report = diverges(best)
    if best_report is None:
        raise ValueError("shrink_trace needs a diverging trace to start from")

    # -- ddmin: remove complement chunks, doubling granularity on failure --
    chunks = 2
    while len(best) >= 2:
        size = max(1, len(best) // chunks)
        reduced = False
        start = 0
        while start < len(best):
            candidate = best[:start] + best[start + size :]
            if candidate:
                report = diverges(candidate)
                if report is not None:
                    best, best_report = candidate, report
                    chunks = max(chunks - 1, 2)
                    reduced = True
                    # Re-scan from the top at the same granularity.
                    start = 0
                    continue
            start += size
        if not reduced:
            if size <= 1:
                break
            chunks = min(len(best), chunks * 2)

    # -- final sweep: one op at a time, right to left ----------------------
    index = len(best) - 1
    while index >= 0 and len(best) > 1:
        candidate = best[:index] + best[index + 1 :]
        report = diverges(candidate)
        if report is not None:
            best, best_report = candidate, report
        index -= 1

    removed = len(trace.ops) - len(best)
    if removed:
        obs.counter(metric_names.CHECK_SHRINK_REMOVED).inc(removed)
    return ShrinkResult(
        trace=trace.with_ops(best),
        report=best_report,
        original_ops=len(trace.ops),
        probes=len(cache),
    )
