"""Replay a trace against the real stack and cross-check every result.

The executor builds a small but real world — a two-node simulated
network carrying plain RPC, a :class:`~repro.drbac.engine.DrbacEngine`
on virtual time, a sharded :class:`~repro.drbac.cache.CachedAuthorizer`,
a Table 4 :class:`~repro.views.acl.ViewAccessPolicy` over three
VIG-generated views, and (under chaos) a
:class:`~repro.faults.injector.FaultInjector` armed with the trace's
fault plan — then replays the operations one at a time, comparing each
observable outcome against the oracles of :mod:`repro.check.oracles`.

The first disagreement stops the run and is reported as a
:class:`Divergence`; the trace can then be handed to
:func:`repro.check.shrink.shrink_trace`.

Determinism contract (same as the chaos and load harnesses): virtual
time only, hermetic id counters, a scoped metrics registry, seeded
transport loss, and no Switchboard channels (their DH handshakes draw
from ``secrets``).  Two runs of one trace produce byte-identical
reports.

One honest relaxation: a credential may expire while an RPC request is
in flight (the server decides at delivery time, the client observed at
issue time), so the authorization expectation for RPC ops accepts the
oracle's verdict at *either* endpoint of the call.  Delegations and
revocations cannot race this way — operations are serialized — so only
the expiry boundary is relaxed.

Crash/recovery boundaries: the server's engine+cache live inside a
:class:`~repro.durable.node.DurableNode` fed by an
:class:`~repro.durable.node.UpdateFeed` (the crash-immune credential
authority every delegate/publish/revoke routes through).  Chaos traces
include ``NODE_CRASH_RESTART`` faults with seeded torn tails; while the
node is down, server-side observables report ``down`` with no oracle
comparison (a dead node serves nothing), and after the heal's WAL replay
+ delta catch-up the comparisons resume — the oracle, which never
crashes, must still agree with every post-recovery verdict.  Mutations
are routed by name: durable-layer mutations (``skip-catchup``) break the
node's recovery protocol, every other mutation breaks the oracle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from .. import obs
from ..crypto import KeyStore
from ..drbac import DrbacEngine
from ..drbac.cache import CachedAuthorizer
from ..durable import MUTATIONS as DURABLE_MUTATIONS
from ..durable import DurableNode, UpdateFeed
from ..errors import AuthorizationError
from ..faults.injector import FaultInjector
from ..faults.retry import RetryPolicy
from ..hermetic import hermetic_counters
from ..net.events import EventScheduler
from ..net.simnet import Network
from ..net.transport import Transport
from ..obs import names as metric_names
from ..psf.monitor import EnvironmentMonitor
from ..switchboard.rpc import PlainRpcEndpoint
from ..views import (
    InterfaceRegistry,
    ViewHint,
    ViewRuntime,
    Vig,
    infer_view_spec,
    interface_from_class,
)
from ..views.acl import ViewAccessPolicy
from .gen import RPC_ROLE, VIEW_DEFAULT, VIEW_RULES, generate_trace
from .oracles import DrbacOracle, RpcOracle, ViewAclOracle
from .trace import Op, Trace

REPORT_SCHEMA = "simtest-report/v1"

ENGINE_MODES = ("incr", "full")
"""Authorization engine arms: incremental reach maintenance vs full
search on every miss.  Both run against the same oracles; the CI matrix
exercises each."""

#: What each view may do; the executor's expectation table and the VIG
#: hints below must agree — that agreement is exactly what the checker
#: exercises end to end.
VIEW_CAN_READ = {"ViewKVAdmin": True, "ViewKVReader": True, "ViewKVAnon": False}
VIEW_CAN_WRITE = {"ViewKVAdmin": True, "ViewKVReader": False, "ViewKVAnon": False}
_VIEW_HINTS = {
    "ViewKVAdmin": ("get", "put", "has"),
    "ViewKVReader": ("get", "has"),
    "ViewKVAnon": ("has",),
}

#: Virtual seconds to drain in-flight duplicates after a retried RPC op.
#: A retransmission can be on the wire when the call completes (attempt k's
#: response races attempt k+1's request), and if the next trace op mutated
#: the repository before that duplicate reached the server, the duplicate
#: would execute under *different* authorization state than any instant the
#: oracle was consulted at.  Draining after every chaos RPC op pins all
#: duplicate executions inside a window where the repository is frozen,
#: where only expiry can change a decision.  Bound: worst in-flight frame
#: is latency (0.004s) x max latency-spike factor (8) x max reroutes —
#: well under a quarter second.
SETTLE = 0.25


class ViewKV:
    """The component the view policy protects: an unguarded local store.

    Visibility is enforced *around* it — which view a client resolves to
    decides what they can call — mirroring the paper's split between
    component logic and per-role service levels.
    """

    def __init__(self) -> None:
        self._data: dict[str, str] = {}

    def get(self, key: str) -> str | None:
        return self._data.get(key)

    def put(self, key: str, value: str) -> str | None:
        old = self._data.get(key)
        self._data[key] = value
        return old

    def has(self, key: str) -> bool:
        return key in self._data


class _KVSurface:
    """Interface template for the view stack."""

    def get(self, key: str) -> str | None: ...

    def put(self, key: str, value: str) -> str | None: ...

    def has(self, key: str) -> bool: ...


class GuardedKV:
    """The RPC-exported store: every data op authorizes its caller."""

    def __init__(self, authorizer: CachedAuthorizer) -> None:
        self._authorizer = authorizer
        self._data: dict[str, str] = {}

    def _admit(self, subject: str) -> None:
        self._authorizer.authorize(subject, RPC_ROLE)

    def get(self, subject: str, key: str) -> str | None:
        self._admit(subject)
        return self._data.get(key)

    def put(self, subject: str, key: str, value: str) -> str | None:
        self._admit(subject)
        old = self._data.get(key)
        self._data[key] = value
        return old

    def check(self, subject: str) -> bool:
        return self._authorizer.is_authorized(subject, RPC_ROLE)


@dataclass(slots=True)
class Divergence:
    """The real stack and the oracle disagreed on one observable."""

    index: int
    op: dict[str, Any]
    kind: str
    expected: str
    observed: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "op": self.op,
            "kind": self.kind,
            "expected": self.expected,
            "observed": self.observed,
        }


@dataclass(slots=True)
class SimReport:
    """Everything one simulation run produced; JSON-stable across runs."""

    seed: int
    steps: int
    chaos: bool
    mutation: str | None
    engine: str
    executed: int
    comparisons: int
    net_failures: int
    horizon: float
    faults: int
    transcript: list[str]
    divergence: Divergence | None
    metrics: dict
    flight: dict | None = None
    """Flight-recorder dump frozen at the diverging op; ``None`` on
    agreeing runs keeps the JSON byte-stable."""

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def transcript_digest(self) -> str:
        payload = json.dumps(self.transcript, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "steps": self.steps,
            "chaos": self.chaos,
            "mutation": self.mutation,
            "engine": self.engine,
            "executed": self.executed,
            "comparisons": self.comparisons,
            "net_failures": self.net_failures,
            "horizon": round(self.horizon, 6),
            "faults": self.faults,
            "transcript_digest": self.transcript_digest(),
            "divergence": None if self.divergence is None else self.divergence.to_dict(),
            "metrics": self.metrics,
            "flight": self.flight,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        mode = "chaos" if self.chaos else "calm"
        lines = [
            f"simtest seed={self.seed} ops={self.steps} ({mode}): "
            f"{self.executed} executed, {self.comparisons} oracle comparisons, "
            f"{self.net_failures} net failures, horizon {self.horizon:.2f}s"
        ]
        if self.mutation:
            lines.append(f"  oracle mutation active: {self.mutation}")
        if self.divergence is None:
            lines.append("  oracles agree: no divergence")
        else:
            d = self.divergence
            lines.append(
                f"  DIVERGENCE at op {d.index} [{d.kind}] "
                f"{Op.from_dict(d.op).describe()}"
            )
            lines.append(f"    expected: {d.expected}")
            lines.append(f"    observed: {d.observed}")
        return "\n".join(lines)


class SimTester:
    """Replays traces against a freshly built world per run.

    One tester may run many traces (the shrinker does); the RSA
    :class:`KeyStore` is shared across runs because key material never
    crosses the simulated wire, which makes re-runs cheap *and*
    byte-identical.
    """

    def __init__(
        self,
        *,
        key_store: KeyStore | None = None,
        mutation: str | None = None,
        engine: str = "incr",
    ) -> None:
        if engine not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {engine!r}; pick from {ENGINE_MODES}"
            )
        self.key_store = key_store or KeyStore(key_bits=512)
        self.mutation = mutation
        # Durable-layer mutations break the node's recovery protocol;
        # everything else is handed to the DrbacOracle (which validates
        # the name and raises on unknowns).
        self.durable_mutation = mutation if mutation in DURABLE_MUTATIONS else None
        self.oracle_mutation = None if self.durable_mutation else mutation
        self.engine_mode = engine

    # -- entry point --------------------------------------------------------

    def run(self, trace: Trace) -> SimReport:
        with hermetic_counters(), obs.scoped(enabled=True):
            return self._run(trace)

    # -- world construction -------------------------------------------------

    def _build_world(self, trace: Trace) -> None:
        self.scheduler = EventScheduler()
        obs.set_tracer_clock(self.scheduler)
        network = Network()
        network.add_node("client", domain="CHECK")
        network.add_node("server", domain="CHECK")
        network.add_link(
            "client", "server", latency_s=0.004, bandwidth_bps=8e6, secure=False
        )
        self.transport = Transport(network, self.scheduler, loss_seed=trace.seed)

        self.engine = DrbacEngine(
            key_store=self.key_store,
            clock=self.scheduler,
            incremental=self.engine_mode == "incr",
        )
        # Small and sharded on purpose: the workload overflows it, so the
        # trace exercises LRU churn and negative caching, not a warm cache.
        self.cache = CachedAuthorizer(self.engine, max_entries=8, shards=4)

        # The server node is durable: every credential update flows
        # through the feed (the crash-immune authority), gets WAL-logged
        # on the node, and survives NODE_CRASH_RESTART faults via replay
        # + catch-up.  compact_every is small so tier-1 traces exercise
        # snapshot installation, not just log replay.
        self.feed = UpdateFeed()
        self.node = DurableNode(
            engine=self.engine,
            cache=self.cache,
            feed=self.feed,
            compact_every=16,
            mutation=self.durable_mutation,
        )

        self.store = GuardedKV(self.cache)
        server_rpc = PlainRpcEndpoint(self.transport, "server")
        server_rpc.exporter.export("GuardedKV", self.store)
        self.client_rpc = PlainRpcEndpoint(self.transport, "client")

        self.view_store = ViewKV()
        self.policy = ViewAccessPolicy("ViewKV")
        for role, view_name in VIEW_RULES:
            self.policy.allow(role, view_name)
        self.policy.allow("others", VIEW_DEFAULT)
        registry = InterfaceRegistry()
        registry.register(interface_from_class(_KVSurface, "CheckKVI"))
        vig = Vig(registry)
        runtime = ViewRuntime(local_objects={"ViewKV": self.view_store})
        self.views: dict[str, Any] = {}
        for view_name, allow in _VIEW_HINTS.items():
            spec = infer_view_spec(view_name, ViewKV, registry, ViewHint(allow=allow))
            self.views[view_name] = vig.generate(spec, ViewKV)(runtime)

        if trace.chaos and trace.faults:
            injector = FaultInjector(
                self.scheduler,
                EnvironmentMonitor(network),
                durable_nodes={"server": self.node},
            )
            injector.arm(trace.fault_plan())

        # Oracles.
        self.drbac_model = DrbacOracle(mutation=self.oracle_mutation)
        self.acl_model = ViewAclOracle(
            self.drbac_model, list(VIEW_RULES), default=VIEW_DEFAULT
        )
        self.rpc_model = RpcOracle()
        self.view_model: dict[str, str] = {}
        self.creds: dict[str, Any] = {}
        self.published: set[str] = set()

    # -- the run ------------------------------------------------------------

    def _run(self, trace: Trace) -> SimReport:
        self._build_world(trace)
        transcript: list[str] = []
        self.comparisons = 0
        self.net_failures = 0
        divergence: Divergence | None = None

        handlers = {
            "delegate": self._op_delegate,
            "publish": self._op_publish,
            "revoke": self._op_revoke,
            "authorize": self._op_authorize,
            "view_resolve": self._op_view_resolve,
            "view_read": self._op_view_read,
            "view_write": self._op_view_write,
            "rpc_get": self._op_rpc,
            "rpc_put": self._op_rpc,
            "rpc_check": self._op_rpc,
            "advance": self._op_advance,
        }
        executed = 0
        flight: dict | None = None
        for index, op in enumerate(trace.ops):
            obs.counter(metric_names.CHECK_OPS).inc()
            outcome, diverged = handlers[op.kind](index, op, trace.chaos)
            obs.event("check.op", index=index, kind=op.kind, outcome=outcome)
            transcript.append(f"{index}:{op.kind}:{outcome}")
            executed += 1
            if diverged is not None:
                obs.counter(metric_names.CHECK_DIVERGENCES).inc()
                divergence = diverged
                # Freeze the recorder at the diverging op: the dump
                # carries the audit/event history leading into it and
                # rides alongside the shrunk repro.
                flight = obs.flight_snapshot("simtest.divergence")
                break

        return SimReport(
            seed=trace.seed,
            steps=len(trace.ops),
            chaos=trace.chaos,
            mutation=self.mutation,
            engine=self.engine_mode,
            executed=executed,
            comparisons=self.comparisons,
            net_failures=self.net_failures,
            horizon=self.scheduler.now(),
            faults=len(trace.faults),
            transcript=transcript,
            divergence=divergence,
            metrics=obs.snapshot(),
            flight=flight,
        )

    # -- comparison helper --------------------------------------------------

    def _compare(
        self, index: int, op: Op, kind: str, expected: str, observed: str
    ) -> Divergence | None:
        self.comparisons += 1
        obs.counter(metric_names.CHECK_COMPARISONS).inc()
        if expected == observed:
            return None
        return Divergence(
            index=index, op=op.to_dict(), kind=kind,
            expected=expected, observed=observed,
        )

    # -- mutators (no observable; applied to stack and model alike) ---------

    def _op_delegate(self, index: int, op: Op, chaos: bool):
        a = op.args
        expires = None if a["ttl"] is None else self.scheduler.now() + a["ttl"]
        # Sign locally, publish through the feed: the authority assigns
        # the sequence number a recovering node catches up against.
        cred = self.engine.delegate(
            a["issuer"], a["subject"], a["role"],
            expires_at=expires, publish=False,
        )
        self.creds[a["ref"]] = cred
        if a["publish"]:
            self.published.add(a["ref"])
            self.feed.publish(cred)
        self.drbac_model.delegate(
            a["ref"], a["subject"], a["role"],
            expires_at=expires, published=a["publish"],
        )
        return "issued", None

    def _op_publish(self, index: int, op: Op, chaos: bool):
        ref = op.args["ref"]
        cred = self.creds.get(ref)
        if cred is None or ref in self.published:
            return "noop", None
        self.published.add(ref)
        self.feed.publish(cred)
        self.drbac_model.publish(ref)
        return "published", None

    def _op_revoke(self, index: int, op: Op, chaos: bool):
        ref = op.args["ref"]
        cred = self.creds.get(ref)
        if cred is None:
            return "noop", None
        self.feed.revoke(cred)
        self.drbac_model.revoke(ref)
        return "revoked", None

    def _op_advance(self, index: int, op: Op, chaos: bool):
        self.scheduler.run_until(self.scheduler.now() + op.args["seconds"])
        return f"t={self.scheduler.now():.3f}", None

    # -- checked observables ------------------------------------------------

    def _op_authorize(self, index: int, op: Op, chaos: bool):
        if not self.node.up:
            return "down", None  # a crashed node serves no verdicts
        subject, role = op.args["subject"], op.args["role"]
        now = self.scheduler.now()
        try:
            result = self.cache.authorize(subject, role)
            observed = "grant"
        except AuthorizationError:
            result = None
            observed = "deny"
        expected = "grant" if self.drbac_model.holds(subject, role, now) else "deny"
        diverged = self._compare(index, op, "authorize", expected, observed)
        if diverged is None and result is not None:
            # A served grant must itself still be live (no stale grants).
            if not (result.valid and result.monitor.check_expiry(now)):
                diverged = Divergence(
                    index=index, op=op.to_dict(), kind="stale-grant",
                    expected="live proof", observed="invalid or expired monitor",
                )
        return observed, diverged

    def _op_view_resolve(self, index: int, op: Op, chaos: bool):
        if not self.node.up:
            return "down", None
        client = op.args["client"]
        decision = self.policy.resolve(client, self.engine)
        observed = "none" if decision is None else decision.view_name
        model_view = self.acl_model.resolve(client, self.scheduler.now())
        expected = "none" if model_view is None else model_view
        return observed, self._compare(index, op, "view-resolve", expected, observed)

    def _resolve_view(self, client: str):
        decision = self.policy.resolve(client, self.engine)
        return None if decision is None else decision.view_name

    def _op_view_read(self, index: int, op: Op, chaos: bool):
        if not self.node.up:
            return "down", None
        client, key = op.args["client"], op.args["key"]
        view_name = self._resolve_view(client)
        model_view = self.acl_model.resolve(client, self.scheduler.now())
        diverged = self._compare(
            index, op, "view-resolve", str(model_view), str(view_name)
        )
        if diverged is not None:
            return str(view_name), diverged
        try:
            observed = repr(self.views[view_name].get(key))
        except PermissionError:
            observed = "narrowed"
        if VIEW_CAN_READ[view_name]:
            expected = repr(self.view_model.get(key))
        else:
            expected = "narrowed"
        return observed, self._compare(index, op, "view-read", expected, observed)

    def _op_view_write(self, index: int, op: Op, chaos: bool):
        if not self.node.up:
            return "down", None
        client, key, value = op.args["client"], op.args["key"], op.args["value"]
        view_name = self._resolve_view(client)
        model_view = self.acl_model.resolve(client, self.scheduler.now())
        diverged = self._compare(
            index, op, "view-resolve", str(model_view), str(view_name)
        )
        if diverged is not None:
            return str(view_name), diverged
        try:
            observed = repr(self.views[view_name].put(key, value))
        except PermissionError:
            observed = "narrowed"
        if VIEW_CAN_WRITE[view_name]:
            expected = repr(self.view_model.get(key))
            self.view_model[key] = value
        else:
            expected = "narrowed"
        return observed, self._compare(index, op, "view-write", expected, observed)

    # -- RPC ops ------------------------------------------------------------

    def _op_rpc(self, index: int, op: Op, chaos: bool):
        a = op.args
        method = op.kind.removeprefix("rpc_")
        args = {"get": lambda: [a["subject"], a["key"]],
                "put": lambda: [a["subject"], a["key"], a["value"]],
                "check": lambda: [a["subject"]]}[method]()
        issue_now = self.scheduler.now()
        if chaos:
            policy = RetryPolicy.exponential(
                base_delay=0.2, max_attempts=5, max_delay=1.5,
                jitter=0.25, seed=index * 1000 + 17,
            )
            pending = self.client_rpc.call_with_retry(
                "server", "GuardedKV", method, args, policy=policy
            )
        else:
            pending = self.client_rpc.call("server", "GuardedKV", method, args)
        try:
            value = pending.wait()
            status = "ok"
        except Exception as exc:  # noqa: BLE001 - classified below
            text = f"{type(exc).__name__}: {exc}"
            status = "denied" if "AuthorizationError" in text else "net_fail"
            value = None
        done_now = self.scheduler.now()
        if status == "net_fail":
            self.net_failures += 1
            obs.counter(metric_names.CHECK_RPC_NET_FAILURES).inc()
        if chaos:
            # Drain every in-flight duplicate of this (possibly retried)
            # call before the next op can mutate authorization state.
            self.scheduler.run_until(self.scheduler.now() + SETTLE)

        # Authorization expectation, relaxed across the expiry boundary
        # (see module docstring): the observed decision must match the
        # oracle at issue or at completion time.
        grants = {
            self.drbac_model.holds(a["subject"], RPC_ROLE, issue_now),
            self.drbac_model.holds(a["subject"], RPC_ROLE, done_now),
        }
        diverged: Divergence | None = None
        if method == "check":
            if status == "ok":
                diverged = self._compare(
                    index, op, "rpc-auth",
                    "|".join(sorted("grant" if g else "deny" for g in grants)),
                    "grant" if value else "deny",
                ) if value not in grants else self._mark_comparison()
            elif status == "net_fail" and not chaos:
                diverged = self._net_divergence(index, op)
        elif status == "ok":
            if True not in grants:
                diverged = Divergence(
                    index=index, op=op.to_dict(), kind="rpc-auth",
                    expected="deny", observed=f"grant:{value!r}",
                )
            elif method == "get":
                admissible = self.rpc_model.admissible(a["key"])
                ok = self.rpc_model.get_succeeded(a["key"], value)
                diverged = self._value_divergence(index, op, value, ok, admissible)
            else:  # put
                admissible = self.rpc_model.admissible(a["key"])
                if chaos:
                    admissible.add(a["value"])
                ok = self.rpc_model.put_succeeded(
                    a["key"], a["value"], value, may_duplicate=chaos
                )
                diverged = self._value_divergence(index, op, value, ok, admissible)
        elif status == "denied":
            if False not in grants:
                diverged = Divergence(
                    index=index, op=op.to_dict(), kind="rpc-auth",
                    expected="grant", observed="deny",
                )
            else:
                self._mark_comparison()
                if chaos and method == "put" and True in grants:
                    # The observed response was a denial, but on an expiry
                    # boundary an *earlier* transmission may have been
                    # granted and executed, its response lost.
                    self.rpc_model.put_unresolved(a["key"], a["value"])
        else:  # net_fail
            if not chaos:
                diverged = self._net_divergence(index, op)
            elif method == "put" and True in grants:
                # The put may have executed (once or more) without us
                # seeing the response: widen the admissible set.
                self.rpc_model.put_unresolved(a["key"], a["value"])
        outcome = {"ok": f"ok:{value!r}", "denied": "denied",
                   "net_fail": "net_fail"}[status]
        return outcome, diverged

    def _mark_comparison(self) -> None:
        self.comparisons += 1
        obs.counter(metric_names.CHECK_COMPARISONS).inc()
        return None

    def _value_divergence(self, index, op, observed, ok, admissible):
        self._mark_comparison()
        if ok:
            return None
        return Divergence(
            index=index, op=op.to_dict(), kind="rpc-value",
            expected=f"one of {sorted(map(repr, admissible))}",
            observed=repr(observed),
        )

    def _net_divergence(self, index, op):
        self._mark_comparison()
        return Divergence(
            index=index, op=op.to_dict(), kind="rpc-net",
            expected="completion (no faults active)", observed="network failure",
        )


def run_simtest(
    *,
    seed: int,
    steps: int,
    chaos: bool = False,
    mutation: str | None = None,
    key_store: KeyStore | None = None,
    engine: str = "incr",
) -> tuple[Trace, SimReport, SimTester]:
    """Generate a trace, run it, and return (trace, report, tester)."""
    trace = generate_trace(seed=seed, steps=steps, chaos=chaos)
    tester = SimTester(key_store=key_store, mutation=mutation, engine=engine)
    return trace, tester.run(trace), tester
