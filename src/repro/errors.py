"""Exception hierarchy shared by every repro subsystem.

Every package raises subclasses of :class:`ReproError` so callers can catch
one base type at the framework boundary while tests can assert on the
specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CryptoError(ReproError):
    """Raised for failures in the cryptographic substrate."""


class SignatureError(CryptoError):
    """A signature failed to verify (forgery, tampering, or wrong key)."""


class KeyExchangeError(CryptoError):
    """A Diffie-Hellman key exchange received invalid parameters."""


class CipherError(CryptoError):
    """Authenticated decryption failed (tampering or truncation)."""


class DrbacError(ReproError):
    """Base class for dRBAC failures."""


class CredentialError(DrbacError):
    """A delegation is malformed, expired, or its signature is invalid."""


class AuthorizationError(DrbacError):
    """No valid proof graph authorizes the requested role."""


class RevocationError(DrbacError):
    """A credential in an active proof has been revoked."""


class ViewError(ReproError):
    """Base class for view specification and generation failures."""


class ViewSpecError(ViewError):
    """The XML/structured view specification is malformed."""


class ViewGenerationError(ViewError):
    """VIG could not generate a correct view class.

    Mirrors the paper's behaviour: "If VIG is unable to generate correct
    bytecode (e.g. a new method uses a variable that is not defined in the
    original object or the method), it triggers an error that indicates how
    the XML rules can be rectified."
    """


class SwitchboardError(ReproError):
    """Base class for Switchboard channel failures."""


class HandshakeError(SwitchboardError):
    """Channel establishment failed (authentication or authorization)."""


class ChannelClosedError(SwitchboardError):
    """An operation was attempted on a closed or revoked channel."""


class ReplayError(SwitchboardError):
    """A message with a stale or repeated sequence number arrived."""


class RpcAbortedError(SwitchboardError):
    """An in-flight remote call was aborted because its channel was torn
    down (closed, died, or lost its link) before the result arrived."""


class RpcTimeoutError(SwitchboardError):
    """Waiting on a pending call exceeded the caller's timeout budget."""


class RpcShedError(SwitchboardError):
    """A call was refused by overload protection (server-side admission
    control or a client-side circuit breaker) rather than attempted.

    Carries a ``retry_after`` hint in virtual seconds — the earliest time
    a retry has a chance of being admitted — which
    :meth:`~repro.switchboard.rpc.PlainRpcEndpoint.call_with_retry`
    honors by delaying its next retransmission past the hint."""

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class PsfError(ReproError):
    """Base class for Partitionable Services Framework failures."""


class PlanningError(PsfError):
    """The planner could not find a deployment satisfying the request."""


class DeploymentError(PsfError):
    """Instantiating, linking, or executing a planned component failed."""


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class LinkDownError(NetworkError):
    """A message was sent over a link that is down or does not exist."""


class NodeDownError(NetworkError):
    """A message was addressed to a node that has crash-stopped."""


class FaultError(ReproError):
    """Base class for fault-injection subsystem failures (bad plans,
    events aimed at unknown topology elements, misconfigured schedules)."""
