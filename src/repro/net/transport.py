"""Message transport over the simulated network.

Routes frames along shortest paths, charges per-link latency plus
serialization delay on the virtual clock, and exposes the eavesdropping
surface of insecure links: any observer registered on a link sees every
frame that crosses it when ``secure=False``.  Switchboard's encrypted
frames render that observation useless; plaintext RMI-style frames do not
— which is the behavioural difference the paper's encryptor/decryptor
deployment exists to fix.

**Frame batching** (:meth:`Transport.configure_batching`) coalesces
logical frames that share a (src, dst) flow into one wire-level batch:
frames queue for at most ``window`` virtual seconds and flush early when
``max_frames`` or ``max_bytes`` is reached, so a pipelined burst of small
RPC frames crosses the WAN as a single transfer instead of a storm of
per-frame events.  Delivery order within a flow is preserved, loss and
reroute decisions apply to the whole batch (one wire frame), and each
logical frame still reaches its own service handler — application-level
results are byte-identical with batching on or off, which
``tests/load/test_pipeline_differential.py`` asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..errors import LinkDownError, NetworkError
from ..obs import names as metric_names
from .events import EventScheduler
from .simnet import Network, SimLink

Observer = Callable[[bytes, str, str], None]
"""Eavesdropper callback: (payload, src node, dst node)."""

DropCallback = Callable[[Exception], None]


@dataclass(slots=True)
class TransportStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_lost: int = 0
    """Frames eaten by lossy links (failure injection)."""
    messages_rerouted: int = 0
    """Frames whose route died mid-flight and were re-sent another way."""
    bytes_sent: int = 0
    batches_sent: int = 0
    """Wire-level transfers that carried more than one logical frame."""
    frames_coalesced: int = 0
    """Logical frames that shared a wire transfer with at least one other."""


@dataclass(slots=True)
class BatchConfig:
    """Flush policy for frame batching on one transport.

    A batch flushes when the oldest queued frame has waited ``window``
    virtual seconds (flush-on-tick), or immediately once ``max_frames``
    frames or ``max_bytes`` payload bytes are queued for one flow
    (flush-on-size).  ``window=0`` still coalesces: every frame queued
    within one scheduler event shares the flush scheduled behind it.
    """

    max_frames: int = 16
    max_bytes: int = 64 * 1024
    window: float = 0.0

    def __post_init__(self) -> None:
        if self.max_frames < 1:
            raise NetworkError("batch max_frames must be >= 1")
        if self.max_bytes < 1:
            raise NetworkError("batch max_bytes must be >= 1")
        if self.window < 0:
            raise NetworkError("batch window must be >= 0")


@dataclass(slots=True)
class _Entry:
    """One logical frame queued inside a batch."""

    service: str
    payload: bytes
    on_dropped: DropCallback | None
    ctx: tuple[int, int] | None = None
    """(trace_id, span_id) of the span active at enqueue time, so a
    deferred batch flush — which runs in a scheduler tick with an empty
    span stack — can still stitch its wire span into the issuing trace."""


def _finish_wire_span(span: obs.Span, deliver_at: float) -> None:
    """Close a wire-transfer span so its bar covers the in-flight window
    (virtual now → scheduled delivery) rather than the zero-width instant
    the transmit bookkeeping itself took."""
    span.finish()
    span.end = deliver_at


_BATCH_MAGIC = b"RBAT1"


def encode_batch(entries: list[tuple[str, bytes]]) -> bytes:
    """Length-prefixed concatenation of (service, payload) frames."""
    parts = [_BATCH_MAGIC, len(entries).to_bytes(2, "big")]
    for service, payload in entries:
        name = service.encode()
        parts.append(len(name).to_bytes(2, "big"))
        parts.append(name)
        parts.append(len(payload).to_bytes(4, "big"))
        parts.append(payload)
    return b"".join(parts)


def decode_batch(wire: bytes) -> list[tuple[str, bytes]]:
    if wire[: len(_BATCH_MAGIC)] != _BATCH_MAGIC:
        raise NetworkError("not a batch frame")
    offset = len(_BATCH_MAGIC)
    count = int.from_bytes(wire[offset : offset + 2], "big")
    offset += 2
    entries: list[tuple[str, bytes]] = []
    for _ in range(count):
        name_len = int.from_bytes(wire[offset : offset + 2], "big")
        offset += 2
        service = wire[offset : offset + name_len].decode()
        offset += name_len
        payload_len = int.from_bytes(wire[offset : offset + 4], "big")
        offset += 4
        entries.append((service, wire[offset : offset + payload_len]))
        offset += payload_len
    return entries


class Transport:
    """Datagram-style delivery between node services."""

    def __init__(
        self, network: Network, scheduler: EventScheduler, *, loss_seed: int = 0
    ) -> None:
        self.network = network
        self.scheduler = scheduler
        self.stats = TransportStats()
        self.batching: BatchConfig | None = None
        self._observers: dict[frozenset[str], list[Observer]] = {}
        self._flow_clock: dict[tuple[str, str], float] = {}
        self._queues: dict[tuple[str, str], list[_Entry]] = {}
        self._flush_scheduled: set[tuple[str, str]] = set()
        self._rng = random.Random(loss_seed)

    # -- batching control ---------------------------------------------------

    def configure_batching(self, config: BatchConfig | None = None, **kwargs) -> None:
        """Enable frame batching (``BatchConfig`` or its kwargs)."""
        self.batching = config if config is not None else BatchConfig(**kwargs)

    def disable_batching(self) -> None:
        """Stop coalescing; frames already queued flush on their schedule."""
        self.batching = None

    def observe_link(self, a: str, b: str, observer: Observer) -> Callable[[], None]:
        """Attach an eavesdropper to a link; returns a detach function.

        Observers only receive frames when the link is insecure — a secure
        (LAN/encrypted-at-layer-2) link hides traffic by assumption.
        """
        key = frozenset((a, b))
        self.network.link(a, b)  # validate existence
        self._observers.setdefault(key, []).append(observer)

        def detach() -> None:
            try:
                self._observers[key].remove(observer)
            except (KeyError, ValueError):
                pass

        return detach

    def send(
        self,
        src: str,
        dst: str,
        service: str,
        payload: bytes,
        *,
        on_dropped: Callable[[Exception], None] | None = None,
        max_reroutes: int = 2,
    ) -> float:
        """Queue a frame for delivery; returns the scheduled delay.

        Raises :class:`LinkDownError` (or :class:`NodeDownError`)
        immediately when no route exists at send time.  The route is
        re-checked at *delivery* time: a frame whose path died while in
        flight is re-sent along a fresh route (up to ``max_reroutes``
        times, charging the new path's delay) instead of being delivered
        over a dead link; with no surviving route it is dropped and
        ``on_dropped`` fires with the routing error.

        With batching enabled the frame may share its wire transfer (and
        its loss/reroute fate) with other frames on the same flow; the
        returned delay is then the projected worst-case queueing delay.
        """
        # Validate the route now in both modes, so callers keep their
        # synchronous LinkDownError/NodeDownError contract.
        path = self.network.shortest_path(src, dst)
        for link in self.network.path_links(path):
            if not link.up:
                raise LinkDownError(f"link {link.a}<->{link.b} is down")
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(payload)
        self._snoop(self.network.path_links(path), payload, src, dst)
        entry = _Entry(service=service, payload=payload, on_dropped=on_dropped)
        if obs.dist_enabled():
            current = obs.get_tracer().current
            if current is not None:
                entry.ctx = current.context()
        if self.batching is None:
            return self._transmit(src, dst, [entry], max_reroutes, path=path)
        return self._enqueue(src, dst, entry)

    # -- batching internals -------------------------------------------------

    def _enqueue(self, src: str, dst: str, entry: _Entry) -> float:
        config = self.batching
        assert config is not None
        flow = (src, dst)
        queue = self._queues.setdefault(flow, [])
        queue.append(entry)
        queued_bytes = sum(len(e.payload) for e in queue)
        if len(queue) >= config.max_frames or queued_bytes >= config.max_bytes:
            obs.counter(metric_names.NET_BATCH_FLUSHES_SIZE).inc()
            self._flush(flow)
            return 0.0
        if flow not in self._flush_scheduled:
            self._flush_scheduled.add(flow)

            def tick() -> None:
                if flow in self._flush_scheduled:
                    obs.counter(metric_names.NET_BATCH_FLUSHES_TICK).inc()
                    self._flush(flow)

            self.scheduler.schedule(config.window, tick)
        return config.window

    def _flush(self, flow: tuple[str, str]) -> None:
        """Put every frame queued for ``flow`` on the wire as one batch."""
        self._flush_scheduled.discard(flow)
        entries = self._queues.pop(flow, [])
        if not entries:
            return
        src, dst = flow
        obs.counter(metric_names.NET_BATCH_FLUSHES).inc()
        obs.histogram(metric_names.NET_BATCH_OCCUPANCY).observe(len(entries))
        obs.counter(metric_names.NET_BATCH_BYTES).inc(
            sum(len(e.payload) for e in entries)
        )
        if len(entries) > 1:
            self.stats.batches_sent += 1
            self.stats.frames_coalesced += len(entries)
            obs.counter(metric_names.NET_BATCH_FRAMES_COALESCED).inc(len(entries))
        try:
            self._transmit(src, dst, entries, max_reroutes=2)
        except NetworkError as exc:
            # The route died between enqueue and flush; the frames were
            # never on the wire, so fail them like an in-flight drop.
            self.stats.messages_dropped += len(entries)
            for entry in entries:
                if entry.on_dropped is not None:
                    entry.on_dropped(exc)

    def flush_all(self) -> None:
        """Flush every queued batch immediately (shutdown/test helper)."""
        for flow in list(self._queues):
            self._flush(flow)

    # -- wire-level transfer -------------------------------------------------

    def _wire_bytes(self, entries: list[_Entry]) -> int:
        if len(entries) == 1:
            return len(entries[0].payload)
        return len(encode_batch([(e.service, e.payload) for e in entries]))

    def _transmit(
        self,
        src: str,
        dst: str,
        entries: list[_Entry],
        max_reroutes: int,
        path: list[str] | None = None,
    ) -> float:
        """Charge one wire transfer for ``entries`` and schedule delivery."""
        if path is None:
            path = self.network.shortest_path(src, dst)
        links = self.network.path_links(path)
        delay = 0.0
        nbytes = self._wire_bytes(entries)
        for link in links:
            if not link.up:
                raise LinkDownError(f"link {link.a}<->{link.b} is down")
            delay += link.transfer_delay(nbytes)
            link.bytes_carried += nbytes
            if len(entries) > 1:
                link.batches_carried += 1
        if obs.is_enabled():
            obs.counter(metric_names.NET_LINK_BYTES_CARRIED).inc(nbytes * len(links))
        # Links serialize in order: a small frame queued behind a large one
        # cannot overtake it, so delivery per (src, dst) flow is FIFO.
        now = self.scheduler.now()
        flow = (src, dst)
        deliver_at = max(now + delay, self._flow_clock.get(flow, 0.0) + 1e-9)
        self._flow_clock[flow] = deliver_at
        delay = deliver_at - now

        span = None
        if obs.dist_enabled():
            tracer = obs.get_tracer()
            # Parent preference: the span active right now (serial send
            # under an activated rpc span), else the enqueue-time context
            # of the first batched frame (deferred flush tick).
            remote_ctx = next((e.ctx for e in entries if e.ctx is not None), None)
            span = tracer.start(
                "net.transmit", parent=tracer.current, remote=remote_ctx,
                node=src, dst=dst, frames=len(entries), bytes=nbytes,
            )
            if len(entries) > 1:
                span.set(batch=True)

        # Failure injection: lossy links eat frames after the eavesdropper
        # has seen them (a passive observer taps before the drop point).
        # A batch is one wire frame: it is lost or carried as a unit.
        for link in links:
            if link.loss_rate > 0 and self._rng.random() < link.loss_rate:
                link.frames_dropped += 1
                self.stats.messages_lost += len(entries)
                if obs.is_enabled():
                    obs.counter(metric_names.NET_LINK_FRAMES_DROPPED).inc()
                    obs.event(
                        "net.loss", node=src, dst=dst,
                        link=f"{link.a}<->{link.b}", frames=len(entries),
                    )
                if span is not None:
                    span.set_error("FrameLost")
                    _finish_wire_span(span, deliver_at)
                return delay

        self.scheduler.schedule(
            delay,
            lambda: self._deliver(src, dst, entries, path, max_reroutes),
        )
        if span is not None:
            _finish_wire_span(span, deliver_at)
        return delay

    def _deliver(
        self,
        src: str,
        dst: str,
        entries: list[_Entry],
        path: list[str],
        reroutes_left: int,
    ) -> None:
        """Complete (or salvage) a transfer whose delay has elapsed."""
        if not self._path_alive(path):
            # The route chosen at send time died under the frame.  Fail
            # fast or re-route — never deliver over a dead link.
            try:
                if reroutes_left <= 0:
                    raise LinkDownError(
                        f"route {src!r}->{dst!r} died in flight; reroutes exhausted"
                    )
                new_path = self.network.shortest_path(src, dst)
            except NetworkError as exc:
                self.stats.messages_dropped += len(entries)
                for entry in entries:
                    if entry.on_dropped is not None:
                        entry.on_dropped(exc)
                return
            self.stats.messages_rerouted += len(entries)
            obs.counter(metric_names.NET_MESSAGES_REROUTED).inc(len(entries))
            obs.event(
                "net.reroute", node=src, dst=dst, frames=len(entries),
                path=">".join(new_path),
            )
            delay = self.network.path_delay(new_path, self._wire_bytes(entries))
            self.scheduler.schedule(
                delay,
                lambda: self._deliver(src, dst, entries, new_path, reroutes_left - 1),
            )
            return
        node = self.network.node(dst)
        for entry in entries:
            try:
                node.deliver(entry.service, entry.payload, src)
                self.stats.messages_delivered += 1
            except NetworkError as exc:
                self.stats.messages_dropped += 1
                if entry.on_dropped is not None:
                    entry.on_dropped(exc)

    def _path_alive(self, path: list[str]) -> bool:
        for node in path:
            if not self.network.node(node).up:
                return False
        return all(link.up for link in self.network.path_links(path))

    def _snoop(
        self, links: list[SimLink], payload: bytes, src: str, dst: str
    ) -> None:
        for link in links:
            if link.secure:
                continue
            for observer in self._observers.get(link.endpoints(), ()):
                observer(payload, src, dst)
