"""Message transport over the simulated network.

Routes frames along shortest paths, charges per-link latency plus
serialization delay on the virtual clock, and exposes the eavesdropping
surface of insecure links: any observer registered on a link sees every
frame that crosses it when ``secure=False``.  Switchboard's encrypted
frames render that observation useless; plaintext RMI-style frames do not
— which is the behavioural difference the paper's encryptor/decryptor
deployment exists to fix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..errors import LinkDownError, NetworkError
from ..obs import names as metric_names
from .events import EventScheduler
from .simnet import Network, SimLink

Observer = Callable[[bytes, str, str], None]
"""Eavesdropper callback: (payload, src node, dst node)."""


@dataclass(slots=True)
class TransportStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_lost: int = 0
    """Frames eaten by lossy links (failure injection)."""
    messages_rerouted: int = 0
    """Frames whose route died mid-flight and were re-sent another way."""
    bytes_sent: int = 0


class Transport:
    """Datagram-style delivery between node services."""

    def __init__(
        self, network: Network, scheduler: EventScheduler, *, loss_seed: int = 0
    ) -> None:
        self.network = network
        self.scheduler = scheduler
        self.stats = TransportStats()
        self._observers: dict[frozenset[str], list[Observer]] = {}
        self._flow_clock: dict[tuple[str, str], float] = {}
        self._rng = random.Random(loss_seed)

    def observe_link(self, a: str, b: str, observer: Observer) -> Callable[[], None]:
        """Attach an eavesdropper to a link; returns a detach function.

        Observers only receive frames when the link is insecure — a secure
        (LAN/encrypted-at-layer-2) link hides traffic by assumption.
        """
        key = frozenset((a, b))
        self.network.link(a, b)  # validate existence
        self._observers.setdefault(key, []).append(observer)

        def detach() -> None:
            try:
                self._observers[key].remove(observer)
            except (KeyError, ValueError):
                pass

        return detach

    def send(
        self,
        src: str,
        dst: str,
        service: str,
        payload: bytes,
        *,
        on_dropped: Callable[[Exception], None] | None = None,
        max_reroutes: int = 2,
    ) -> float:
        """Queue a frame for delivery; returns the scheduled delay.

        Raises :class:`LinkDownError` (or :class:`NodeDownError`)
        immediately when no route exists at send time.  The route is
        re-checked at *delivery* time: a frame whose path died while in
        flight is re-sent along a fresh route (up to ``max_reroutes``
        times, charging the new path's delay) instead of being delivered
        over a dead link; with no surviving route it is dropped and
        ``on_dropped`` fires with the routing error.
        """
        path = self.network.shortest_path(src, dst)
        links = self.network.path_links(path)
        delay = 0.0
        nbytes = len(payload)
        for link in links:
            if not link.up:
                raise LinkDownError(f"link {link.a}<->{link.b} is down")
            delay += link.transfer_delay(nbytes)
            link.bytes_carried += nbytes
        if obs.is_enabled():
            obs.counter(metric_names.NET_LINK_BYTES_CARRIED).inc(nbytes * len(links))
        # Links serialize in order: a small frame queued behind a large one
        # cannot overtake it, so delivery per (src, dst) flow is FIFO.
        now = self.scheduler.now()
        flow = (src, dst)
        deliver_at = max(now + delay, self._flow_clock.get(flow, 0.0) + 1e-9)
        self._flow_clock[flow] = deliver_at
        delay = deliver_at - now
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        self._snoop(links, payload, src, dst)

        # Failure injection: lossy links eat frames after the eavesdropper
        # has seen them (a passive observer taps before the drop point).
        for link in links:
            if link.loss_rate > 0 and self._rng.random() < link.loss_rate:
                link.frames_dropped += 1
                self.stats.messages_lost += 1
                if obs.is_enabled():
                    obs.counter(metric_names.NET_LINK_FRAMES_DROPPED).inc()
                return delay

        self.scheduler.schedule(
            delay,
            lambda: self._deliver(
                src, dst, service, payload, path, on_dropped, max_reroutes
            ),
        )
        return delay

    def _deliver(
        self,
        src: str,
        dst: str,
        service: str,
        payload: bytes,
        path: list[str],
        on_dropped: Callable[[Exception], None] | None,
        reroutes_left: int,
    ) -> None:
        """Complete (or salvage) a frame whose transfer delay has elapsed."""
        if not self._path_alive(path):
            # The route chosen at send time died under the frame.  Fail
            # fast or re-route — never deliver over a dead link.
            try:
                if reroutes_left <= 0:
                    raise LinkDownError(
                        f"route {src!r}->{dst!r} died in flight; reroutes exhausted"
                    )
                new_path = self.network.shortest_path(src, dst)
            except NetworkError as exc:
                self.stats.messages_dropped += 1
                if on_dropped is not None:
                    on_dropped(exc)
                return
            self.stats.messages_rerouted += 1
            obs.counter(metric_names.NET_MESSAGES_REROUTED).inc()
            delay = self.network.path_delay(new_path, len(payload))
            self.scheduler.schedule(
                delay,
                lambda: self._deliver(
                    src, dst, service, payload, new_path, on_dropped, reroutes_left - 1
                ),
            )
            return
        try:
            self.network.node(dst).deliver(service, payload, src)
            self.stats.messages_delivered += 1
        except NetworkError as exc:
            self.stats.messages_dropped += 1
            if on_dropped is not None:
                on_dropped(exc)

    def _path_alive(self, path: list[str]) -> bool:
        for node in path:
            if not self.network.node(node).up:
                return False
        return all(link.up for link in self.network.path_links(path))

    def _snoop(
        self, links: list[SimLink], payload: bytes, src: str, dst: str
    ) -> None:
        for link in links:
            if link.secure:
                continue
            for observer in self._observers.get(link.endpoints(), ()):
                observer(payload, src, dst)
