"""Message transport over the simulated network.

Routes frames along shortest paths, charges per-link latency plus
serialization delay on the virtual clock, and exposes the eavesdropping
surface of insecure links: any observer registered on a link sees every
frame that crosses it when ``secure=False``.  Switchboard's encrypted
frames render that observation useless; plaintext RMI-style frames do not
— which is the behavioural difference the paper's encryptor/decryptor
deployment exists to fix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..errors import LinkDownError, NetworkError
from .events import EventScheduler
from .simnet import Network, SimLink

Observer = Callable[[bytes, str, str], None]
"""Eavesdropper callback: (payload, src node, dst node)."""


@dataclass(slots=True)
class TransportStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_lost: int = 0
    """Frames eaten by lossy links (failure injection)."""
    bytes_sent: int = 0


class Transport:
    """Datagram-style delivery between node services."""

    def __init__(
        self, network: Network, scheduler: EventScheduler, *, loss_seed: int = 0
    ) -> None:
        self.network = network
        self.scheduler = scheduler
        self.stats = TransportStats()
        self._observers: dict[frozenset[str], list[Observer]] = {}
        self._flow_clock: dict[tuple[str, str], float] = {}
        self._rng = random.Random(loss_seed)

    def observe_link(self, a: str, b: str, observer: Observer) -> Callable[[], None]:
        """Attach an eavesdropper to a link; returns a detach function.

        Observers only receive frames when the link is insecure — a secure
        (LAN/encrypted-at-layer-2) link hides traffic by assumption.
        """
        key = frozenset((a, b))
        self.network.link(a, b)  # validate existence
        self._observers.setdefault(key, []).append(observer)

        def detach() -> None:
            try:
                self._observers[key].remove(observer)
            except (KeyError, ValueError):
                pass

        return detach

    def send(
        self,
        src: str,
        dst: str,
        service: str,
        payload: bytes,
        *,
        on_dropped: Callable[[Exception], None] | None = None,
    ) -> float:
        """Queue a frame for delivery; returns the scheduled delay.

        Raises :class:`LinkDownError` immediately when no route exists at
        send time.  Frames traversing a link that goes down mid-flight are
        still delivered (the simulation resolves the route at send time),
        matching a store-and-forward model.
        """
        path = self.network.shortest_path(src, dst)
        links = self.network.path_links(path)
        delay = 0.0
        for link in links:
            if not link.up:
                raise LinkDownError(f"link {link.a}<->{link.b} is down")
            delay += link.transfer_delay(len(payload))
            link.bytes_carried += len(payload)
        # Links serialize in order: a small frame queued behind a large one
        # cannot overtake it, so delivery per (src, dst) flow is FIFO.
        now = self.scheduler.now()
        flow = (src, dst)
        deliver_at = max(now + delay, self._flow_clock.get(flow, 0.0) + 1e-9)
        self._flow_clock[flow] = deliver_at
        delay = deliver_at - now
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(payload)
        self._snoop(links, payload, src, dst)

        # Failure injection: lossy links eat frames after the eavesdropper
        # has seen them (a passive observer taps before the drop point).
        for link in links:
            if link.loss_rate > 0 and self._rng.random() < link.loss_rate:
                link.frames_dropped += 1
                self.stats.messages_lost += 1
                return delay

        def deliver() -> None:
            try:
                self.network.node(dst).deliver(service, payload, src)
                self.stats.messages_delivered += 1
            except NetworkError as exc:
                self.stats.messages_dropped += 1
                if on_dropped is not None:
                    on_dropped(exc)

        self.scheduler.schedule(delay, deliver)
        return delay

    def _snoop(
        self, links: list[SimLink], payload: bytes, src: str, dst: str
    ) -> None:
        for link in links:
            if link.secure:
                continue
            for observer in self._observers.get(link.endpoints(), ()):
                observer(payload, src, dst)
