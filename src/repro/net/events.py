"""Discrete-event scheduler with a virtual clock.

The simulated network, Switchboard heartbeats, and credential expiry all
run against this scheduler so every experiment is deterministic and
independent of wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..clock import Clock


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventScheduler(Clock):
    """A deterministic discrete-event loop.

    Events scheduled for the same time fire in scheduling order.  The
    scheduler *is* a :class:`~repro.clock.Clock`, so components that only
    need to read time can take it directly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> Callable[[], None]:
        """Schedule ``action`` at ``now + delay``; returns a cancel function."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = _Event(time=self._now + delay, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)

        def cancel() -> None:
            event.cancelled = True

        return cancel

    def schedule_at(self, timestamp: float, action: Callable[[], None]) -> Callable[[], None]:
        return self.schedule(timestamp - self._now, action)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start_delay: float | None = None,
    ) -> Callable[[], None]:
        """Schedule a repeating action; returns a cancel function."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        cancelled = False
        inner_cancel: Callable[[], None] = lambda: None

        def fire() -> None:
            nonlocal inner_cancel
            if cancelled:
                return
            action()
            if not cancelled:
                inner_cancel = self.schedule(interval, fire)

        inner_cancel = self.schedule(
            interval if start_delay is None else start_delay, fire
        )

        def cancel() -> None:
            nonlocal cancelled
            cancelled = True
            inner_cancel()

        return cancel

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event; returns False when the queue is dry."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.action()
            return True
        return False

    def run_until(self, timestamp: float) -> None:
        """Run all events up to and including ``timestamp``, then set the
        clock to exactly ``timestamp``."""
        if timestamp < self._now:
            raise ValueError("time cannot go backwards")
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > timestamp:
                break
            self.step()
        self._now = timestamp

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events processed."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event loop did not quiesce within {max_events} events"
                )
        return count

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
