"""Simulated multi-domain network substrate.

Replaces the paper's physical three-site testbed (DESIGN.md §2): a
deterministic discrete-event scheduler, nodes/links with properties, and a
transport with latency + bandwidth modelling and per-link eavesdropping on
insecure links.
"""

from .events import EventScheduler
from .simnet import Network, SimLink, SimNode
from .transport import Transport, TransportStats

__all__ = [
    "EventScheduler",
    "Network",
    "SimLink",
    "SimNode",
    "Transport",
    "TransportStats",
]
