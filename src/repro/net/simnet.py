"""Simulated multi-domain network: nodes, links, and topology.

Models the paper's evaluation environment (§2.2): three LAN sites with
"fast and reliable links, connected to each other by high latency and
insecure WAN links".  Nodes and links carry property maps — the raw
material that dRBAC credentials translate into application-level
properties (§3.3, node authorization).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..errors import LinkDownError, NetworkError, NodeDownError

Handler = Callable[[bytes, str], None]
"""Service handler: (payload, sender node name) -> None."""


@dataclass
class SimNode:
    """A host in the simulated network.

    ``properties`` holds domain-local facts ("vendor": "Dell", "os":
    "Linux", "cpu": 100) that Guards encode as dRBAC credentials; the
    framework never reads them directly for authorization decisions.
    """

    name: str
    domain: str = ""
    properties: dict = field(default_factory=dict)
    up: bool = True
    """Crash-stop flag: a down node neither routes nor delivers; the fault
    injector flips it (via the environment monitor, so planners re-plan)."""
    _services: dict[str, Handler] = field(default_factory=dict, repr=False)

    def bind(self, service: str, handler: Handler) -> None:
        """Register (or replace) the handler for a named service port."""
        self._services[service] = handler

    def unbind(self, service: str) -> None:
        self._services.pop(service, None)

    def deliver(self, service: str, payload: bytes, sender: str) -> None:
        if not self.up:
            raise NodeDownError(f"node {self.name} is down")
        handler = self._services.get(service)
        if handler is None:
            raise NetworkError(
                f"node {self.name} has no service {service!r}"
            )
        handler(payload, sender)

    def has_service(self, service: str) -> bool:
        return service in self._services


@dataclass
class SimLink:
    """A bidirectional link with latency, bandwidth, and a security flag.

    ``secure=False`` marks the paper's "insecure WAN links": registered
    eavesdroppers observe every frame crossing such a link, which is how
    tests demonstrate that Switchboard (or an encryptor/decryptor pair)
    is required for privacy.
    """

    a: str
    b: str
    latency_s: float = 0.001
    bandwidth_bps: float = 1e9
    secure: bool = True
    up: bool = True
    loss_rate: float = 0.0
    """Probability each frame crossing this link is dropped (failure
    injection; the transport draws from its seeded RNG)."""
    properties: dict = field(default_factory=dict)
    bytes_carried: int = field(default=0, repr=False)
    frames_dropped: int = field(default=0, repr=False)
    batches_carried: int = field(default=0, repr=False)
    """Multi-frame batches that crossed this link (frame batching)."""

    def endpoints(self) -> frozenset[str]:
        return frozenset((self.a, self.b))

    def transfer_delay(self, nbytes: int) -> float:
        """Propagation latency plus serialization time for ``nbytes``."""
        if self.bandwidth_bps <= 0:
            raise NetworkError(f"link {self.a}<->{self.b} has no bandwidth")
        return self.latency_s + (nbytes * 8) / self.bandwidth_bps


class Network:
    """Topology container with shortest-path routing.

    Routing minimizes per-byte delay for a nominal 1 KiB frame, which makes
    low-latency high-bandwidth paths preferred — the same bias the paper's
    planner exploits when deciding where to place caches.
    """

    _ROUTE_PROBE_BYTES = 1024

    def __init__(self) -> None:
        self._nodes: dict[str, SimNode] = {}
        self._links: dict[frozenset[str], SimLink] = {}
        self._adjacency: dict[str, set[str]] = {}

    # -- construction --------------------------------------------------------

    def add_node(
        self, name: str, *, domain: str = "", properties: dict | None = None
    ) -> SimNode:
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        node = SimNode(name=name, domain=domain, properties=dict(properties or {}))
        self._nodes[name] = node
        self._adjacency[name] = set()
        return node

    def add_link(
        self,
        a: str,
        b: str,
        *,
        latency_s: float = 0.001,
        bandwidth_bps: float = 1e9,
        secure: bool = True,
        loss_rate: float = 0.0,
        properties: dict | None = None,
    ) -> SimLink:
        if a not in self._nodes or b not in self._nodes:
            raise NetworkError(f"link endpoints must exist: {a!r}, {b!r}")
        if a == b:
            raise NetworkError("self-links are not allowed")
        if not 0.0 <= loss_rate <= 1.0:
            raise NetworkError(f"loss_rate must be within [0, 1], got {loss_rate}")
        key = frozenset((a, b))
        if key in self._links:
            raise NetworkError(f"duplicate link {a!r}<->{b!r}")
        link = SimLink(
            a=a,
            b=b,
            latency_s=latency_s,
            bandwidth_bps=bandwidth_bps,
            secure=secure,
            loss_rate=loss_rate,
            properties=dict(properties or {}),
        )
        self._links[key] = link
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        return link

    # -- lookup ----------------------------------------------------------------

    def node(self, name: str) -> SimNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def link(self, a: str, b: str) -> SimLink:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}<->{b!r}") from None

    def nodes(self) -> list[SimNode]:
        return list(self._nodes.values())

    def links(self) -> list[SimLink]:
        return list(self._links.values())

    def neighbors(self, name: str) -> set[str]:
        return set(self._adjacency.get(name, ()))

    def nodes_in_domain(self, domain: str) -> list[SimNode]:
        return [n for n in self._nodes.values() if n.domain == domain]

    # -- routing -----------------------------------------------------------------

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Dijkstra over live links and live nodes; raises when no route
        exists (a crash-stopped node cannot originate, relay, or sink)."""
        if src not in self._nodes or dst not in self._nodes:
            raise NetworkError(f"unknown endpoint: {src!r} or {dst!r}")
        if not self._nodes[src].up or not self._nodes[dst].up:
            raise NodeDownError(f"no route from {src!r} to {dst!r}: endpoint down")
        if src == dst:
            return [src]
        dist: dict[str, float] = {src: 0.0}
        prev: dict[str, str] = {}
        heap: list[tuple[float, str]] = [(0.0, src)]
        visited: set[str] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == dst:
                break
            for v in self._adjacency[u]:
                link = self._links[frozenset((u, v))]
                if not link.up or not self._nodes[v].up:
                    continue
                nd = d + link.transfer_delay(self._ROUTE_PROBE_BYTES)
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if dst not in dist:
            raise LinkDownError(f"no route from {src!r} to {dst!r}")
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def path_links(self, path: list[str]) -> list[SimLink]:
        return [self.link(a, b) for a, b in zip(path, path[1:])]

    def path_delay(self, path: list[str], nbytes: int) -> float:
        return sum(link.transfer_delay(nbytes) for link in self.path_links(path))

    def path_is_secure(self, path: Iterable[str] | list[str]) -> bool:
        path = list(path)
        return all(link.secure for link in self.path_links(path))

    def min_bandwidth(self, path: list[str]) -> float:
        links = self.path_links(path)
        return min((l.bandwidth_bps for l in links), default=float("inf"))
