"""Clock abstractions shared across subsystems.

Credential expiry, heartbeat timing, and the simulated network all consume
time through the :class:`Clock` protocol so tests can drive a
:class:`ManualClock` deterministically while examples may use the
:class:`SystemClock`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything that can report the current time in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class ManualClock:
    """Deterministic clock advanced explicitly by tests and simulations."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time, monotonically."""
        if timestamp < self._now:
            raise ValueError("time cannot go backwards")
        self._now = float(timestamp)


class SystemClock:
    """Wall-clock time (monotonic), for interactive examples."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin
