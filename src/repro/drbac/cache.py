"""Monitored proof caching.

Authorization decisions in PSF recur — the same client hits the same
role check on every request in systems without single sign-on, and the
planner re-asks the same node/component queries per planning pass.  A
:class:`CachedAuthorizer` memoizes :class:`AuthorizationResult`s and uses
their live :class:`~repro.drbac.monitor.ProofMonitor`s for *sound*
invalidation: a cached proof is served only while every credential in it
is unrevoked and unexpired, so caching never extends access beyond what a
fresh search would grant.

This is the middle ground between the paper's two poles (per-call proof
search vs authorize-once views); ``benchmarks/bench_sso_overhead.py``
ablates all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .. import obs
from ..obs import names as metric_names
from .delegation import Delegation
from .engine import AuthorizationResult, DrbacEngine
from .model import Attributes, Role, Subject, subject_key


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class CachedAuthorizer:
    """Memoizing façade over :meth:`DrbacEngine.authorize`."""

    def __init__(self, engine: DrbacEngine, *, max_entries: int = 4096) -> None:
        self.engine = engine
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._cache: dict[tuple, AuthorizationResult] = {}

    def _key(
        self,
        subject: Subject | str,
        role: Role | str,
        required_attributes: Attributes | None,
    ) -> tuple:
        attrs_key = (
            tuple(sorted((k, str(v)) for k, v in required_attributes.items()))
            if required_attributes
            else ()
        )
        return (str(subject), str(role), attrs_key)

    def authorize(
        self,
        subject: Subject | str,
        role: Role | str,
        credentials: Iterable[Delegation] | None = None,
        *,
        required_attributes: Attributes | None = None,
    ) -> AuthorizationResult:
        """Serve from cache while the cached proof remains live."""
        key = self._key(subject, role, required_attributes)
        cached = self._cache.get(key)
        if cached is not None:
            if cached.valid and cached.monitor.check_expiry(self.engine.clock.now()):
                self.stats.hits += 1
                obs.counter(metric_names.CACHE_HITS).inc()
                return cached
            # Revoked or lapsed: drop it and fall through to a fresh search.
            cached.close()
            del self._cache[key]
            self.stats.invalidated += 1
            obs.counter(metric_names.CACHE_INVALIDATED).inc()
            # Keep the gauge honest even if the fresh search below raises.
            obs.gauge(metric_names.CACHE_ENTRIES).set(len(self._cache))
        self.stats.misses += 1
        obs.counter(metric_names.CACHE_MISSES).inc()
        result = self.engine.authorize(
            subject, role, credentials, required_attributes=required_attributes
        )
        if len(self._cache) >= self.max_entries:
            # Evict the oldest entry (insertion order) — simple and bounded.
            oldest = next(iter(self._cache))
            self._cache.pop(oldest).close()
        self._cache[key] = result
        obs.gauge(metric_names.CACHE_ENTRIES).set(len(self._cache))
        return result

    def is_authorized(
        self,
        subject: Subject | str,
        role: Role | str,
        credentials: Iterable[Delegation] | None = None,
        *,
        required_attributes: Attributes | None = None,
    ) -> bool:
        from ..errors import AuthorizationError

        try:
            self.authorize(
                subject, role, credentials, required_attributes=required_attributes
            )
            return True
        except AuthorizationError:
            return False

    def clear(self) -> None:
        for result in self._cache.values():
            result.close()
        self._cache.clear()
        obs.gauge(metric_names.CACHE_ENTRIES).set(0)

    def __len__(self) -> int:
        return len(self._cache)
