"""Monitored proof caching, sharded for the hot path.

Authorization decisions in PSF recur — the same client hits the same
role check on every request in systems without single sign-on, and the
planner re-asks the same node/component queries per planning pass.  A
:class:`CachedAuthorizer` memoizes :class:`AuthorizationResult`s and uses
their live :class:`~repro.drbac.monitor.ProofMonitor`s for *sound*
invalidation: a cached proof is served only while every credential in it
is unrevoked and unexpired, so caching never extends access beyond what a
fresh search would grant.

The cache is **sharded**: keys spread across independent LRU shards by a
seed-stable hash, so capacity pressure in one hot shard cannot evict the
whole working set, and a revocation storm invalidates only the shards it
touches.  Invalidation is both *eager* (each cached proof's monitor
removes its own entry the instant any of its credentials is revoked —
revocation storms shrink the cache immediately instead of leaving
landmines for later lookups) and *lazy* (expiry is a clock condition and
is re-checked per hit).

**Negative caching**: denials are remembered too.  A denial can only be
upgraded by a *new* credential, never by a revocation or by time passing.
When the engine's :class:`~repro.drbac.incremental.IncrementalProofEngine`
covers the query, a cached denial is *delta-keyed*: it survives unrelated
publishes and is dropped precisely when a publish delta reports that its
principal newly reached its role.  Outside that regime (attribute
constraints, non-simple graphs, ``incremental=False`` engines) the denial
falls back to version keying — valid exactly while the repository's
publish version is unchanged.

**Precise invalidation**: every positive entry records the credential ids
its proof traversed, registered in a per-credential watch table backed by
the engine's :class:`~repro.drbac.monitor.MonitorHub` — so the cache holds
exactly *one* revocation subscription per distinct credential no matter
how many entries share it, and a revocation (or an expiry delta) evicts
only the dependent entries instead of sweeping the cache.

This is the middle ground between the paper's two poles (per-call proof
search vs authorize-once views); ``benchmarks/bench_sso_overhead.py``
ablates all three.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

from .. import obs
from ..errors import AuthorizationError
from ..obs import names as metric_names
from .delegation import Delegation
from .engine import AuthorizationResult, DrbacEngine
from .model import Attributes, Role, Subject
from .monitor import ProofMonitor


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidated: int = 0
    evicted: int = 0
    negative_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.negative_hits

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.hits + self.negative_hits) / lookups


@dataclass(slots=True)
class _Entry:
    """One cached decision: a live grant or a denial."""

    result: AuthorizationResult | None
    """``None`` marks a negative entry (the search found no proof)."""
    denial: str = ""
    repo_version: int = -1
    """Repository publish version a negative entry was computed at."""
    delta_keyed: bool = False
    """Negative entry invalidated by publish deltas instead of version."""
    cred_ids: tuple[str, ...] = ()
    """Exact credentials a positive entry's proof traversed (watch keys)."""


class _Watch:
    """Per-credential watch: one hub attachment, many dependent entries."""

    __slots__ = ("entries", "detach")

    def __init__(self) -> None:
        self.entries: dict[tuple, tuple["_Shard", _Entry]] = {}
        self.detach: Callable[[], None] = lambda: None


class _Shard:
    """One LRU shard; all mutation goes through the owning cache so the
    stats counters and the entries gauge can never drift from content."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: OrderedDict[tuple, _Entry] = OrderedDict()


class CachedAuthorizer:
    """Sharded memoizing façade over :meth:`DrbacEngine.authorize`.

    Calls that present an *explicit* credential set bypass the cache
    entirely: the memo key is (subject, role, attributes), and a result
    computed from one hand-picked credential set must not answer for a
    different one.
    """

    def __init__(
        self,
        engine: DrbacEngine,
        *,
        max_entries: int = 4096,
        shards: int = 8,
        negative: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.engine = engine
        self.max_entries = max_entries
        # Clamp so per-shard capacities (floor division) sum to at most
        # max_entries: the global bound holds even for tiny caches.
        self.shards = min(shards, max_entries)
        self.negative = negative
        self.stats = CacheStats()
        self._shards = [_Shard() for _ in range(self.shards)]
        self._per_shard = max_entries // self.shards
        self._watches: dict[str, _Watch] = {}
        if engine.incremental is not None:
            engine.incremental.on_delta(self._on_delta)

    # -- keying --------------------------------------------------------------

    def _key(
        self,
        subject: Subject | str,
        role: Role | str,
        required_attributes: Attributes | None,
    ) -> tuple:
        attrs_key = (
            tuple(sorted((k, str(v)) for k, v in required_attributes.items()))
            if required_attributes
            else ()
        )
        return (str(subject), str(role), attrs_key)

    def _shard_for(self, key: tuple) -> _Shard:
        # crc32, not hash(): stable across processes (PYTHONHASHSEED), so
        # shard placement — and thus eviction order — is deterministic.
        digest = zlib.crc32("|".join((key[0], key[1], repr(key[2]))).encode())
        return self._shards[digest % self.shards]

    # -- the memoized call ----------------------------------------------------

    def authorize(
        self,
        subject: Subject | str,
        role: Role | str,
        credentials: Iterable[Delegation] | None = None,
        *,
        required_attributes: Attributes | None = None,
    ) -> AuthorizationResult:
        """Serve from cache while the cached decision remains sound."""
        if credentials is not None:
            try:
                result = self.engine.authorize(
                    subject, role, credentials, required_attributes=required_attributes
                )
            except AuthorizationError:
                self._audit(subject, role, cache="bypass", verdict="deny")
                raise
            self._audit(
                subject, role, cache="bypass", verdict="grant",
                chain=len(result.proof.chain),
            )
            return result
        key = self._key(subject, role, required_attributes)
        shard = self._shard_for(key)
        entry = shard.entries.get(key)
        if entry is not None:
            served = self._serve(shard, key, entry, subject, role)
            if served is not None:
                return served
        self.stats.misses += 1
        obs.counter(metric_names.CACHE_MISSES).inc()
        repo_version = self.engine.repository.version
        try:
            result = self.engine.authorize(
                subject, role, required_attributes=required_attributes
            )
        except AuthorizationError as denial:
            self._audit(subject, role, cache="miss", verdict="deny")
            if self.negative:
                incremental = self.engine.incremental
                self._insert(
                    shard,
                    key,
                    _Entry(
                        result=None,
                        denial=str(denial),
                        repo_version=repo_version,
                        delta_keyed=(
                            incremental is not None
                            and incremental.covers(required_attributes)
                        ),
                    ),
                )
            raise
        self._audit(
            subject, role, cache="miss", verdict="grant",
            chain=len(result.proof.chain),
        )
        entry = _Entry(
            result=result,
            cred_ids=tuple(
                d.credential_id for d in result.proof.all_delegations()
            ),
        )
        self._insert(shard, key, entry)
        self._watch(shard, key, entry)
        return result

    @staticmethod
    def _audit(
        subject: Subject | str,
        role: Role | str,
        *,
        cache: str,
        verdict: str,
        chain: int = 0,
    ) -> None:
        """One audit-trail record per authorization decision: who asked
        for what, how it was answered, and how long the proof chain was
        (0 for denials) — the auditable-delegation trail the flight
        recorder replays after a failure."""
        obs.event(
            "auth.decision", principal=str(subject), target=str(role),
            cache=cache, verdict=verdict, chain=chain,
        )

    def _serve(
        self,
        shard: _Shard,
        key: tuple,
        entry: _Entry,
        subject: Subject | str,
        role: Role | str,
    ) -> AuthorizationResult | None:
        """Return the cached decision if still sound, else drop it."""
        if entry.result is None:
            # Negative entry: a delta-keyed denial is evicted precisely by
            # the publish delta that upgrades it, so it is sound until
            # then; a version-keyed one is sound while nothing new has
            # been published at all.
            if entry.delta_keyed or entry.repo_version == self.engine.repository.version:
                shard.entries.move_to_end(key)
                self.stats.negative_hits += 1
                obs.counter(metric_names.CACHE_NEGATIVE_HITS).inc()
                self._audit(subject, role, cache="negative", verdict="deny")
                raise AuthorizationError(entry.denial)
            self._remove(shard, key, entry, why="invalidated")
            return None
        cached = entry.result
        if cached.valid and cached.monitor.check_expiry(self.engine.clock.now()):
            shard.entries.move_to_end(key)
            self.stats.hits += 1
            obs.counter(metric_names.CACHE_HITS).inc()
            self._audit(
                subject, role, cache="hit", verdict="grant",
                chain=len(cached.proof.chain),
            )
            return cached
        # Revoked or lapsed: drop it and fall through to a fresh search.
        self._remove(shard, key, entry, why="invalidated")
        return None

    # -- mutation (single path, so stats and gauge cannot drift) ---------------

    def _insert(self, shard: _Shard, key: tuple, entry: _Entry) -> None:
        """Store ``entry``, evicting LRU entries to stay within capacity.

        Eviction is atomic with respect to stats: the displaced entry is
        removed, closed, counted, and the gauge refreshed before the new
        entry lands — a concurrent revocation callback arriving between
        the pop and the insert sees a consistent cache (the regression in
        ``tests/drbac/test_cache.py::TestEvictionAtomicity`` pins this).
        """
        existing = shard.entries.get(key)
        if existing is not None:
            # A lookup raced a revocation/re-issue cycle: replace in place.
            self._remove(shard, key, existing, why="invalidated")
        while len(shard.entries) >= self._per_shard and shard.entries:
            oldest_key, oldest = next(iter(shard.entries.items()))
            self._remove(shard, oldest_key, oldest, why="evicted")
        shard.entries[key] = entry
        self._sync_gauge()

    def _remove(self, shard: _Shard, key: tuple, entry: _Entry, *, why: str) -> None:
        """Drop one entry and account for it — the only removal path."""
        current = shard.entries.get(key)
        if current is not entry:
            return  # already removed (eager invalidation raced a lookup)
        del shard.entries[key]
        if entry.result is not None:
            entry.result.close()
        for cred_id in entry.cred_ids:
            watch = self._watches.get(cred_id)
            if watch is None:
                continue
            watch.entries.pop(key, None)
            if not watch.entries:
                watch.detach()
                del self._watches[cred_id]
        if why == "evicted":
            self.stats.evicted += 1
            obs.counter(metric_names.CACHE_EVICTED).inc()
        else:
            self.stats.invalidated += 1
            obs.counter(metric_names.CACHE_INVALIDATED).inc()
        self._sync_gauge()

    def _watch(self, shard: _Shard, key: tuple, entry: _Entry) -> None:
        """Register the entry under each credential its proof traversed.

        One :class:`_Watch` (and thus one hub attachment, and one
        authority subscription) exists per distinct credential id however
        many entries depend on it.  Storm-safe like the old per-entry
        callbacks: a revocation fires synchronously and evicts exactly
        the dependent entries — the entries gauge tracks reality *during*
        the storm, and no stale grant can be observed even before its
        next lookup.
        """
        assert entry.result is not None
        for delegation in entry.result.proof.all_delegations():
            cred_id = delegation.credential_id
            watch = self._watches.get(cred_id)
            if watch is None:
                watch = _Watch()
                watch.detach = self.engine.monitor_hub.attach(
                    delegation,
                    self._on_credential_dead,
                )
                self._watches[cred_id] = watch
            watch.entries[key] = (shard, entry)

    def _on_credential_dead(self, credential_id: str) -> None:
        """Evict every entry whose proof used the dead credential."""
        watch = self._watches.get(credential_id)
        if watch is None:
            return
        for key, (shard, entry) in list(watch.entries.items()):
            self._remove(shard, key, entry, why="invalidated")

    def _on_delta(self, delta) -> None:
        """Precise invalidation from the incremental engine's stream.

        Publish deltas name exactly the (principal, role) pairs whose
        denial just became stale; the conservative form (``principals is
        None``, emitted when the graph leaves the simple regime) drops
        every delta-keyed denial at once.  Expiry deltas evict dependent
        grants eagerly — revocations already did, via the hub watch.
        """
        if delta.kind == "publish":
            if delta.principals is None:
                stale = [
                    (shard, key, entry)
                    for shard in self._shards
                    for key, entry in list(shard.entries.items())
                    if entry.result is None and entry.delta_keyed
                ]
                for shard, key, entry in stale:
                    self._remove(shard, key, entry, why="invalidated")
                return
            for principal in delta.principals:
                for role in delta.roles.get(principal, ()):
                    key = (principal, role, ())
                    shard = self._shard_for(key)
                    entry = shard.entries.get(key)
                    if (
                        entry is not None
                        and entry.result is None
                        and entry.delta_keyed
                    ):
                        self._remove(shard, key, entry, why="invalidated")
        else:
            self._on_credential_dead(delta.credential_id)

    def _sync_gauge(self) -> None:
        obs.gauge(metric_names.CACHE_ENTRIES).set(len(self))

    # -- crash recovery --------------------------------------------------------

    def recover(self, *, published: frozenset[str]) -> tuple[int, int]:
        """Scrub the cache against recovered durable state.

        Called by :class:`~repro.durable.node.DurableNode` *after* the
        engine's hub/directory/repository/incremental state has been
        rebuilt.  The rule is conservative: keep a positive entry only if
        every credential its proof traversed is provable from durable
        state — present in ``published``, unrevoked, and unexpired — and
        drop **every** negative entry (a publish that landed while the
        node was down may have upgraded any denial, and the pre-crash
        delta stream that kept delta-keyed denials sound is gone).

        Surviving entries get fresh :class:`ProofMonitor`s and watch-table
        rows: their pre-crash subscriptions died with the hub, so without
        re-watching, a post-recovery revocation would never evict them.
        Returns ``(evicted, kept)``.
        """
        for watch in self._watches.values():
            watch.detach()  # no-op for pre-crash hub channels; exact otherwise
        self._watches.clear()
        engine = self.engine
        now = engine.clock.now()
        evicted = kept = 0
        for shard in self._shards:
            for key, entry in list(shard.entries.items()):
                provable = entry.result is not None and all(
                    d.credential_id in published
                    and not engine.revocations.is_revoked(d)
                    and not d.is_expired(now)
                    for d in entry.result.proof.all_delegations()
                )
                if not provable:
                    self._remove(shard, key, entry, why="invalidated")
                    evicted += 1
                    continue
                entry.result.monitor.close()
                entry.result.monitor = ProofMonitor(
                    entry.result.proof.all_delegations(),
                    engine.revocations,
                    hub=engine.monitor_hub,
                )
                self._watch(shard, key, entry)
                kept += 1
        self._sync_gauge()
        return evicted, kept

    # -- conveniences ---------------------------------------------------------

    def is_authorized(
        self,
        subject: Subject | str,
        role: Role | str,
        credentials: Iterable[Delegation] | None = None,
        *,
        required_attributes: Attributes | None = None,
    ) -> bool:
        try:
            self.authorize(
                subject, role, credentials, required_attributes=required_attributes
            )
            return True
        except AuthorizationError:
            return False

    def clear(self) -> None:
        for shard in self._shards:
            for entry in shard.entries.values():
                if entry.result is not None:
                    entry.result.close()
            shard.entries.clear()
        for watch in self._watches.values():
            watch.detach()
        self._watches.clear()
        self._sync_gauge()

    def shard_sizes(self) -> list[int]:
        return [len(shard.entries) for shard in self._shards]

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)
