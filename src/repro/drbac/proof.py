"""Proof-graph construction: the dRBAC authorization decision procedure.

Section 3.1: "Authorization is granted if the dRBAC module can construct a
graph (proof) from valid and authenticated credentials in X that 'proves'
that S possesses the rights required by R."

Semantics implemented here:

* **Membership.** ``S`` holds role ``R`` iff there is a chain of valid
  delegations ``d1 .. dk`` with ``subject(d1) = S``, ``role(di) =
  subject(d(i+1))`` and ``role(dk) = R``.
* **Issuer authority.** A *self-certifying* delegation (issuer owns the
  role) is usable on signature alone.  A *third-party* delegation is usable
  only when its issuer provably holds the **right of assignment**
  (``Entity.Role'``) for that role — established either directly by the
  role owner via an *assignment* delegation, or transitively through
  further assignment delegations / role memberships.
* **Attenuation.** Valued attributes meet (intersect / min) along the
  membership chain; a chain whose attributes become empty is unusable.

Two search strategies are provided (mirroring Sekitei's regression and
progression, and ablated by ``benchmarks/bench_proof_search.py``):
*regression* walks backward from the goal role; *progression* walks forward
from the subject.  Both return identical authorization decisions.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable, Literal, Optional

from .. import obs
from ..crypto.keys import PublicIdentity
from ..obs import names as metric_names
from .delegation import Delegation, DelegationType
from .model import (
    Attributes,
    EntityRef,
    IncompatibleAttributes,
    Role,
    Subject,
    attributes_satisfy,
    meet_attributes,
    subject_key,
)
from .monitor import RevocationDirectory

SearchDirection = Literal["regression", "progression"]


@dataclass(slots=True)
class Proof:
    """A successful authorization proof.

    ``chain`` is the membership chain from the subject to the goal role, in
    subject-to-goal order.  ``support`` holds the assignment-right evidence
    used to validate third-party issuers.  ``attributes`` is the attenuated
    attribute map effective for the authorized subject.
    """

    subject: Subject
    role: Role
    chain: list[Delegation]
    support: list[Delegation] = field(default_factory=list)
    attributes: Attributes = field(default_factory=dict)
    edges_visited: int = 0

    def all_delegations(self) -> list[Delegation]:
        """Every credential the proof depends on (chain + support), deduped."""
        seen: dict[str, Delegation] = {}
        for delegation in self.chain + self.support:
            seen[delegation.credential_id] = delegation
        return list(seen.values())

    def __str__(self) -> str:
        steps = " ; ".join(str(d) for d in self.chain)
        return f"{subject_key(self.subject)} |- {self.role} via {steps}"


class ProofEngine:
    """Searches credential sets for authorization proofs.

    Args:
        identities: directory resolving entity names to public identities
            for signature verification.  Credentials from unknown issuers
            are unusable (their authenticity cannot be established).
        revocations: revocation state; revoked credentials are unusable.
        now: evaluation time for expiry checks.
    """

    def __init__(
        self,
        identities: dict[str, PublicIdentity],
        revocations: RevocationDirectory | None = None,
        *,
        now: float = 0.0,
        verify_signatures: bool = True,
    ) -> None:
        self._identities = identities
        self._revocations = revocations or RevocationDirectory()
        self._now = now
        self._verify_signatures = verify_signatures
        self.edges_visited = 0

    # -- public API ------------------------------------------------------

    def find_proof(
        self,
        subject: Subject,
        role: Role,
        credentials: Iterable[Delegation],
        *,
        required_attributes: Attributes | None = None,
        direction: SearchDirection = "regression",
    ) -> Optional[Proof]:
        """Return a proof that ``subject`` holds ``role``, or ``None``.

        ``required_attributes`` restricts acceptable chains to those whose
        attenuated attributes cover the requirement (e.g. a node that must
        be ``Secure={true}`` with ``Trust`` at least ``(5,10)``).
        """
        if not obs.is_enabled():
            # Single-check fast path: searches are the hottest obs site,
            # and even null-span setup costs ~2% on small graphs.
            return self._find_proof(
                subject,
                role,
                credentials,
                required_attributes=required_attributes,
                direction=direction,
            )
        with obs.span("drbac.proof.search", role=str(role), direction=direction):
            proof = self._find_proof(
                subject,
                role,
                credentials,
                required_attributes=required_attributes,
                direction=direction,
            )
        obs.counter(metric_names.PROOF_SEARCHES).inc()
        obs.counter(
            metric_names.PROOF_SEARCHES_REGRESSION
            if direction == "regression"
            else metric_names.PROOF_SEARCHES_PROGRESSION
        ).inc()
        obs.histogram(metric_names.PROOF_EDGES_VISITED).observe(self.edges_visited)
        if proof is None:
            obs.counter(metric_names.PROOF_NOT_FOUND).inc()
        else:
            obs.counter(metric_names.PROOF_FOUND).inc()
            obs.histogram(metric_names.PROOF_CHAIN_LENGTH).observe(len(proof.chain))
        return proof

    def _find_proof(
        self,
        subject: Subject,
        role: Role,
        credentials: Iterable[Delegation],
        *,
        required_attributes: Attributes | None,
        direction: SearchDirection,
    ) -> Optional[Proof]:
        valid = [c for c in credentials if self._usable(c)]
        index = _CredentialIndex(valid)
        self.edges_visited = 0
        if direction == "regression":
            chain = self._regress(subject, role, index, stack=set())
        elif direction == "progression":
            chain = self._progress(subject, role, index)
        else:  # pragma: no cover - guarded by Literal type
            raise ValueError(f"unknown search direction: {direction}")
        if chain is None:
            return None
        try:
            attributes = _chain_attributes(chain)
        except IncompatibleAttributes:
            # Progression ignores attributes while searching; fall back to
            # an exhaustive pass for a chain whose attributes combine.
            chain = None
            for candidate in self._regress_all(subject, role, index, stack=set()):
                try:
                    attributes = _chain_attributes(candidate)
                except IncompatibleAttributes:
                    continue
                chain = candidate
                break
            if chain is None:
                return None
        if required_attributes and not attributes_satisfy(attributes, required_attributes):
            # Attribute-constrained retry: enumerate chains exhaustively
            # until one's attenuated attributes cover the requirement.
            # (Attributes only attenuate, so prefixes cannot be pruned —
            # a weak-looking prefix may still beat a strong-looking one.)
            chain = None
            for candidate in self._regress_all(subject, role, index, stack=set()):
                try:
                    candidate_attributes = _chain_attributes(candidate)
                except IncompatibleAttributes:
                    continue
                if attributes_satisfy(candidate_attributes, required_attributes):
                    chain = candidate
                    attributes = candidate_attributes
                    break
            if chain is None:
                return None
        support = self._collect_support(chain, index)
        return Proof(
            subject=subject,
            role=role,
            chain=chain,
            support=support,
            attributes=attributes,
            edges_visited=self.edges_visited,
        )

    def holds_role(
        self,
        subject: Subject,
        role: Role,
        credentials: Iterable[Delegation],
        *,
        required_attributes: Attributes | None = None,
    ) -> bool:
        return (
            self.find_proof(
                subject, role, credentials, required_attributes=required_attributes
            )
            is not None
        )

    # -- validity --------------------------------------------------------

    def _usable(self, delegation: Delegation) -> bool:
        """Authentic, unexpired, unrevoked — the per-credential gate."""
        if delegation.is_expired(self._now):
            return False
        if self._revocations.is_revoked(delegation):
            return False
        if self._verify_signatures:
            identity = self._identities.get(delegation.issuer)
            if identity is None or not delegation.verify_signature(identity):
                return False
        return True

    # -- issuer authority --------------------------------------------------

    def _issuer_authorized(
        self,
        delegation: Delegation,
        index: "_CredentialIndex",
        stack: set[tuple[str, str, str]],
    ) -> bool:
        """Check the issuer may administer the delegation's role."""
        if delegation.issuer == delegation.role.owner:
            return True
        return (
            self._assignment_chain(
                EntityRef(delegation.issuer), delegation.role, index, stack
            )
            is not None
        )

    def _assignment_chain(
        self,
        holder: Subject,
        role: Role,
        index: "_CredentialIndex",
        stack: set[tuple[str, str, str]],
    ) -> Optional[list[Delegation]]:
        """Prove ``holder`` possesses the right of assignment for ``role``."""
        goal = (subject_key(holder), str(role), "assign")
        if goal in stack:
            return None
        stack = stack | {goal}
        for delegation in index.assignments_for(role):
            self.edges_visited += 1
            if not self._issuer_authorized(delegation, index, stack):
                continue
            if subject_key(delegation.subject) == subject_key(holder):
                return [delegation]
            if isinstance(delegation.subject, Role):
                membership = self._regress(holder, delegation.subject, index, stack)
                if membership is not None:
                    return membership + [delegation]
        return None

    # -- regression (backward from the goal role) -------------------------

    def _regress(
        self,
        subject: Subject,
        role: Role,
        index: "_CredentialIndex",
        stack: set[tuple[str, str, str]],
    ) -> Optional[list[Delegation]]:
        """First valid chain, goal-directed (the satisficing fast path)."""
        goal = (subject_key(subject), str(role), "member")
        if goal in stack:
            return None
        stack = stack | {goal}
        for delegation in index.granting(role):
            self.edges_visited += 1
            if delegation.grants_assignment_right:
                continue  # assignment credentials do not convey membership
            if not self._issuer_authorized(delegation, index, stack):
                continue
            if subject_key(delegation.subject) == subject_key(subject):
                chain = [delegation]
            elif isinstance(delegation.subject, Role):
                prefix = self._regress(subject, delegation.subject, index, stack)
                if prefix is None:
                    continue
                chain = prefix + [delegation]
            else:
                continue
            try:
                _chain_attributes(chain)
            except IncompatibleAttributes:
                continue
            return chain
        return None

    def _regress_all(
        self,
        subject: Subject,
        role: Role,
        index: "_CredentialIndex",
        stack: set[tuple[str, str, str]],
    ):
        """Yield every acyclic membership chain from ``subject`` to ``role``."""
        goal = (subject_key(subject), str(role), "member")
        if goal in stack:
            return
        stack = stack | {goal}
        for delegation in index.granting(role):
            self.edges_visited += 1
            if delegation.grants_assignment_right:
                continue
            if not self._issuer_authorized(delegation, index, stack):
                continue
            if subject_key(delegation.subject) == subject_key(subject):
                yield [delegation]
            elif isinstance(delegation.subject, Role):
                for prefix in self._regress_all(
                    subject, delegation.subject, index, stack
                ):
                    yield prefix + [delegation]

    # -- progression (forward from the subject) ---------------------------

    def _progress(
        self,
        subject: Subject,
        role: Role,
        index: "_CredentialIndex",
    ) -> Optional[list[Delegation]]:
        """Dijkstra-flavoured forward BFS carrying back-pointers."""
        origin = subject_key(subject)
        parents: dict[str, tuple[str, Delegation]] = {}
        frontier: deque[str] = deque([origin])
        reached: set[str] = {origin}
        while frontier:
            key = frontier.popleft()
            for delegation in index.from_subject_key(key):
                self.edges_visited += 1
                if delegation.grants_assignment_right:
                    continue
                if not self._issuer_authorized(delegation, index, set()):
                    continue
                role_key = str(delegation.role)
                if role_key in reached:
                    continue
                reached.add(role_key)
                parents[role_key] = (key, delegation)
                if role_key == str(role):
                    return _walk_back(origin, role_key, parents)
                frontier.append(role_key)
        return None

    # -- support collection ------------------------------------------------

    def _collect_support(
        self, chain: list[Delegation], index: "_CredentialIndex"
    ) -> list[Delegation]:
        """Gather the assignment-right evidence for third-party links."""
        support: dict[str, Delegation] = {}
        for delegation in chain:
            if delegation.delegation_type is not DelegationType.THIRD_PARTY:
                continue
            evidence = self._assignment_chain(
                EntityRef(delegation.issuer), delegation.role, index, set()
            )
            for item in evidence or ():
                support[item.credential_id] = item
        return list(support.values())


def _walk_back(
    origin: str, goal: str, parents: dict[str, tuple[str, Delegation]]
) -> list[Delegation]:
    chain: list[Delegation] = []
    key = goal
    while key != origin:
        key, delegation = parents[key]
        chain.append(delegation)
    chain.reverse()
    return chain


def _chain_attributes(chain: list[Delegation]) -> Attributes:
    attributes: Attributes = {}
    for delegation in chain:
        attributes = meet_attributes(attributes, delegation.attributes)
    return attributes


class _CredentialIndex:
    """Fast lookups over a validated credential set."""

    def __init__(self, credentials: list[Delegation]) -> None:
        self._granting: dict[str, list[Delegation]] = defaultdict(list)
        self._assignments: dict[str, list[Delegation]] = defaultdict(list)
        self._from_subject: dict[str, list[Delegation]] = defaultdict(list)
        for delegation in credentials:
            role_key = str(delegation.role)
            if delegation.grants_assignment_right:
                self._assignments[role_key].append(delegation)
            else:
                self._granting[role_key].append(delegation)
            self._from_subject[subject_key(delegation.subject)].append(delegation)

    def granting(self, role: Role) -> list[Delegation]:
        return self._granting.get(str(role), [])

    def assignments_for(self, role: Role) -> list[Delegation]:
        return self._assignments.get(str(role), [])

    def from_subject_key(self, key: str) -> list[Delegation]:
        return self._from_subject.get(key, [])
