"""dRBAC delegations: the three credential types of Table 1.

=================  =====================================================
Self-certifying    ``[ Subject -> Issuer.Role ] Issuer`` — the issuer owns
                   the role's namespace, so its signature alone proves the
                   statement.
Third-party        ``[ Subject -> Entity.Role ] Issuer`` with Issuer ≠
                   Entity — additionally requires evidence that the issuer
                   holds the *right of assignment* for ``Entity.Role``.
Assignment         ``[ Subject -> Entity.Role' ] Issuer`` — grants the
                   subject the right of assignment for ``Entity.Role``
                   (the trailing ``'`` of the paper).
=================  =====================================================

Every delegation is cryptographically signed over a canonical byte
encoding; tampering with any field invalidates the signature.  Credentials
may carry an expiration time and may request online validity monitoring
from their home (Section 3.1), which :mod:`repro.drbac.monitor` implements.
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Identity, PublicIdentity
from ..errors import CredentialError
from .model import (
    AttrRange,
    AttrScalar,
    AttrSet,
    Attributes,
    AttributeValue,
    EntityRef,
    Role,
    Subject,
    subject_key,
)

_serial = itertools.count(1)


class DelegationType(enum.Enum):
    """The three dRBAC credential types (Table 1)."""

    SELF_CERTIFYING = "self-certifying"
    THIRD_PARTY = "third-party"
    ASSIGNMENT = "assignment"


def _attr_to_json(value: AttributeValue):
    if isinstance(value, AttrSet):
        return {"kind": "set", "values": sorted(map(repr, value.values))}
    if isinstance(value, AttrRange):
        return {"kind": "range", "low": value.low, "high": value.high}
    if isinstance(value, AttrScalar):
        return {"kind": "scalar", "value": value.value}
    raise TypeError(f"unknown attribute value type: {type(value).__name__}")


@dataclass(frozen=True, slots=True)
class Delegation:
    """One signed dRBAC credential.

    Attributes:
        subject: the entity or role receiving the rights.
        role: the role whose rights are conveyed (``Entity.Role``).
        issuer: dotted name of the signing entity.
        delegation_type: one of the Table 1 types.  ``ASSIGNMENT`` conveys
            the right of assignment (the paper's trailing ``'``) rather
            than membership itself.
        attributes: valued attributes attached ``with Attr=Val ...``.
        expires_at: absolute expiry on the virtual clock, or ``None``.
        requires_monitoring: when True, verifiers must hold an online
            validity monitor from the credential's home.
        home: entity responsible for revocation state (defaults to issuer).
        credential_id: unique id used by repositories and revocation.
        signature: issuer's RSA signature over :meth:`signing_bytes`.
    """

    subject: Subject
    role: Role
    issuer: str
    delegation_type: DelegationType
    attributes: Attributes = field(default_factory=dict)
    expires_at: Optional[float] = None
    requires_monitoring: bool = False
    home: Optional[str] = None
    credential_id: str = ""
    signature: bytes = b""

    @property
    def home_entity(self) -> str:
        return self.home if self.home is not None else self.issuer

    @property
    def grants_assignment_right(self) -> bool:
        return self.delegation_type is DelegationType.ASSIGNMENT

    def signing_bytes(self) -> bytes:
        """Canonical byte encoding covering every semantic field."""
        payload = {
            "v": 1,
            "subject": subject_key(self.subject),
            "subject_kind": "entity" if isinstance(self.subject, EntityRef) else "role",
            "role": str(self.role),
            "issuer": self.issuer,
            "type": self.delegation_type.value,
            "attributes": {
                name: _attr_to_json(value)
                for name, value in sorted(self.attributes.items())
            },
            "expires_at": self.expires_at,
            "requires_monitoring": self.requires_monitoring,
            "home": self.home_entity,
            "id": self.credential_id,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()

    def verify_signature(self, issuer_identity: PublicIdentity) -> bool:
        """Check the issuer signature against the issuer's public identity."""
        if issuer_identity.name != self.issuer:
            return False
        return issuer_identity.verify(self.signing_bytes(), self.signature)

    def is_expired(self, now: float) -> bool:
        return self.expires_at is not None and now > self.expires_at

    def __str__(self) -> str:
        mark = "'" if self.grants_assignment_right else ""
        attrs = ""
        if self.attributes:
            attrs = " with " + " ".join(
                f"{k}={v}" for k, v in sorted(self.attributes.items())
            )
        return f"[ {subject_key(self.subject)} -> {self.role}{mark}{attrs} ] {self.issuer}"


def classify(subject: Subject, role: Role, issuer: str, *, assignment: bool) -> DelegationType:
    """Derive the Table 1 type from the delegation's shape."""
    if assignment:
        return DelegationType.ASSIGNMENT
    if issuer == role.owner:
        return DelegationType.SELF_CERTIFYING
    return DelegationType.THIRD_PARTY


def issue(
    issuer_identity: Identity,
    subject: Subject,
    role: Role,
    *,
    assignment: bool = False,
    attributes: Attributes | None = None,
    expires_at: float | None = None,
    requires_monitoring: bool = False,
    home: str | None = None,
    credential_id: str | None = None,
) -> Delegation:
    """Create and sign a delegation.

    The delegation type is derived from the shape (issuer vs role owner,
    assignment flag) exactly as Table 1 defines.
    """
    delegation_type = classify(subject, role, issuer_identity.name, assignment=assignment)
    if credential_id is None:
        credential_id = f"cred-{next(_serial)}"
    unsigned = Delegation(
        subject=subject,
        role=role,
        issuer=issuer_identity.name,
        delegation_type=delegation_type,
        attributes=dict(attributes or {}),
        expires_at=expires_at,
        requires_monitoring=requires_monitoring,
        home=home,
        credential_id=credential_id,
        signature=b"",
    )
    signature = issuer_identity.sign(unsigned.signing_bytes())
    return Delegation(
        subject=unsigned.subject,
        role=unsigned.role,
        issuer=unsigned.issuer,
        delegation_type=unsigned.delegation_type,
        attributes=unsigned.attributes,
        expires_at=unsigned.expires_at,
        requires_monitoring=unsigned.requires_monitoring,
        home=unsigned.home,
        credential_id=unsigned.credential_id,
        signature=signature,
    )


def require_authentic(
    delegation: Delegation,
    issuer_identity: PublicIdentity,
    *,
    now: float = 0.0,
) -> None:
    """Raise :class:`CredentialError` unless the delegation is authentic
    (valid signature) and unexpired at ``now``."""
    if not delegation.verify_signature(issuer_identity):
        raise CredentialError(f"bad signature on {delegation}")
    if delegation.is_expired(now):
        raise CredentialError(
            f"credential {delegation.credential_id} expired at {delegation.expires_at}"
        )
