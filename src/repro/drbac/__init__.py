"""dRBAC: decentralized role-based access control (Section 3 of the paper).

Public API::

    from repro.drbac import DrbacEngine, Role, EntityRef, Constraint

    engine = DrbacEngine()
    engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")          # cred (1)
    engine.delegate("Comp.NY", "Comp.SD.Member", "Comp.NY.Member")  # cred (2)
    engine.delegate("Comp.SD", "Bob", "Comp.SD.Member")             # cred (11)
    proof = engine.find_proof("Bob", "Comp.NY.Member")              # via 2+11
"""

from .cache import CacheStats, CachedAuthorizer
from .delegation import Delegation, DelegationType, classify, issue, require_authentic
from .engine import AuthorizationResult, DrbacEngine
from .model import (
    AttrRange,
    AttrScalar,
    AttrSet,
    Attributes,
    AttributeValue,
    EntityRef,
    IncompatibleAttributes,
    Role,
    Subject,
    attributes_satisfy,
    meet_attributes,
    parse_attribute,
    parse_subject,
    subject_key,
)
from .monitor import (
    ProofMonitor,
    RevocationAuthority,
    RevocationDirectory,
    ValidityMonitor,
)
from .proof import Proof, ProofEngine
from .query import Constraint, ConstraintEvaluator
from .translate import (
    AclGroupPolicy,
    CapabilityPolicy,
    ForeignPolicy,
    PolicyTranslator,
    SyncReport,
    TranslationRule,
)
from .verify import ProofVerifier, VerificationResult
from .repository import (
    BOTH_TAGS,
    DiscoveryTag,
    DistributedRepository,
    RepositoryShard,
)
from .wallet import Wallet

__all__ = [
    "AclGroupPolicy",
    "AttrRange",
    "AttrScalar",
    "AttrSet",
    "AttributeValue",
    "Attributes",
    "AuthorizationResult",
    "BOTH_TAGS",
    "Constraint",
    "ConstraintEvaluator",
    "CacheStats",
    "CachedAuthorizer",
    "CapabilityPolicy",
    "Delegation",
    "DelegationType",
    "DiscoveryTag",
    "DistributedRepository",
    "DrbacEngine",
    "EntityRef",
    "ForeignPolicy",
    "PolicyTranslator",
    "ProofVerifier",
    "IncompatibleAttributes",
    "Proof",
    "ProofEngine",
    "ProofMonitor",
    "RepositoryShard",
    "RevocationAuthority",
    "RevocationDirectory",
    "SyncReport",
    "TranslationRule",
    "VerificationResult",
    "Role",
    "Subject",
    "ValidityMonitor",
    "Wallet",
    "attributes_satisfy",
    "classify",
    "issue",
    "meet_attributes",
    "parse_attribute",
    "parse_subject",
    "require_authentic",
    "subject_key",
]
