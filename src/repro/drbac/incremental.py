"""Incremental proof-graph maintenance over publish/revoke/expire deltas.

The full decision procedure (:mod:`repro.drbac.proof`) re-harvests and
re-searches the delegation graph on every query.  Under churn — the
revocation-storm and load mixes our harnesses generate — that makes
credential turnover the dominant authorization cost.  This module keeps
an indexed subject→role adjacency and *updates* per-principal
reachability instead:

* **publish** extends affected reachable sets by frontier expansion from
  the new edge (only principals that can already reach the edge's
  subject are affected);
* **revoke**/**expire** recompute only the *cone*: the principals whose
  current reach chains actually used the dead credential, tracked via a
  per-credential dependents index.

Every state change is also emitted as a :class:`Delta` so consumers —
the precise-invalidation :class:`~repro.drbac.cache.CachedAuthorizer`
and the monitor→adaptation path — can react without re-deriving it.

**Soundness regime.**  The fast path answers queries only while the
published graph is *simple*: every live credential is a self-certifying
membership delegation with no attributes (the regime of the churn/load
workloads and the simulation tester's generator).  On such graphs the
regression search's verdict coincides with plain reachability, which is
exactly what the maintained reach sets encode.  The first published
assignment, third-party, or attributed credential flips the engine to
the full-search path permanently — regression search is order-dependent
on attributed multi-path graphs, so verdict identity is only provable
attribute-free.  ``required_attributes`` queries always fall back.

``mutation`` deliberately breaks one delta rule (documented hooks, used
by the differential test to demonstrate it detects a broken engine):
``skip-expire-cone`` / ``skip-revoke-cone`` drop the cone recompute for
that event kind, leaving stale chains in the reach sets.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .. import obs
from ..obs import names as metric_names
from .delegation import Delegation, DelegationType
from .model import Attributes, Role, Subject, subject_key
from .proof import Proof

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import DrbacEngine

MUTATIONS = ("skip-expire-cone", "skip-revoke-cone")

DeltaKind = str  # "publish" | "revoke" | "expire"


@dataclass(frozen=True, slots=True)
class Delta:
    """One observable change to the live delegation graph.

    ``principals`` lists the principal keys whose reachable sets changed
    (``None`` means *unknown — treat every principal as affected*, the
    conservative form emitted once the graph leaves the simple regime).
    For publish deltas ``roles`` maps each affected principal to the
    roles it newly reached; revoke/expire deltas carry ``None`` there —
    the credential id itself identifies the dead dependency.
    """

    kind: DeltaKind
    credential_id: str
    principals: Optional[tuple[str, ...]]
    roles: Optional[dict[str, tuple[str, ...]]]


@dataclass(slots=True)
class _ReachState:
    """Reachability snapshot for one tracked principal.

    ``roles`` maps each reachable role string to the membership chain
    (credential ids, subject-to-goal order) that witnesses it; ``deps``
    is the union of those chains, mirrored into the engine-wide
    dependents index.
    """

    roles: dict[str, tuple[str, ...]]
    deps: set[str]


class IncrementalProofEngine:
    """Maintains reachability under deltas; answers simple-regime queries.

    Owned by a :class:`~repro.drbac.engine.DrbacEngine`; subscribes to
    the repository's publish stream and (per indexed credential) to the
    revocation authorities via the engine's :class:`MonitorHub`.  Expiry
    is a function of the clock, not an event, so an expiry min-heap is
    drained against ``clock.now()`` at every query (:meth:`refresh`).
    """

    def __init__(self, engine: "DrbacEngine") -> None:
        self._engine = engine
        self._simple = True
        self.mutation: str | None = None
        self.work = 0
        """Deterministic cost counter: edges touched by index maintenance
        and reach (re)computation.  ``bench-churn`` uses it as the
        incremental arm's work-unit meter."""

        # Live indexed graph (simple-regime credentials only).
        self._creds: dict[str, Delegation] = {}
        self._all_creds: dict[str, Delegation] = {}
        self._out: dict[str, list[str]] = {}
        self._expiry: list[tuple[float, str]] = []
        self._detach: dict[str, Callable[[], None]] = {}

        # Reachability and its inverted dependency index.
        self._reach: dict[str, _ReachState] = {}
        self._dependents: dict[str, set[str]] = {}

        self._listeners: list[Callable[[Delta], None]] = []
        engine.repository.on_publish(self._on_publish)

    # -- introspection -----------------------------------------------------

    @property
    def simple(self) -> bool:
        """Is the fast path still active (graph never left the regime)?"""
        return self._simple

    @property
    def tracked_principals(self) -> tuple[str, ...]:
        return tuple(self._reach)

    def dependents_of(self, credential_id: str) -> frozenset[str]:
        return frozenset(self._dependents.get(credential_id, ()))

    def dependents_index(self) -> dict[str, frozenset[str]]:
        return {cid: frozenset(pks) for cid, pks in self._dependents.items()}

    def reach_chain(self, principal_key: str, role_key: str) -> tuple[str, ...] | None:
        state = self._reach.get(principal_key)
        return state.roles.get(role_key) if state is not None else None

    def covers(self, required_attributes: Attributes | None = None) -> bool:
        """May a *denial* of this query be invalidated purely by deltas?

        Attribute-constrained queries are excluded even in the simple
        regime: a publish can widen attributes on an already-reached role
        without changing any reach set, so no delta would fire for it.
        """
        return self._simple and not required_attributes

    def on_delta(self, callback: Callable[[Delta], None]) -> None:
        """Subscribe to the delta stream (fires after state is updated)."""
        self._listeners.append(callback)

    # -- queries -------------------------------------------------------------

    def try_prove(
        self,
        subject: Subject,
        role: Role,
        required_attributes: Attributes | None = None,
    ) -> tuple[bool, Optional[Proof]]:
        """Answer from maintained reachability if the regime allows.

        Returns ``(handled, proof)``: when ``handled`` is ``False`` the
        caller must run the full search (the verdict here is undefined).
        """
        self.refresh()
        if not self.covers(required_attributes):
            obs.counter(metric_names.INCR_FALLBACKS).inc()
            return False, None
        obs.counter(metric_names.INCR_FAST_PROOFS).inc()
        pk = subject_key(subject)
        state = self._reach.get(pk)
        if state is None:
            state = self._compute_reach(pk)
        path = state.roles.get(str(role))
        if path is None:
            return True, None
        # _all_creds (not _creds): under a deliberate mutation a stale
        # chain may reference a dead credential, and the differential
        # test must see the wrong *grant*, not a crash.
        chain = [self._all_creds[cid] for cid in path]
        return True, Proof(subject=subject, role=role, chain=chain)

    def reset(self) -> None:
        """Drop every index and reach set (crash recovery).

        The durable layer republishes the recovered credential set
        afterwards, which rebuilds the adjacency, expiry heap, hub
        subscriptions, reachability, and dependents index from scratch —
        including re-entering the simple regime, which is decided by the
        *recovered* graph rather than remembered from the dead one.
        Delta listeners stay registered; ``work`` keeps accumulating so
        recovery cost shows up in the same meter as steady-state cost.
        """
        for detach in list(self._detach.values()):
            detach()
        self._detach.clear()
        self._creds.clear()
        self._all_creds.clear()
        self._out.clear()
        self._expiry.clear()
        self._reach.clear()
        self._dependents.clear()
        self._simple = True
        obs.gauge(metric_names.INCR_TRACKED).set(0)

    def refresh(self) -> None:
        """Drain credentials whose expiry instant has passed.

        Matches :meth:`Delegation.is_expired`: a credential is live *at*
        its expiry instant and dead strictly after it.
        """
        now = self._engine.clock.now()
        while self._expiry and self._expiry[0][0] < now:
            _, cred_id = heapq.heappop(self._expiry)
            self._dead(cred_id, "expire")

    # -- delta intake ----------------------------------------------------------

    def _on_publish(self, delegation: Delegation) -> None:
        cred_id = delegation.credential_id
        if cred_id in self._all_creds:
            return  # republish of an already-indexed credential: no new edge
        if not self._usable(delegation):
            return  # the full path can never use it either
        obs.counter(metric_names.INCR_PUBLISHES).inc()
        if self._simple and not self._is_simple(delegation):
            # Leaving the regime: every maintained answer is suspect from
            # here on, so ditch the reach sets and emit the conservative
            # "anyone may be affected" delta.
            self._simple = False
            self._reach.clear()
            self._dependents.clear()
            obs.gauge(metric_names.INCR_TRACKED).set(0)
        if not self._simple:
            self._emit(Delta("publish", cred_id, None, None))
            return

        self.refresh()
        self._all_creds[cred_id] = delegation
        self._creds[cred_id] = delegation
        self._out.setdefault(subject_key(delegation.subject), []).append(cred_id)
        if delegation.expires_at is not None:
            heapq.heappush(self._expiry, (delegation.expires_at, cred_id))
        self._detach[cred_id] = self._engine.monitor_hub.attach(
            delegation, self._on_revoked
        )
        changed = self._expand(delegation)
        obs.histogram(
            metric_names.INCR_DELTA_SIZE, metric_names.COUNT_BUCKETS
        ).observe(sum(len(roles) for roles in changed.values()))
        self._emit(Delta("publish", cred_id, tuple(sorted(changed)), changed))

    def _on_revoked(self, credential_id: str) -> None:
        obs.counter(metric_names.INCR_REVOCATIONS).inc()
        self._dead(credential_id, "revoke")

    def _dead(self, credential_id: str, kind: DeltaKind) -> None:
        delegation = self._creds.pop(credential_id, None)
        if delegation is None:
            return  # already dead (e.g. revoked before its expiry popped)
        if kind == "expire":
            obs.counter(metric_names.INCR_EXPIRIES).inc()
        bucket = self._out.get(subject_key(delegation.subject), [])
        if credential_id in bucket:
            bucket.remove(credential_id)
        detach = self._detach.pop(credential_id, None)
        if detach is not None:
            detach()
        cone = sorted(self._dependents.pop(credential_id, ()))
        obs.histogram(
            metric_names.INCR_CONE_SIZE, metric_names.COUNT_BUCKETS
        ).observe(len(cone))
        obs.histogram(metric_names.INCR_RECOMPUTE_RATIO).observe(
            len(cone) / len(self._reach) if self._reach else 0.0
        )
        if self.mutation != f"skip-{kind}-cone":
            for pk in cone:
                # Only principals whose chains used the dead edge are
                # recomputed; everyone else's reach set is untouched.
                self._compute_reach(pk)
        self._emit(Delta(kind, credential_id, tuple(cone), None))

    # -- reachability maintenance ----------------------------------------------

    def _compute_reach(self, principal_key: str) -> _ReachState:
        """Full forward BFS for one principal (track or re-track it)."""
        roles: dict[str, tuple[str, ...]] = {}
        frontier: deque[tuple[str, tuple[str, ...]]] = deque([(principal_key, ())])
        while frontier:
            node, chain = frontier.popleft()
            for cred_id in self._out.get(node, ()):
                self.work += 1
                role_key = str(self._creds[cred_id].role)
                if role_key == principal_key or role_key in roles:
                    continue
                roles[role_key] = chain + (cred_id,)
                frontier.append((role_key, roles[role_key]))
        state = _ReachState(roles=roles, deps=set())
        for chain in roles.values():
            state.deps.update(chain)
        self._set_state(principal_key, state)
        return state

    def _expand(self, delegation: Delegation) -> dict[str, tuple[str, ...]]:
        """Frontier expansion: fold one new edge into every affected
        tracked principal, returning the roles each newly reached."""
        edge_subject = subject_key(delegation.subject)
        edge_role = str(delegation.role)
        cred_id = delegation.credential_id
        changed: dict[str, tuple[str, ...]] = {}
        for pk, state in self._reach.items():
            if edge_subject == pk:
                base: tuple[str, ...] = ()
            elif edge_subject in state.roles:
                base = state.roles[edge_subject]
            else:
                continue  # the principal cannot reach the new edge
            if edge_role == pk or edge_role in state.roles:
                continue  # the edge's target was already reachable
            added: dict[str, tuple[str, ...]] = {edge_role: base + (cred_id,)}
            frontier: deque[str] = deque([edge_role])
            while frontier:
                node = frontier.popleft()
                for next_id in self._out.get(node, ()):
                    self.work += 1
                    role_key = str(self._creds[next_id].role)
                    if (
                        role_key == pk
                        or role_key in state.roles
                        or role_key in added
                    ):
                        continue
                    added[role_key] = added[node] + (next_id,)
                    frontier.append(role_key)
            state.roles.update(added)
            new_deps = set()
            for chain in added.values():
                new_deps.update(chain)
            for dep in new_deps - state.deps:
                self._dependents.setdefault(dep, set()).add(pk)
            state.deps |= new_deps
            changed[pk] = tuple(sorted(added))
        return changed

    def _set_state(self, principal_key: str, state: _ReachState) -> None:
        old = self._reach.get(principal_key)
        if old is not None:
            for dep in old.deps - state.deps:
                pks = self._dependents.get(dep)
                if pks is not None:
                    pks.discard(principal_key)
                    if not pks:
                        del self._dependents[dep]
        for dep in state.deps:
            self._dependents.setdefault(dep, set()).add(principal_key)
        self._reach[principal_key] = state
        obs.gauge(metric_names.INCR_TRACKED).set(len(self._reach))

    # -- helpers -----------------------------------------------------------------

    def _is_simple(self, delegation: Delegation) -> bool:
        return (
            delegation.delegation_type is DelegationType.SELF_CERTIFYING
            and not delegation.attributes
        )

    def _usable(self, delegation: Delegation) -> bool:
        """Authenticity gate, mirrored from the full path's ``_usable``:
        unknown issuers and bad signatures are rejected once at publish
        instead of on every search."""
        if self._engine.revocations.is_revoked(delegation):
            return False
        if delegation.is_expired(self._engine.clock.now()):
            return False
        if not self._engine._verify_signatures:
            return True
        if delegation.issuer not in self._engine.key_store:
            return False
        return delegation.verify_signature(
            self._engine.public_identity(delegation.issuer)
        )

    def _emit(self, delta: Delta) -> None:
        for listener in list(self._listeners):
            listener(delta)
