"""Core dRBAC model: entities, roles, and valued attributes.

Terminology follows Section 3 of the paper and the underlying dRBAC paper
(Freudenthal et al., ICDCS 2002):

* An **entity** is a principal (person, component, node, or Guard) named by
  a dotted string such as ``"Comp.NY"`` or ``"Bob"``, identified
  cryptographically by its public key.
* A **role** names an equivalence class of access rights inside one
  entity's namespace: ``Comp.NY.Member`` is role ``Member`` owned by entity
  ``Comp.NY``.
* Delegations may carry **valued attributes** ("with Secure={true,false}
  Trust=(0,10) CPU=100"), which *attenuate* along proof chains: chaining
  never widens a set, interval, or scalar budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class EntityRef:
    """Reference to an entity by its dotted name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or self.name.startswith(".") or self.name.endswith("."):
            raise ValueError(f"invalid entity name: {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Role:
    """A role ``owner.name`` owned by entity ``owner``."""

    owner: str
    name: str

    def __post_init__(self) -> None:
        if not self.owner or not self.name or "." in self.name:
            raise ValueError(f"invalid role: owner={self.owner!r} name={self.name!r}")

    def __str__(self) -> str:
        return f"{self.owner}.{self.name}"

    @staticmethod
    def parse(text: str) -> "Role":
        """Parse ``"Comp.NY.Member"`` as owner ``"Comp.NY"``, name ``"Member"``.

        The owner namespace may itself contain dots, so the split is on the
        *last* dot.
        """
        owner, sep, name = text.rpartition(".")
        if not sep or not owner or not name:
            raise ValueError(f"cannot parse role from {text!r}")
        return Role(owner=owner, name=name)


Subject = Union[EntityRef, Role]
"""A delegation subject: either a concrete entity or another role."""


def subject_key(subject: Subject) -> str:
    """Canonical string key for a subject, used by graphs and repositories."""
    return str(subject)


def parse_subject(text: str, *, known_entities: set[str] | None = None) -> Subject:
    """Parse a subject string, preferring an entity match when known.

    ``"Bob"`` (no dot) is always an entity.  ``"Comp.SD.Member"`` is a role
    unless ``known_entities`` says the whole string names an entity (e.g.
    ``"Comp.SD"`` appearing as a subject in an assignment delegation).
    """
    if known_entities and text in known_entities:
        return EntityRef(text)
    if "." not in text:
        return EntityRef(text)
    return Role.parse(text)


class AttributeValue:
    """Base class for valued attributes. Subclasses define :meth:`meet`."""

    def meet(self, other: "AttributeValue") -> "AttributeValue":
        """Attenuating combination; raises :class:`IncompatibleAttributes`
        when the combination is empty."""
        raise NotImplementedError

    def satisfies(self, requirement: "AttributeValue") -> bool:
        """True when this value is at least as permissive as needed to
        grant ``requirement`` (i.e. requirement ⊆ self)."""
        raise NotImplementedError


class IncompatibleAttributes(ValueError):
    """Raised when attenuation produces an empty attribute value."""


@dataclass(frozen=True, slots=True)
class AttrSet(AttributeValue):
    """Discrete attribute such as ``Secure={true,false}``."""

    values: frozenset

    def __init__(self, values) -> None:
        object.__setattr__(self, "values", frozenset(values))
        if not self.values:
            raise IncompatibleAttributes("empty attribute set")

    def meet(self, other: AttributeValue) -> "AttrSet":
        if not isinstance(other, AttrSet):
            raise IncompatibleAttributes(
                f"cannot combine set attribute with {type(other).__name__}"
            )
        common = self.values & other.values
        if not common:
            raise IncompatibleAttributes(
                f"disjoint attribute sets: {sorted(map(str, self.values))} vs "
                f"{sorted(map(str, other.values))}"
            )
        return AttrSet(common)

    def satisfies(self, requirement: AttributeValue) -> bool:
        return isinstance(requirement, AttrSet) and requirement.values <= self.values

    def __str__(self) -> str:
        # Paper syntax renders booleans lowercase: {true,false}.
        def fmt(v) -> str:
            if isinstance(v, bool):
                return "true" if v else "false"
            return str(v)

        return "{" + ",".join(sorted(fmt(v) for v in self.values)) + "}"


@dataclass(frozen=True, slots=True)
class AttrRange(AttributeValue):
    """Closed numeric interval such as ``Trust=(0,10)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise IncompatibleAttributes(
                f"empty range ({self.low}, {self.high})"
            )

    def meet(self, other: AttributeValue) -> "AttributeValue":
        if isinstance(other, AttrRange):
            return AttrRange(max(self.low, other.low), min(self.high, other.high))
        if isinstance(other, AttrScalar):
            if self.low <= other.value <= self.high:
                return other
            raise IncompatibleAttributes(
                f"scalar {other.value} outside range ({self.low}, {self.high})"
            )
        raise IncompatibleAttributes(
            f"cannot combine range attribute with {type(other).__name__}"
        )

    def satisfies(self, requirement: AttributeValue) -> bool:
        if isinstance(requirement, AttrRange):
            return self.low <= requirement.low and requirement.high <= self.high
        if isinstance(requirement, AttrScalar):
            return self.low <= requirement.value <= self.high
        return False

    def __str__(self) -> str:
        return f"({_fmt_num(self.low)},{_fmt_num(self.high)})"


@dataclass(frozen=True, slots=True)
class AttrScalar(AttributeValue):
    """A single numeric budget such as ``CPU=100``.

    Scalars attenuate by ``min``: a component granted CPU=100 locally and
    re-delegated with CPU=80 may consume at most 80 (credential 14 in
    Table 2).
    """

    value: float

    def meet(self, other: AttributeValue) -> "AttributeValue":
        if isinstance(other, AttrScalar):
            return AttrScalar(min(self.value, other.value))
        if isinstance(other, AttrRange):
            return other.meet(self)
        raise IncompatibleAttributes(
            f"cannot combine scalar attribute with {type(other).__name__}"
        )

    def satisfies(self, requirement: AttributeValue) -> bool:
        if isinstance(requirement, AttrScalar):
            return requirement.value <= self.value
        return False

    def __str__(self) -> str:
        return _fmt_num(self.value)


def _fmt_num(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else str(x)


Attributes = dict[str, AttributeValue]
"""Attribute map attached to a delegation, keyed by attribute name."""


def meet_attributes(a: Attributes, b: Attributes) -> Attributes:
    """Attenuate two attribute maps along a proof chain.

    Keys present in only one map pass through unchanged (the delegation
    that omits an attribute places no additional restriction on it); shared
    keys combine via :meth:`AttributeValue.meet`.
    """
    out: Attributes = dict(a)
    for key, value in b.items():
        if key in out:
            out[key] = out[key].meet(value)
        else:
            out[key] = value
    return out


def attributes_satisfy(available: Attributes, required: Attributes) -> bool:
    """True when every required attribute is covered by the available map."""
    for key, requirement in required.items():
        value = available.get(key)
        if value is None or not value.satisfies(requirement):
            return False
    return True


def parse_attribute(text: str) -> AttributeValue:
    """Parse the paper's attribute syntax.

    * ``{true,false}`` → :class:`AttrSet`
    * ``(0,10)``       → :class:`AttrRange`
    * ``100``          → :class:`AttrScalar`
    * anything else    → single-element :class:`AttrSet`
    """
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        items = [_coerce(v) for v in text[1:-1].split(",") if v.strip()]
        return AttrSet(items)
    if text.startswith("(") and text.endswith(")"):
        parts = [p.strip() for p in text[1:-1].split(",")]
        if len(parts) != 2:
            raise ValueError(f"range attribute needs two bounds: {text!r}")
        return AttrRange(float(parts[0]), float(parts[1]))
    try:
        return AttrScalar(float(text))
    except ValueError:
        return AttrSet([_coerce(text)])


def _coerce(token: str):
    token = token.strip()
    if token.lower() == "true":
        return True
    if token.lower() == "false":
        return False
    try:
        return float(token) if "." in token else int(token)
    except ValueError:
        return token
