"""Distributed credential repository with discovery tags (Section 3.1).

"dRBAC credentials are stored in a distributed repository.  To assist in
collecting dRBAC credentials that authorize a particular role, dRBAC
contains a mechanism that relies on *discovery tags* associated with
credential subjects and objects.  These tags identify an entity as
'searchable from subject' or 'searchable from object', permitting queries
about credentials involving the entity to be directed as appropriate to
its home node."

The repository is sharded per home entity.  A delegation published with
``SEARCHABLE_FROM_SUBJECT`` is indexed on the subject's home shard so a
forward walk starting at the subject can find it; one published with
``SEARCHABLE_FROM_OBJECT`` is indexed on the role owner's home shard for
backward walks from the goal role.  :meth:`DistributedRepository.collect`
performs the bidirectional harvest used by the proof engine, counting the
shard queries it issues so benchmarks can report discovery cost.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..obs import names as metric_names
from .delegation import Delegation
from .model import EntityRef, Role, Subject, subject_key


class DiscoveryTag(enum.Enum):
    SEARCHABLE_FROM_SUBJECT = "subject"
    SEARCHABLE_FROM_OBJECT = "object"


BOTH_TAGS = frozenset(
    {DiscoveryTag.SEARCHABLE_FROM_SUBJECT, DiscoveryTag.SEARCHABLE_FROM_OBJECT}
)


def subject_home(subject: Subject) -> str:
    """The entity whose home shard indexes this subject."""
    if isinstance(subject, EntityRef):
        return subject.name
    return subject.owner


@dataclass
class RepositoryShard:
    """Credential index held by a single home node."""

    home: str
    by_subject: dict[str, list[Delegation]] = field(default_factory=lambda: defaultdict(list))
    by_role: dict[str, list[Delegation]] = field(default_factory=lambda: defaultdict(list))

    def index_subject(self, delegation: Delegation) -> None:
        self.by_subject[subject_key(delegation.subject)].append(delegation)

    def index_role(self, delegation: Delegation) -> None:
        self.by_role[str(delegation.role)].append(delegation)

    def credentials(self) -> list[Delegation]:
        seen: dict[str, Delegation] = {}
        for bucket in list(self.by_subject.values()) + list(self.by_role.values()):
            for delegation in bucket:
                seen[delegation.credential_id] = delegation
        return list(seen.values())


class DistributedRepository:
    """Shards keyed by home entity, with routed queries and hop counting.

    With ``replicated=True`` every publish is mirrored to a warm replica
    shard; :meth:`fail_shard` then models the home node crashing — routed
    queries transparently fail over to the replica (counted, so chaos runs
    can assert the recovery happened) until :meth:`restore_shard`.  An
    unreplicated repository answers queries for a failed shard with the
    empty set, which is the paper's degraded mode: proofs relying on that
    home's credentials become undiscoverable until the node returns.
    """

    def __init__(self, *, replicated: bool = False) -> None:
        self._shards: dict[str, RepositoryShard] = {}
        self._replicas: dict[str, RepositoryShard] = {}
        self._down: set[str] = set()
        self.replicated = replicated
        self.query_count = 0
        self.failover_count = 0
        self.version = 0
        """Monotonic publish counter.  A new credential can turn a past
        denial into a grant, so negative authorization caches key their
        entries to the version they were computed against and drop them
        when it moves (see :class:`~repro.drbac.cache.CachedAuthorizer`)."""
        self._publish_listeners: list[Callable[[Delegation], None]] = []

    def on_publish(self, callback: Callable[[Delegation], None]) -> None:
        """Register a listener notified once per :meth:`publish` call.

        This is the delta source the incremental proof engine and the
        precise-invalidation cache subscribe to; listeners fire after the
        credential is indexed, in registration order.
        """
        self._publish_listeners.append(callback)

    def shard(self, home: str) -> RepositoryShard:
        shard = self._shards.get(home)
        if shard is None:
            shard = RepositoryShard(home)
            self._shards[home] = shard
        return shard

    def _replica(self, home: str) -> RepositoryShard:
        replica = self._replicas.get(home)
        if replica is None:
            replica = RepositoryShard(home)
            self._replicas[home] = replica
        return replica

    # -- shard failure ---------------------------------------------------------

    def enable_replication(self) -> None:
        """Turn on warm replicas, mirroring everything already published.

        Lets a harness add fault tolerance to an engine whose repository
        was built unreplicated: subsequent publishes mirror automatically,
        and the existing shard contents are copied over right here.
        """
        if self.replicated:
            return
        self.replicated = True
        for home, shard in self._shards.items():
            replica = self._replica(home)
            for key, bucket in shard.by_subject.items():
                replica.by_subject[key].extend(bucket)
            for key, bucket in shard.by_role.items():
                replica.by_role[key].extend(bucket)

    def fail_shard(self, home: str) -> None:
        """Mark a home shard unreachable (its node crash-stopped)."""
        self._down.add(home)

    def restore_shard(self, home: str) -> None:
        self._down.discard(home)

    def recover_shard(self, home: str) -> None:
        """Bring a failed shard back by *rebuilding* it, not resurrecting it.

        The honest heal for a crash-stop: the primary's in-memory index
        died with the node, so its content is reconstructed from the warm
        replica (bucket order preserved — replicas mirror publish order).
        Without replication the rebuilt shard is empty, which is real
        data loss: proofs relying on that home's credentials stay
        undiscoverable until they are republished.
        """
        self._down.discard(home)
        rebuilt = RepositoryShard(home)
        replica = self._replicas.get(home) if self.replicated else None
        if replica is not None:
            for key, bucket in replica.by_subject.items():
                rebuilt.by_subject[key].extend(bucket)
            for key, bucket in replica.by_role.items():
                rebuilt.by_role[key].extend(bucket)
        self._shards[home] = rebuilt
        obs.counter(metric_names.RECOVER_SHARD_REBUILDS).inc()

    def reset_state(self) -> None:
        """Drop every shard and replica (node-wide crash recovery).

        Used by :class:`~repro.durable.node.DurableNode` before replaying
        durable history: listeners stay registered and ``version`` stays
        monotonic (a recovered node must never hand out version numbers
        that alias pre-crash ones, or version-keyed negative cache
        entries could survive wrongly), but all indexed content is gone
        until republished.
        """
        self._shards.clear()
        self._replicas.clear()
        self._down.clear()

    def shard_is_down(self, home: str) -> bool:
        return home in self._down

    def _route(self, home: str) -> RepositoryShard | None:
        """The shard that answers queries for ``home`` right now."""
        if home not in self._down:
            return self._shards.get(home)
        if self.replicated and home in self._replicas:
            self.failover_count += 1
            obs.counter(metric_names.REPO_FAILOVERS).inc()
            return self._replicas[home]
        return None

    def publish(
        self,
        delegation: Delegation,
        tags: frozenset[DiscoveryTag] | set[DiscoveryTag] = BOTH_TAGS,
    ) -> None:
        """Store a credential, indexing per its discovery tags."""
        self.version += 1
        if DiscoveryTag.SEARCHABLE_FROM_SUBJECT in tags:
            home = subject_home(delegation.subject)
            self.shard(home).index_subject(delegation)
            if self.replicated:
                self._replica(home).index_subject(delegation)
        if DiscoveryTag.SEARCHABLE_FROM_OBJECT in tags:
            home = delegation.role.owner
            self.shard(home).index_role(delegation)
            if self.replicated:
                self._replica(home).index_role(delegation)
        for callback in list(self._publish_listeners):
            callback(delegation)

    def publish_all(self, delegations: list[Delegation]) -> None:
        for delegation in delegations:
            self.publish(delegation)

    # -- routed point queries -------------------------------------------------

    def find_by_subject(self, subject: Subject) -> list[Delegation]:
        """Credentials whose subject is exactly ``subject`` (routed query)."""
        self.query_count += 1
        shard = self._route(subject_home(subject))
        if shard is None:
            return []
        return list(shard.by_subject.get(subject_key(subject), ()))

    def find_by_role(self, role: Role) -> list[Delegation]:
        """Credentials granting ``role`` (routed query to the owner's home)."""
        self.query_count += 1
        shard = self._route(role.owner)
        if shard is None:
            return []
        return list(shard.by_role.get(str(role), ()))

    # -- bidirectional harvest ------------------------------------------------

    def collect(
        self,
        subject: Subject,
        target: Role,
        *,
        max_depth: int = 16,
    ) -> list[Delegation]:
        """Harvest candidate credentials for proving ``subject -> target``.

        Runs a forward BFS from the subject (following delegation edges
        subject→role) and a backward BFS from the target role, bounded by
        ``max_depth`` hops each.  Assignment-right evidence for third-party
        issuers is pulled in by an extra backward pass over the roles seen,
        because third-party delegations are only usable with their issuer's
        ``Entity.Role'`` chain.
        """
        harvested: dict[str, Delegation] = {}

        # Forward: which roles can the subject reach?  The frontier carries
        # Subject objects (not string keys) because entity names may contain
        # dots and would otherwise be misparsed as roles.
        frontier: deque[tuple[Subject, int]] = deque([(subject, 0)])
        seen_forward: set[str] = {subject_key(subject)}
        while frontier:
            node, depth = frontier.popleft()
            if depth >= max_depth:
                continue
            for delegation in self.find_by_subject(node):
                harvested[delegation.credential_id] = delegation
                role_key = str(delegation.role)
                if role_key not in seen_forward:
                    seen_forward.add(role_key)
                    frontier.append((delegation.role, depth + 1))

        # Backward: which roles flow into the target?
        back: deque[tuple[Role, int]] = deque([(target, 0)])
        seen_back: set[str] = {str(target)}
        issuers_needing_rights: set[str] = set()
        while back:
            role, depth = back.popleft()
            if depth >= max_depth:
                continue
            for delegation in self.find_by_role(role):
                harvested[delegation.credential_id] = delegation
                if delegation.issuer != delegation.role.owner:
                    issuers_needing_rights.add(delegation.issuer)
                if isinstance(delegation.subject, Role):
                    key = str(delegation.subject)
                    if key not in seen_back:
                        seen_back.add(key)
                        back.append((delegation.subject, depth + 1))

        # Assignment-right evidence for third-party issuers found above.
        for issuer in issuers_needing_rights:
            for delegation in self.find_by_subject(EntityRef(issuer)):
                if delegation.grants_assignment_right:
                    harvested[delegation.credential_id] = delegation

        return list(harvested.values())

    @property
    def credential_count(self) -> int:
        ids: set[str] = set()
        for shard in self._shards.values():
            ids.update(d.credential_id for d in shard.credentials())
        return len(ids)

    @property
    def shard_count(self) -> int:
        return len(self._shards)


