"""Policy translation between native domain policies and dRBAC (§6).

"One of the main assumptions made in the Partitionable Services framework
is that all domains are using dRBAC as their authorization policy
implementation.  In order to allow each domain to freely choose the policy
implementation (e.g. roles, capabilities), the framework should provide a
service able to translate between that implementation and dRBAC."

This module implements that service — listed as future work in the paper.
A domain keeps its native policy (capability tokens, or Unix-style group
ACLs) and runs a :class:`PolicyTranslator` that mirrors native grants into
signed dRBAC delegations under mapping rules, and *revokes* the mirrored
credentials when the native grant disappears, keeping both worlds in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from .delegation import Delegation
from .engine import DrbacEngine
from .model import EntityRef, Role


class ForeignPolicy(Protocol):
    """A domain's native authorization system, as seen by the translator.

    The translator only needs an enumeration of current grants: pairs of
    (principal, native permission name).
    """

    def grants(self) -> set[tuple[str, str]]:  # pragma: no cover - protocol
        ...


class CapabilityPolicy:
    """A capability-token policy: principals hold named capabilities."""

    def __init__(self) -> None:
        self._capabilities: dict[str, set[str]] = {}

    def grant(self, principal: str, capability: str) -> None:
        self._capabilities.setdefault(principal, set()).add(capability)

    def revoke(self, principal: str, capability: str) -> None:
        self._capabilities.get(principal, set()).discard(capability)

    def holds(self, principal: str, capability: str) -> bool:
        return capability in self._capabilities.get(principal, ())

    def grants(self) -> set[tuple[str, str]]:
        return {
            (principal, capability)
            for principal, capabilities in self._capabilities.items()
            for capability in capabilities
        }


class AclGroupPolicy:
    """A Unix-flavoured policy: users belong to groups; groups carry
    permissions.  The translator sees the flattened (user, permission)
    relation."""

    def __init__(self) -> None:
        self._members: dict[str, set[str]] = {}
        self._permissions: dict[str, set[str]] = {}

    def add_member(self, group: str, user: str) -> None:
        self._members.setdefault(group, set()).add(user)

    def remove_member(self, group: str, user: str) -> None:
        self._members.get(group, set()).discard(user)

    def allow(self, group: str, permission: str) -> None:
        self._permissions.setdefault(group, set()).add(permission)

    def disallow(self, group: str, permission: str) -> None:
        self._permissions.get(group, set()).discard(permission)

    def grants(self) -> set[tuple[str, str]]:
        flat: set[tuple[str, str]] = set()
        for group, users in self._members.items():
            for permission in self._permissions.get(group, ()):
                for user in users:
                    flat.add((user, permission))
        return flat


@dataclass(slots=True)
class TranslationRule:
    """Maps one native permission name onto a dRBAC role."""

    native_permission: str
    role: Role


@dataclass
class SyncReport:
    issued: list[Delegation] = field(default_factory=list)
    revoked: list[str] = field(default_factory=list)
    unchanged: int = 0


class PolicyTranslator:
    """Mirrors a foreign policy into dRBAC credentials, incrementally.

    The translator signs on behalf of ``domain`` (so the mirrored
    credentials are self-certifying for roles in that namespace) and
    tracks what it issued; :meth:`sync` computes the diff against the
    native policy's current grants, issuing new delegations and revoking
    stale ones through the engine's revocation directory — which means
    live :class:`~repro.drbac.monitor.ProofMonitor`s (and therefore open
    Switchboard channels) react to native-policy changes automatically.
    """

    def __init__(
        self,
        engine: DrbacEngine,
        domain: str,
        policy: ForeignPolicy,
        rules: Iterable[TranslationRule],
    ) -> None:
        self.engine = engine
        self.domain = domain
        self.policy = policy
        self.rules = {rule.native_permission: rule.role for rule in rules}
        self._mirrored: dict[tuple[str, str], Delegation] = {}
        engine.identity(domain)

    def sync(self) -> SyncReport:
        """Bring the dRBAC mirror up to date with the native policy."""
        report = SyncReport()
        current = {
            (principal, permission)
            for principal, permission in self.policy.grants()
            if permission in self.rules
        }
        # New native grants -> issue mirrored delegations.
        for key in sorted(current - set(self._mirrored)):
            principal, permission = key
            delegation = self.engine.delegate(
                self.domain,
                EntityRef(principal),
                self.rules[permission],
            )
            self._mirrored[key] = delegation
            report.issued.append(delegation)
        # Vanished native grants -> revoke the mirror.
        for key in sorted(set(self._mirrored) - current):
            delegation = self._mirrored.pop(key)
            self.engine.revoke(delegation)
            report.revoked.append(delegation.credential_id)
        report.unchanged = len(current & set(self._mirrored)) - len(report.issued)
        return report

    def mirrored_count(self) -> int:
        return len(self._mirrored)
