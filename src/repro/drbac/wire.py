"""Wire (de)serialization for credentials and public identities.

Switchboard handshakes carry dRBAC credentials and RSA public keys across
the simulated network; this module defines the JSON-compatible encoding.
Signatures survive the round trip because :meth:`Delegation.signing_bytes`
is computed from semantic fields only.
"""

from __future__ import annotations

from typing import Any

from ..crypto.keys import PublicIdentity
from ..crypto.rsa import RsaPublicKey
from ..errors import CredentialError
from .delegation import Delegation, DelegationType
from .model import (
    AttrRange,
    AttrScalar,
    AttrSet,
    Attributes,
    AttributeValue,
    EntityRef,
    Role,
    Subject,
)


def attribute_to_wire(value: AttributeValue) -> dict[str, Any]:
    if isinstance(value, AttrSet):
        return {"kind": "set", "values": sorted(value.values, key=repr)}
    if isinstance(value, AttrRange):
        return {"kind": "range", "low": value.low, "high": value.high}
    if isinstance(value, AttrScalar):
        return {"kind": "scalar", "value": value.value}
    raise TypeError(f"cannot serialize attribute {type(value).__name__}")


def attribute_from_wire(data: dict[str, Any]) -> AttributeValue:
    kind = data.get("kind")
    if kind == "set":
        return AttrSet(data["values"])
    if kind == "range":
        return AttrRange(data["low"], data["high"])
    if kind == "scalar":
        return AttrScalar(data["value"])
    raise CredentialError(f"unknown attribute kind {kind!r}")


def subject_to_wire(subject: Subject) -> dict[str, str]:
    if isinstance(subject, EntityRef):
        return {"kind": "entity", "name": subject.name}
    return {"kind": "role", "owner": subject.owner, "name": subject.name}


def subject_from_wire(data: dict[str, str]) -> Subject:
    if data["kind"] == "entity":
        return EntityRef(data["name"])
    if data["kind"] == "role":
        return Role(owner=data["owner"], name=data["name"])
    raise CredentialError(f"unknown subject kind {data.get('kind')!r}")


def delegation_to_wire(delegation: Delegation) -> dict[str, Any]:
    return {
        "subject": subject_to_wire(delegation.subject),
        "role": {"owner": delegation.role.owner, "name": delegation.role.name},
        "issuer": delegation.issuer,
        "type": delegation.delegation_type.value,
        "attributes": {
            name: attribute_to_wire(value)
            for name, value in delegation.attributes.items()
        },
        "expires_at": delegation.expires_at,
        "requires_monitoring": delegation.requires_monitoring,
        "home": delegation.home,
        "id": delegation.credential_id,
        "signature": delegation.signature.hex(),
    }


def delegation_from_wire(data: dict[str, Any]) -> Delegation:
    try:
        attributes: Attributes = {
            name: attribute_from_wire(value)
            for name, value in data.get("attributes", {}).items()
        }
        return Delegation(
            subject=subject_from_wire(data["subject"]),
            role=Role(owner=data["role"]["owner"], name=data["role"]["name"]),
            issuer=data["issuer"],
            delegation_type=DelegationType(data["type"]),
            attributes=attributes,
            expires_at=data.get("expires_at"),
            requires_monitoring=bool(data.get("requires_monitoring", False)),
            home=data.get("home"),
            credential_id=data["id"],
            signature=bytes.fromhex(data["signature"]),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CredentialError(f"malformed credential on the wire: {exc}") from exc


def public_identity_to_wire(identity: PublicIdentity) -> dict[str, Any]:
    return {
        "name": identity.name,
        "n": hex(identity.public_key.n),
        "e": identity.public_key.e,
    }


def public_identity_from_wire(data: dict[str, Any]) -> PublicIdentity:
    try:
        return PublicIdentity(
            name=data["name"],
            public_key=RsaPublicKey(n=int(data["n"], 16), e=int(data["e"])),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CredentialError(f"malformed identity on the wire: {exc}") from exc
